//! Executions and the prefix subsequence condition (§3.1).
//!
//! An *execution* of a set of transaction instances consists of a serial
//! ordering `T` of the instances together with, for each `Tᵢ`:
//!
//! 1. a **prefix subsequence** `𝒫ᵢ ⊆ {0, …, i−1}` — the preceding
//!    transactions whose effects `Tᵢ` "sees";
//! 2. the **apparent state** `tᵢ₋₁` observed by `Tᵢ`'s decision part —
//!    the result of applying the updates of `𝒫ᵢ` (in order) to `s₀`;
//! 3. the update `Aᵢ` and external actions `Eᵢ` determined by running the
//!    decision part on the apparent state (condition 3 of the paper);
//! 4. the **actual state** `sᵢ = Aᵢ(…A₁(s₀))` — the effect of running the
//!    complete update sequence through `Tᵢ` (condition 4).
//!
//! The system guarantees only that each transaction sees *some*
//! subsequence of its prefix — serializability would be the special case
//! where every prefix subsequence is complete. [`ExecutionBuilder`]
//! *constructs* executions satisfying conditions (1)–(4) by running
//! decision parts against apparent states it computes itself;
//! [`Execution::verify`] re-checks a finished execution from scratch,
//! which is how simulator output is validated against the formal model.

use crate::app::{Application, DecisionOutcome, ExternalAction};
use std::fmt;

/// Index of a transaction instance within an execution's serial order.
pub type TxnIndex = usize;

/// One transaction instance `Tᵢ` in an execution, with everything the
/// paper associates with it: its prefix subsequence, the update its
/// decision chose, and the external actions it triggered.
#[derive(Clone, Debug)]
pub struct TxnRecord<A: Application> {
    /// The transaction as submitted (input of the decision part).
    pub decision: A::Decision,
    /// The prefix subsequence `𝒫ᵢ`: strictly increasing indices `< i`.
    pub prefix: Vec<TxnIndex>,
    /// The update `Aᵢ` chosen by the decision part from the apparent state.
    pub update: A::Update,
    /// The external actions `Eᵢ` triggered when the decision ran.
    pub external_actions: Vec<ExternalAction>,
}

/// A complete execution: the serial order of transactions with their
/// prefix subsequences, updates and external actions.
///
/// States are *not* stored; they are recomputed on demand from the update
/// sequence so that an `Execution` is exactly the paper's mathematical
/// object (`T`, `𝒜`, `E`, `𝒫`) and can never disagree with itself.
#[derive(Clone, Debug, Default)]
pub struct Execution<A: Application> {
    records: Vec<TxnRecord<A>>,
}

/// Errors from building or verifying executions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecutionError {
    /// A prefix contained an index ≥ the transaction's own index.
    PrefixOutOfRange {
        /// The transaction whose prefix is invalid.
        txn: TxnIndex,
        /// The offending prefix entry.
        entry: TxnIndex,
    },
    /// A prefix was not strictly increasing (not a subsequence).
    PrefixNotIncreasing {
        /// The transaction whose prefix is invalid.
        txn: TxnIndex,
    },
    /// Replaying the decision part on the apparent state produced a
    /// different update than the one recorded (condition 3 violated).
    UpdateMismatch {
        /// The transaction whose recorded update is wrong.
        txn: TxnIndex,
    },
    /// Replaying the decision part produced different external actions.
    ExternalActionMismatch {
        /// The transaction whose recorded actions are wrong.
        txn: TxnIndex,
    },
    /// An apparent or actual state failed well-formedness.
    IllFormedState {
        /// The transaction after which the state is ill-formed.
        txn: TxnIndex,
    },
}

impl fmt::Display for ExecutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionError::PrefixOutOfRange { txn, entry } => {
                write!(f, "transaction {txn}: prefix entry {entry} is not a preceding index")
            }
            ExecutionError::PrefixNotIncreasing { txn } => {
                write!(f, "transaction {txn}: prefix is not strictly increasing")
            }
            ExecutionError::UpdateMismatch { txn } => {
                write!(f, "transaction {txn}: recorded update differs from decision replay")
            }
            ExecutionError::ExternalActionMismatch { txn } => {
                write!(f, "transaction {txn}: recorded external actions differ from replay")
            }
            ExecutionError::IllFormedState { txn } => {
                write!(f, "transaction {txn}: produced an ill-formed state")
            }
        }
    }
}

impl std::error::Error for ExecutionError {}

impl<A: Application> Execution<A> {
    /// Creates an empty execution (no transactions yet).
    pub fn new() -> Self {
        Execution { records: Vec::new() }
    }

    /// The number of transaction instances.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the execution contains no transactions.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record of transaction `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn record(&self, i: TxnIndex) -> &TxnRecord<A> {
        &self.records[i]
    }

    /// All records in serial order.
    pub fn records(&self) -> &[TxnRecord<A>] {
        &self.records
    }

    /// Iterates over `(index, record)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TxnIndex, &TxnRecord<A>)> {
        self.records.iter().enumerate()
    }

    /// The apparent state `tᵢ₋₁` seen by transaction `i`: the result of
    /// applying the updates of its prefix subsequence, in order, to `s₀`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn apparent_state_before(&self, app: &A, i: TxnIndex) -> A::State {
        let mut s = app.initial_state();
        for &j in &self.records[i].prefix {
            s = app.apply(&s, &self.records[j].update);
        }
        s
    }

    /// The apparent state *after* transaction `i`: `Tᵢ(tᵢ₋₁, tᵢ₋₁)`, i.e.
    /// the update applied to the transaction's own observed state.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn apparent_state_after(&self, app: &A, i: TxnIndex) -> A::State {
        let t = self.apparent_state_before(app, i);
        app.apply(&t, &self.records[i].update)
    }

    /// The actual state `sᵢ` after running updates `A₀ … Aᵢ` from `s₀`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn actual_state_after(&self, app: &A, i: TxnIndex) -> A::State {
        let mut s = app.initial_state();
        for rec in &self.records[..=i] {
            s = app.apply(&s, &rec.update);
        }
        s
    }

    /// The actual state before transaction `i` (equals `s₀` for `i = 0`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn actual_state_before(&self, app: &A, i: TxnIndex) -> A::State {
        if i == 0 {
            app.initial_state()
        } else {
            self.actual_state_after(app, i - 1)
        }
    }

    /// All actual (reachable) states `s₀, s₁, …, sₙ`, starting with the
    /// initial state — the states the paper calls *reachable in e*.
    pub fn actual_states(&self, app: &A) -> Vec<A::State> {
        let mut out = Vec::with_capacity(self.records.len() + 1);
        let mut s = app.initial_state();
        out.push(s.clone());
        for rec in &self.records {
            s = app.apply(&s, &rec.update);
            out.push(s.clone());
        }
        out
    }

    /// The final actual state (the initial state if empty).
    pub fn final_state(&self, app: &A) -> A::State {
        let mut s = app.initial_state();
        for rec in &self.records {
            s = app.apply(&s, &rec.update);
        }
        s
    }

    /// The state resulting from applying only the updates with indices in
    /// `subsequence` (which must be strictly increasing) to `s₀`. This is
    /// the `t` of Corollary 2 / Lemma 12 and the right-hand side of the
    /// information order `s ≤ₖ t`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn subsequence_state(&self, app: &A, subsequence: &[TxnIndex]) -> A::State {
        let mut s = app.initial_state();
        for &j in subsequence {
            s = app.apply(&s, &self.records[j].update);
        }
        s
    }

    /// Verifies conditions (1)–(4) of §3.1 from scratch: prefixes are
    /// subsequences of the preceding indices, each recorded update and
    /// external-action set equals what the decision part yields on the
    /// recomputed apparent state, and every apparent and actual state is
    /// well-formed.
    ///
    /// # Errors
    ///
    /// Returns the first violation found, in serial order.
    pub fn verify(&self, app: &A) -> Result<(), ExecutionError>
    where
        A::Update: PartialEq,
    {
        for (i, rec) in self.records.iter().enumerate() {
            let mut prev: Option<TxnIndex> = None;
            for &p in &rec.prefix {
                if p >= i {
                    return Err(ExecutionError::PrefixOutOfRange { txn: i, entry: p });
                }
                if let Some(q) = prev {
                    if p <= q {
                        return Err(ExecutionError::PrefixNotIncreasing { txn: i });
                    }
                }
                prev = Some(p);
            }
            let t = self.apparent_state_before(app, i);
            if !app.is_well_formed(&t) {
                return Err(ExecutionError::IllFormedState { txn: i });
            }
            let outcome = app.decide(&rec.decision, &t);
            if outcome.update != rec.update {
                return Err(ExecutionError::UpdateMismatch { txn: i });
            }
            if outcome.external_actions != rec.external_actions {
                return Err(ExecutionError::ExternalActionMismatch { txn: i });
            }
        }
        // Actual states must stay well-formed, too (updates preserve
        // well-formedness by assumption; this checks the app honours it).
        let mut s = app.initial_state();
        for (i, rec) in self.records.iter().enumerate() {
            s = app.apply(&s, &rec.update);
            if !app.is_well_formed(&s) {
                return Err(ExecutionError::IllFormedState { txn: i });
            }
        }
        Ok(())
    }

    /// Appends a pre-formed record. Intended for simulators that already
    /// computed the decision outcome; [`Execution::verify`] will catch
    /// records inconsistent with the formal model.
    pub fn push_record(&mut self, record: TxnRecord<A>) -> TxnIndex {
        self.records.push(record);
        self.records.len() - 1
    }
}

/// Builds executions by running decision parts against apparent states
/// that the builder computes from the supplied prefix subsequences, so
/// conditions (1)–(4) hold by construction.
pub struct ExecutionBuilder<'a, A: Application> {
    app: &'a A,
    exec: Execution<A>,
}

impl<'a, A: Application> ExecutionBuilder<'a, A> {
    /// Creates a builder for executions of `app`.
    pub fn new(app: &'a A) -> Self {
        ExecutionBuilder { app, exec: Execution::new() }
    }

    /// The number of transactions pushed so far.
    pub fn len(&self) -> usize {
        self.exec.len()
    }

    /// Whether no transactions have been pushed.
    pub fn is_empty(&self) -> bool {
        self.exec.is_empty()
    }

    /// Read access to the execution built so far.
    pub fn execution(&self) -> &Execution<A> {
        &self.exec
    }

    /// Appends transaction `decision` seeing exactly the prefix
    /// subsequence `prefix`. The decision part runs against the apparent
    /// state computed from `prefix`; its update and external actions are
    /// recorded. Returns the new transaction's index.
    ///
    /// # Errors
    ///
    /// Returns an error if `prefix` is not a strictly increasing sequence
    /// of indices less than the new transaction's index.
    pub fn push(
        &mut self,
        decision: A::Decision,
        prefix: Vec<TxnIndex>,
    ) -> Result<TxnIndex, ExecutionError> {
        let i = self.exec.len();
        let mut prev: Option<TxnIndex> = None;
        for &p in &prefix {
            if p >= i {
                return Err(ExecutionError::PrefixOutOfRange { txn: i, entry: p });
            }
            if let Some(q) = prev {
                if p <= q {
                    return Err(ExecutionError::PrefixNotIncreasing { txn: i });
                }
            }
            prev = Some(p);
        }
        let mut t = self.app.initial_state();
        for &j in &prefix {
            t = self.app.apply(&t, &self.exec.records[j].update);
        }
        let DecisionOutcome { update, external_actions } = self.app.decide(&decision, &t);
        self.exec.records.push(TxnRecord { decision, prefix, update, external_actions });
        Ok(i)
    }

    /// Appends a transaction that sees the **complete prefix** — all
    /// preceding transactions. This is what a serializable system would
    /// always do.
    pub fn push_complete(&mut self, decision: A::Decision) -> Result<TxnIndex, ExecutionError> {
        let prefix: Vec<TxnIndex> = (0..self.exec.len()).collect();
        self.push(decision, prefix)
    }

    /// Appends a transaction whose prefix omits exactly the indices in
    /// `missing` (which need not be sorted; duplicates are ignored).
    pub fn push_missing(
        &mut self,
        decision: A::Decision,
        missing: &[TxnIndex],
    ) -> Result<TxnIndex, ExecutionError> {
        let prefix: Vec<TxnIndex> =
            (0..self.exec.len()).filter(|i| !missing.contains(i)).collect();
        self.push(decision, prefix)
    }

    /// Finishes building and returns the execution.
    pub fn finish(self) -> Execution<A> {
        self.exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::DecisionOutcome;

    /// Tiny saturating counter app: `Bump` adds 1 if the decision saw a
    /// state below the cap, else it is a no-op. One constraint: value ≤ 2.
    struct Capped;

    #[derive(Clone, Debug, PartialEq)]
    enum Up {
        Bump,
        Noop,
    }

    impl Application for Capped {
        type State = u32;
        type Update = Up;
        type Decision = ();
        fn initial_state(&self) -> u32 {
            0
        }
        fn is_well_formed(&self, s: &u32) -> bool {
            *s < 1000
        }
        fn apply(&self, s: &u32, u: &Up) -> u32 {
            match u {
                Up::Bump => s + 1,
                Up::Noop => *s,
            }
        }
        fn decide(&self, _: &(), observed: &u32) -> DecisionOutcome<Up> {
            if *observed < 2 {
                DecisionOutcome::update_only(Up::Bump)
            } else {
                DecisionOutcome::update_only(Up::Noop)
            }
        }
        fn constraint_count(&self) -> usize {
            1
        }
        fn constraint_name(&self, _: usize) -> &str {
            "le-two"
        }
        fn cost(&self, s: &u32, _: usize) -> u64 {
            (*s as u64).saturating_sub(2)
        }
    }

    #[test]
    fn complete_prefixes_behave_serializably() {
        let app = Capped;
        let mut b = ExecutionBuilder::new(&app);
        for _ in 0..5 {
            b.push_complete(()).unwrap();
        }
        let e = b.finish();
        // With full information the cap is respected: only 2 bumps happen.
        assert_eq!(e.final_state(&app), 2);
        assert_eq!(app.cost(&e.final_state(&app), 0), 0);
        e.verify(&app).unwrap();
    }

    #[test]
    fn missing_information_overshoots_the_cap() {
        let app = Capped;
        let mut b = ExecutionBuilder::new(&app);
        // Each transaction sees the empty prefix: all five bump.
        for _ in 0..5 {
            b.push((), vec![]).unwrap();
        }
        let e = b.finish();
        assert_eq!(e.final_state(&app), 5);
        assert_eq!(app.cost(&e.final_state(&app), 0), 3);
        e.verify(&app).unwrap();
    }

    #[test]
    fn apparent_vs_actual_states() {
        let app = Capped;
        let mut b = ExecutionBuilder::new(&app);
        b.push_complete(()).unwrap(); // t=0 -> bump, s1=1
        b.push((), vec![]).unwrap(); // sees s0=0 -> bump, s2=2
        let e = b.finish();
        assert_eq!(e.apparent_state_before(&app, 1), 0);
        assert_eq!(e.actual_state_before(&app, 1), 1);
        assert_eq!(e.actual_state_after(&app, 1), 2);
        assert_eq!(e.apparent_state_after(&app, 1), 1);
    }

    #[test]
    fn push_rejects_bad_prefixes() {
        let app = Capped;
        let mut b = ExecutionBuilder::new(&app);
        b.push_complete(()).unwrap();
        assert_eq!(
            b.push((), vec![1]),
            Err(ExecutionError::PrefixOutOfRange { txn: 1, entry: 1 })
        );
        b.push_complete(()).unwrap();
        assert_eq!(
            b.push((), vec![1, 0]),
            Err(ExecutionError::PrefixNotIncreasing { txn: 2 })
        );
        assert_eq!(
            b.push((), vec![0, 0]),
            Err(ExecutionError::PrefixNotIncreasing { txn: 2 })
        );
    }

    #[test]
    fn push_missing_filters_indices() {
        let app = Capped;
        let mut b = ExecutionBuilder::new(&app);
        b.push_complete(()).unwrap();
        b.push_complete(()).unwrap();
        let i = b.push_missing((), &[0]).unwrap();
        assert_eq!(b.execution().record(i).prefix, vec![1]);
    }

    #[test]
    fn verify_detects_tampered_update() {
        let app = Capped;
        let mut b = ExecutionBuilder::new(&app);
        b.push_complete(()).unwrap();
        let mut e = b.finish();
        e.records[0].update = Up::Noop; // decision from state 0 says Bump
        assert_eq!(e.verify(&app), Err(ExecutionError::UpdateMismatch { txn: 0 }));
    }

    #[test]
    fn verify_detects_tampered_actions() {
        let app = Capped;
        let mut b = ExecutionBuilder::new(&app);
        b.push_complete(()).unwrap();
        let mut e = b.finish();
        e.records[0]
            .external_actions
            .push(crate::app::ExternalAction::new("bogus", "x"));
        assert_eq!(
            e.verify(&app),
            Err(ExecutionError::ExternalActionMismatch { txn: 0 })
        );
    }

    #[test]
    fn subsequence_state_applies_selected_updates() {
        let app = Capped;
        let mut b = ExecutionBuilder::new(&app);
        for _ in 0..3 {
            b.push((), vec![]).unwrap(); // three bumps
        }
        let e = b.finish();
        assert_eq!(e.subsequence_state(&app, &[0, 2]), 2);
        assert_eq!(e.subsequence_state(&app, &[]), 0);
    }

    #[test]
    fn actual_states_includes_initial() {
        let app = Capped;
        let mut b = ExecutionBuilder::new(&app);
        b.push((), vec![]).unwrap();
        let e = b.finish();
        assert_eq!(e.actual_states(&app), vec![0, 1]);
    }

    #[test]
    fn error_display_is_informative() {
        let e = ExecutionError::UpdateMismatch { txn: 3 };
        assert!(e.to_string().contains("transaction 3"));
    }
}
