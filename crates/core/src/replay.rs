//! Incremental, checkpointed state computation — the *replay engine*.
//!
//! Everything in the paper is defined by replaying update sequences from
//! the initial state: apparent states replay a prefix subsequence `𝒫ᵢ`,
//! actual states replay the full serial order, cost bounds replay kept
//! subsequences, and the undo/redo merge of §1.2 replays a timestamped
//! log. The seed implementation recomputed each of these from scratch on
//! every query, which made whole-execution checkers (verify, grouping
//! discovery, k-completeness sweeps) quadratic in the execution length.
//!
//! This module centralizes state computation in one place:
//!
//! * [`Checkpoints`] — a sparse, strictly increasing sequence of
//!   `(updates applied, state)` pairs recorded every `interval` updates.
//!   Shared verbatim by the simulator's undo/redo merge log, where the
//!   interval is the checkpoint-spacing ablation knob (experiment E11).
//! * `ReplayCache` *(crate-private)* — the memo owned by every
//!   [`Execution`]: checkpoints along the
//!   full serial order for actual-state queries, plus checkpoints along
//!   the **most recent replay path** for prefix-subsequence queries.
//!   A query for a new prefix resumes from the deepest checkpoint at or
//!   below the longest shared prefix with the previous path, so a sweep
//!   of near-identical prefixes (exactly what `verify`, grouping
//!   discovery and k-completeness checkers produce) costs
//!   `O(changed suffix + interval)` per query instead of `O(n)`.
//! * [`Replayer`] — the public face of the same cache for code that has
//!   an update sequence but no `Execution` (cost-bound subsequence
//!   enumeration, benches, ad-hoc analysis).
//!
//! Streaming (`fold`-style) traversal of all actual states lives on
//! `Execution` itself
//! ([`fold_actual_states`](crate::execution::Execution::fold_actual_states) /
//! [`for_each_actual_state`](crate::execution::Execution::for_each_actual_state));
//! it is a plain forward pass and deliberately does not touch the cache,
//! so callbacks may re-enter other state queries freely.

use crate::app::Application;
use crate::execution::{Execution, TxnIndex};

/// Global replay metrics, resolved once and cached — per-query cost when
/// enabled is a handful of relaxed atomic adds, nothing when disabled.
///
/// * `replay.queries` / `replay.applied` / `replay.reused` — the global
///   equivalents of [`ReplayStats`] across every cache in the process.
/// * `replay.ckpt_hits` / `replay.ckpt_misses` — queries that resumed
///   from a checkpoint or cached tip vs. from the initial state.
/// * `replay.lcp` — histogram of the longest-common-prefix length each
///   prefix query shared with its predecessor (the reuse opportunity).
/// * `replay.in_place_applies` — updates advanced via
///   [`Application::apply_in_place`] instead of clone-and-replace.
/// * `state.clone_count` / `state.clone_bytes` — full state snapshots
///   cloned (checkpoint records, cached tips) and their cost per
///   [`Application::state_size_hint`]. The clone-budget CI gate watches
///   `state.clone_bytes`; a snapshot-copying regression moves it first.
struct ReplayMetrics {
    queries: std::sync::Arc<shard_obs::Counter>,
    applied: std::sync::Arc<shard_obs::Counter>,
    reused: std::sync::Arc<shard_obs::Counter>,
    ckpt_hits: std::sync::Arc<shard_obs::Counter>,
    ckpt_misses: std::sync::Arc<shard_obs::Counter>,
    lcp: std::sync::Arc<shard_obs::Histogram>,
    in_place: std::sync::Arc<shard_obs::Counter>,
    clone_count: std::sync::Arc<shard_obs::Counter>,
    clone_bytes: std::sync::Arc<shard_obs::Counter>,
}

fn replay_metrics() -> &'static ReplayMetrics {
    static METRICS: std::sync::OnceLock<ReplayMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let r = shard_obs::Registry::global();
        ReplayMetrics {
            queries: r.counter("replay.queries"),
            applied: r.counter("replay.applied"),
            reused: r.counter("replay.reused"),
            ckpt_hits: r.counter("replay.ckpt_hits"),
            ckpt_misses: r.counter("replay.ckpt_misses"),
            lcp: r.histogram("replay.lcp"),
            in_place: r.counter("replay.in_place_applies"),
            clone_count: r.counter("state.clone_count"),
            clone_bytes: r.counter("state.clone_bytes"),
        }
    })
}

/// Records that a full state snapshot was cloned somewhere in the
/// state layer — a checkpoint record, a cached tip, a resume copy.
/// `bytes` comes from [`Application::state_size_hint`]. Feeds the
/// `state.clone_count` / `state.clone_bytes` counters; no-op while the
/// obs layer is disabled. Public because the simulator's merge log
/// clones against the same budget.
pub fn note_state_clone(bytes: usize) {
    if shard_obs::enabled() {
        let m = replay_metrics();
        m.clone_count.inc();
        m.clone_bytes.add(bytes as u64);
    }
}

/// Records `count` updates advanced via
/// [`Application::apply_in_place`] (counter
/// `replay.in_place_applies`). Public for the same reason as
/// [`note_state_clone`].
pub fn note_in_place_applies(count: u64) {
    if shard_obs::enabled() {
        replay_metrics().in_place.add(count);
    }
}

/// Default spacing, in applied updates, between state checkpoints.
///
/// Matches the simulator's default merge-log checkpoint interval, so the
/// core replay cache and the undo/redo log have the same replay-depth
/// bound out of the box.
pub const DEFAULT_CHECKPOINT_INTERVAL: usize = 32;

/// Cumulative counters describing how much work the replay engine did —
/// and, via `reused`, how much from-scratch work it avoided.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// State queries answered.
    pub queries: u64,
    /// Updates actually applied while answering them.
    pub applied: u64,
    /// Updates *not* re-applied because a checkpoint or cached tip
    /// already covered them. A from-scratch engine would have
    /// `applied + reused` applications.
    pub reused: u64,
}

/// A sparse sequence of prefix-state checkpoints: strictly increasing
/// `(updates applied, state)` pairs, recorded at most every `interval`
/// updates.
///
/// This is the structure the paper's §1.2 merge discussion attributes to
/// \[BK\]/\[SKS\]: keep periodic snapshots so that undoing to a timestamp
/// means dropping the invalidated suffix of checkpoints and redoing from
/// the deepest survivor. The same structure serves the in-memory replay
/// cache of [`Replayer`] and `Execution`.
///
/// With structurally-shared states (e.g. [`crate::pmap::PMap`]-backed),
/// consecutive recorded snapshots share all but the nodes touched since
/// the previous record — the sequence is then a **delta chain**: each
/// link costs O(delta) memory, not O(state). For deep-cloning states
/// the optional *anchor spacing* knob
/// ([`Checkpoints::with_anchor_spacing`]) bounds the chain instead:
/// only every `anchor_every`-th recorded point is retained long-term
/// (plus the newest point, where the next resume usually lands), so
/// the chain holds `O(n / (interval · anchor_every))` full anchors.
/// Pruning never changes any state a resume produces — only how far
/// back a resume may have to replay — and the default spacing of 1
/// retains every point, byte-identical to the pre-delta-chain
/// behaviour (a property test in `tests/state_inplace.rs` pins this).
#[derive(Clone, Debug)]
pub struct Checkpoints<S> {
    every: usize,
    anchor_every: usize,
    /// Successful records since the last retained anchor; 0 means the
    /// newest point *is* an anchor.
    since_anchor: usize,
    points: Vec<(usize, S)>,
}

impl<S: Clone> Checkpoints<S> {
    /// Creates an empty checkpoint sequence recording every `every`
    /// applied updates, retaining every recorded point (anchor
    /// spacing 1).
    ///
    /// # Panics
    ///
    /// Panics if `every == 0` (checkpoint interval must be positive).
    pub fn new(every: usize) -> Self {
        Self::with_anchor_spacing(every, 1)
    }

    /// Creates an empty checkpoint sequence recording every `every`
    /// applied updates and retaining one long-term anchor per
    /// `anchor_every` recorded points (the newest point is always
    /// kept). `anchor_every == 1` keeps everything — the snapshot
    /// behaviour [`Checkpoints::new`] gives.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0` or `anchor_every == 0`.
    pub fn with_anchor_spacing(every: usize, anchor_every: usize) -> Self {
        assert!(every > 0, "checkpoint interval must be positive");
        assert!(anchor_every > 0, "anchor spacing must be positive");
        Checkpoints {
            every,
            anchor_every,
            since_anchor: 0,
            points: Vec::new(),
        }
    }

    /// The configured spacing between checkpoints, in applied updates.
    pub fn interval(&self) -> usize {
        self.every
    }

    /// The anchor spacing: how many recorded points yield one retained
    /// long-term anchor (1 = retain every point).
    pub fn anchor_spacing(&self) -> usize {
        self.anchor_every
    }

    /// The number of checkpoints currently stored.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no checkpoints are stored.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Drops all checkpoints, keeping the interval.
    pub fn clear(&mut self) {
        self.points.clear();
        self.since_anchor = 0;
    }

    /// The depth (applied-update count) of the deepest checkpoint, or 0.
    pub fn last_len(&self) -> usize {
        self.points.last().map_or(0, |&(l, _)| l)
    }

    /// The deepest checkpoint, if any.
    pub fn last(&self) -> Option<(usize, &S)> {
        self.points.last().map(|(l, s)| (*l, s))
    }

    /// Records `state` as the checkpoint after `len` applied updates if
    /// the deepest checkpoint is at least `interval` updates back (an
    /// empty sequence counts as a checkpoint at depth 0). Calls with
    /// `len` at or below the deepest checkpoint are no-ops — replaying
    /// *between* existing checkpoints records nothing new. Returns
    /// whether a checkpoint was stored.
    pub fn record(&mut self, len: usize, state: &S) -> bool {
        if len >= self.last_len() + self.every {
            // Delta-chain pruning: the newest point was provisional
            // unless it fell on an anchor; with spacing 1 every point
            // is an anchor and nothing is ever dropped.
            if self.since_anchor != 0 {
                self.points.pop();
            }
            self.since_anchor = (self.since_anchor + 1) % self.anchor_every;
            self.points.push((len, state.clone()));
            true
        } else {
            false
        }
    }

    /// Drops every checkpoint deeper than `keep` applied updates — the
    /// *undo* half of undo/redo: checkpoints past an insertion point are
    /// invalidated, those at or before it survive.
    pub fn truncate(&mut self, keep: usize) {
        let before = self.points.len();
        while self.points.last().is_some_and(|&(l, _)| l > keep) {
            self.points.pop();
        }
        if self.points.len() != before {
            // The surviving tip becomes the anchor the next run of
            // records counts from.
            self.since_anchor = 0;
        }
    }

    /// The deepest checkpoint at or below `limit` applied updates —
    /// the best place to resume a replay targeting depth `limit`.
    pub fn floor(&self, limit: usize) -> Option<(usize, &S)> {
        let idx = self.points.partition_point(|&(l, _)| l <= limit);
        if idx == 0 {
            None
        } else {
            let (l, s) = &self.points[idx - 1];
            Some((*l, s))
        }
    }
}

/// The memo behind all incremental state queries.
///
/// Holds two checkpoint sequences plus a cached "tip" for each:
///
/// * `full` — checkpoints along the full serial order `A₀ … Aₙ₋₁`,
///   serving actual-state queries. Executions are append-only, so these
///   never invalidate.
/// * `path` / `path_ckpts` — the index path of the most recent
///   prefix-subsequence replay and checkpoints along it. A new query
///   resumes from the deepest checkpoint at or below the longest prefix
///   shared with `path`.
#[derive(Clone, Debug)]
pub(crate) struct ReplayCache<A: Application> {
    /// Index path of the most recent prefix replay.
    path: Vec<TxnIndex>,
    /// Checkpoints along `path`, keyed by depth *into the path*.
    path_ckpts: Checkpoints<A::State>,
    /// State after applying all of `path`, if known.
    path_tip: Option<A::State>,
    /// Checkpoints along the full serial order, keyed by prefix length.
    full: Checkpoints<A::State>,
    /// Deepest full-order state computed so far `(prefix length, state)`.
    full_tip: Option<(usize, A::State)>,
    stats: ReplayStats,
}

impl<A: Application> ReplayCache<A> {
    pub(crate) fn new(every: usize) -> Self {
        ReplayCache {
            path: Vec::new(),
            path_ckpts: Checkpoints::new(every),
            path_tip: None,
            full: Checkpoints::new(every),
            full_tip: None,
            stats: ReplayStats::default(),
        }
    }

    pub(crate) fn interval(&self) -> usize {
        self.path_ckpts.interval()
    }

    pub(crate) fn stats(&self) -> ReplayStats {
        self.stats
    }

    /// Re-creates both checkpoint sequences with a new interval,
    /// dropping cached states (stats are kept — they describe work
    /// done, not the cache contents).
    pub(crate) fn set_interval(&mut self, every: usize) {
        self.path_ckpts = Checkpoints::new(every);
        self.full = Checkpoints::new(every);
        self.clear();
    }

    /// Drops all cached states (keeps the interval and the stats).
    /// Required after in-place mutation of already-replayed updates;
    /// appends never require it.
    pub(crate) fn clear(&mut self) {
        self.path.clear();
        self.path_ckpts.clear();
        self.path_tip = None;
        self.full.clear();
        self.full_tip = None;
    }

    /// The state after applying the updates selected by `prefix`
    /// (in order) to the initial state. `update_at(j)` supplies `Aⱼ`.
    ///
    /// Resumes from the deepest cached point at or below the longest
    /// prefix shared with the previous query's path.
    pub(crate) fn state_after_prefix<'u>(
        &mut self,
        app: &A,
        update_at: impl Fn(TxnIndex) -> &'u A::Update,
        prefix: &[TxnIndex],
    ) -> A::State
    where
        A::Update: 'u,
    {
        self.stats.queries += 1;
        // Longest common prefix with the previous path, compared in
        // blocks: whole-execution sweeps ask ~n queries whose shared
        // runs are ~n long, so this comparison is the only O(n²) term
        // left in a sweep — block equality compiles to wide compares
        // instead of an element-at-a-time loop.
        let m = prefix.len().min(self.path.len());
        let mut lcp = 0;
        const BLOCK: usize = 64;
        while lcp + BLOCK <= m && prefix[lcp..lcp + BLOCK] == self.path[lcp..lcp + BLOCK] {
            lcp += BLOCK;
        }
        while lcp < m && prefix[lcp] == self.path[lcp] {
            lcp += 1;
        }
        // Deepest path-based resume point.
        let path_resume: (usize, Option<A::State>) =
            if lcp == self.path.len() && self.path_tip.is_some() {
                // The previous path is a prefix of this query: extend its tip.
                (lcp, self.path_tip.clone())
            } else {
                match self.path_ckpts.floor(lcp) {
                    Some((l, s)) => (l, Some(s.clone())),
                    None => (0, None),
                }
            };
        // The query's leading *serial run* — `prefix[j] == j` — walks the
        // full order itself, so full-order checkpoints (e.g. prebuilt by
        // `state_after_first`) are equally valid resume points for it.
        // This is what lets many fresh caches share one warmed full
        // chain instead of each replaying the common prefix from `s₀`.
        // `prefix` is strictly increasing, so `prefix[j] - j` is
        // non-decreasing and the identity run is a true prefix — find
        // its end by binary search instead of walking it.
        let serial_run = {
            let (mut lo, mut hi) = (0usize, prefix.len());
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if prefix[mid] == mid {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            lo
        };
        let mut full_resume: Option<(usize, A::State)> =
            self.full.floor(serial_run).map(|(l, s)| (l, s.clone()));
        if let Some((l, s)) = &self.full_tip {
            if *l <= serial_run && *l > full_resume.as_ref().map_or(0, |&(fl, _)| fl) {
                full_resume = Some((*l, s.clone()));
            }
        }
        let (depth, mut state, from_full) = match full_resume {
            Some((fl, fs)) if fl > path_resume.0 => (fl, fs, true),
            _ => match path_resume {
                (d, Some(s)) => (d, s, false),
                _ => (0, app.initial_state(), false),
            },
        };
        self.stats.reused += depth as u64;
        if shard_obs::enabled() {
            let m = replay_metrics();
            m.queries.inc();
            m.reused.add(depth as u64);
            // Each loop iteration below applies exactly one update,
            // in place.
            m.applied.add((prefix.len() - depth) as u64);
            m.in_place.add((prefix.len() - depth) as u64);
            m.lcp.record(lcp as u64);
            if depth > 0 {
                m.ckpt_hits.inc();
            } else {
                m.ckpt_misses.inc();
            }
        }
        if from_full {
            // The old path may disagree with `prefix[..depth]`; the
            // serial run guarantees `prefix[..depth]` is the identity,
            // so rebuild the path bookkeeping from the full-order state.
            self.path.clear();
            self.path_ckpts.clear();
            self.path.extend_from_slice(&prefix[..depth]);
            self.path_ckpts.record(depth, &state);
        } else {
            self.path.truncate(depth);
            self.path_ckpts.truncate(depth);
        }
        for &j in &prefix[depth..] {
            app.apply_in_place(&mut state, update_at(j));
            self.stats.applied += 1;
            self.path.push(j);
            if self.path_ckpts.record(self.path.len(), &state) {
                note_state_clone(app.state_size_hint(&state));
            }
        }
        note_state_clone(app.state_size_hint(&state));
        self.path_tip = Some(state.clone());
        state
    }

    /// The state after the first `m` updates of the serial order —
    /// `sₘ` in the paper's numbering (`s₀` for `m = 0`).
    pub(crate) fn state_after_first<'u>(
        &mut self,
        app: &A,
        update_at: impl Fn(TxnIndex) -> &'u A::Update,
        m: usize,
    ) -> A::State
    where
        A::Update: 'u,
    {
        self.stats.queries += 1;
        let mut base: Option<(usize, A::State)> = self.full.floor(m).map(|(l, s)| (l, s.clone()));
        if let Some((l, s)) = &self.full_tip {
            if *l <= m && *l > base.as_ref().map_or(0, |(bl, _)| *bl) {
                base = Some((*l, s.clone()));
            }
        }
        let (mut len, mut state) = base.unwrap_or((0, app.initial_state()));
        self.stats.reused += len as u64;
        if shard_obs::enabled() {
            let metrics = replay_metrics();
            metrics.queries.inc();
            metrics.reused.add(len as u64);
            metrics.applied.add((m - len) as u64);
            metrics.in_place.add((m - len) as u64);
            if len > 0 {
                metrics.ckpt_hits.inc();
            } else {
                metrics.ckpt_misses.inc();
            }
        }
        while len < m {
            app.apply_in_place(&mut state, update_at(len));
            len += 1;
            self.stats.applied += 1;
            if self.full.record(len, &state) {
                note_state_clone(app.state_size_hint(&state));
            }
        }
        if self.full_tip.as_ref().is_none_or(|(l, _)| *l <= m) {
            note_state_clone(app.state_size_hint(&state));
            self.full_tip = Some((m, state.clone()));
        }
        state
    }
}

/// Incremental state computation over an update sequence.
///
/// The public face of the replay cache for code that holds an update
/// sequence (or an [`Execution`]) and asks for many related states:
/// cost-bound subsequence enumeration, checker benches, analysis sweeps.
/// Queries whose index sequences share long prefixes — which is what
/// every whole-execution sweep in this codebase produces — are answered
/// by longest-shared-prefix reuse instead of from-scratch replay.
///
/// ```
/// use shard_core::{Application, DecisionOutcome, replay::Replayer};
/// # struct Counter;
/// # #[derive(Clone, Debug, PartialEq)]
/// # struct Add(i64);
/// # impl Application for Counter {
/// #     type State = i64;
/// #     type Update = Add;
/// #     type Decision = Add;
/// #     fn initial_state(&self) -> i64 { 0 }
/// #     fn is_well_formed(&self, _: &i64) -> bool { true }
/// #     fn apply(&self, s: &i64, u: &Add) -> i64 { s + u.0 }
/// #     fn decide(&self, d: &Add, _: &i64) -> DecisionOutcome<Add> {
/// #         DecisionOutcome::update_only(d.clone())
/// #     }
/// #     fn constraint_count(&self) -> usize { 0 }
/// #     fn constraint_name(&self, _: usize) -> &str { unreachable!() }
/// #     fn cost(&self, _: &i64, _: usize) -> u64 { 0 }
/// # }
/// let app = Counter;
/// let updates = vec![Add(1), Add(2), Add(4)];
/// let mut replayer = Replayer::from_updates(&app, &updates);
/// assert_eq!(replayer.state_after_prefix(&[0, 2]), 5);
/// assert_eq!(replayer.state_after_prefix(&[0, 1, 2]), 7);
/// assert_eq!(replayer.final_state(), 7);
/// ```
pub struct Replayer<'a, A: Application> {
    app: &'a A,
    updates: Vec<&'a A::Update>,
    cache: ReplayCache<A>,
}

impl<'a, A: Application> Replayer<'a, A> {
    /// A replayer over the update sequence of `exec`, with the default
    /// checkpoint interval.
    pub fn new(app: &'a A, exec: &'a Execution<A>) -> Self {
        Self::with_interval(app, exec, DEFAULT_CHECKPOINT_INTERVAL)
    }

    /// A replayer over the update sequence of `exec` with checkpoints
    /// every `every` applied updates.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn with_interval(app: &'a A, exec: &'a Execution<A>, every: usize) -> Self {
        Self::from_updates_with_interval(app, exec.records().iter().map(|r| &r.update), every)
    }

    /// A replayer over an explicit update sequence, with the default
    /// checkpoint interval.
    pub fn from_updates(app: &'a A, updates: impl IntoIterator<Item = &'a A::Update>) -> Self {
        Self::from_updates_with_interval(app, updates, DEFAULT_CHECKPOINT_INTERVAL)
    }

    /// A replayer over an explicit update sequence with checkpoints every
    /// `every` applied updates.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn from_updates_with_interval(
        app: &'a A,
        updates: impl IntoIterator<Item = &'a A::Update>,
        every: usize,
    ) -> Self {
        Replayer {
            app,
            updates: updates.into_iter().collect(),
            cache: ReplayCache::new(every),
        }
    }

    /// The number of updates in the sequence.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Whether the update sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// The checkpoint spacing, in applied updates.
    pub fn interval(&self) -> usize {
        self.cache.interval()
    }

    /// Cumulative work counters for this replayer.
    pub fn stats(&self) -> ReplayStats {
        self.cache.stats()
    }

    /// The state after applying the updates selected by `prefix`, in the
    /// given order, to the initial state. Indices may select any
    /// subsequence (the paper's prefix subsequences and the kept sets of
    /// cost-bound instances are the intended callers).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn state_after_prefix(&mut self, prefix: &[TxnIndex]) -> A::State {
        self.cache
            .state_after_prefix(self.app, |j| self.updates[j], prefix)
    }

    /// The state after the first `m` updates of the sequence (`s₀` for
    /// `m = 0`), answered from full-order checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `m > self.len()`.
    pub fn state_after_first(&mut self, m: usize) -> A::State {
        assert!(
            m <= self.updates.len(),
            "state_after_first: {m} updates requested"
        );
        self.cache
            .state_after_first(self.app, |j| self.updates[j], m)
    }

    /// The state after the whole sequence.
    pub fn final_state(&mut self) -> A::State {
        self.state_after_first(self.updates.len())
    }

    /// Warms the full-order checkpoint chain in one forward pass.
    /// Subsequent [`Replayer::state_after_prefix`] queries whose leading
    /// indices follow the serial order (`prefix[j] == j`) resume from
    /// the deepest checkpoint under that run instead of replaying from
    /// the initial state. Idempotent cache priming; answers never
    /// change.
    pub fn prebuild(&mut self) {
        let _ = self.final_state();
    }

    /// Streams all states `s₀, s₁, …, sₙ` through `f` in one forward
    /// pass, threading an accumulator. The callback receives the number
    /// of updates applied so far together with the state.
    pub fn fold_states<T>(&self, init: T, mut f: impl FnMut(T, usize, &A::State) -> T) -> T {
        let mut s = self.app.initial_state();
        let mut acc = f(init, 0, &s);
        for (i, u) in self.updates.iter().enumerate() {
            self.app.apply_in_place(&mut s, u);
            acc = f(acc, i + 1, &s);
        }
        note_in_place_applies(self.updates.len() as u64);
        acc
    }
}

/// Warms the full-order checkpoint chain of every execution in
/// parallel — one pool worker per contiguous block of executions, one
/// forward pass each (see
/// [`Execution::prebuild_actual_states`]).
/// Caches are per-execution, so the parallel warm-up is embarrassingly
/// parallel and the resulting cache contents are independent of the
/// thread count.
pub fn prebuild_executions<A>(pool: &shard_pool::PoolConfig, app: &A, execs: &mut [Execution<A>])
where
    A: Application + Sync,
    Execution<A>: Send,
{
    shard_pool::par_for_each_mut(pool, execs, |_, exec| exec.prebuild_actual_states(app));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::DecisionOutcome;

    /// Toy application: state is the concatenation-as-number of applied
    /// update ids, so every distinct subsequence yields a distinct state
    /// and any replay mistake is visible.
    struct Trace;

    #[derive(Clone, Debug, PartialEq)]
    struct Tag(u64);

    impl Application for Trace {
        type State = Vec<u64>;
        type Update = Tag;
        type Decision = Tag;
        fn initial_state(&self) -> Vec<u64> {
            Vec::new()
        }
        fn is_well_formed(&self, _: &Vec<u64>) -> bool {
            true
        }
        fn apply(&self, s: &Vec<u64>, u: &Tag) -> Vec<u64> {
            let mut s = s.clone();
            s.push(u.0);
            s
        }
        fn decide(&self, d: &Tag, _: &Vec<u64>) -> DecisionOutcome<Tag> {
            DecisionOutcome::update_only(d.clone())
        }
        fn constraint_count(&self) -> usize {
            0
        }
        fn constraint_name(&self, _: usize) -> &str {
            unreachable!()
        }
        fn cost(&self, _: &Vec<u64>, _: usize) -> u64 {
            0
        }
    }

    fn naive(updates: &[Tag], prefix: &[usize]) -> Vec<u64> {
        prefix.iter().map(|&j| updates[j].0).collect()
    }

    #[test]
    fn checkpoints_record_at_interval() {
        let mut c: Checkpoints<u32> = Checkpoints::new(3);
        assert!(!c.record(1, &10));
        assert!(!c.record(2, &20));
        assert!(c.record(3, &30));
        assert!(!c.record(4, &40));
        assert!(c.record(6, &60));
        assert_eq!(c.last(), Some((6, &60)));
        assert_eq!(c.last_len(), 6);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn checkpoints_floor_and_truncate() {
        let mut c: Checkpoints<u32> = Checkpoints::new(2);
        for len in 1..=10usize {
            c.record(len, &(len as u32 * 10));
        }
        assert_eq!(c.floor(1), None);
        assert_eq!(c.floor(5), Some((4, &40)));
        assert_eq!(c.floor(100), Some((10, &100)));
        c.truncate(5);
        assert_eq!(c.last(), Some((4, &40)));
        c.truncate(0);
        assert!(c.is_empty());
        assert_eq!(c.floor(100), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn checkpoints_reject_zero_interval() {
        let _ = Checkpoints::<u32>::new(0);
    }

    #[test]
    #[should_panic(expected = "anchor spacing must be positive")]
    fn checkpoints_reject_zero_anchor_spacing() {
        let _ = Checkpoints::<u32>::with_anchor_spacing(4, 0);
    }

    #[test]
    fn anchor_spacing_prunes_to_anchors_plus_tip() {
        let mut c: Checkpoints<u32> = Checkpoints::with_anchor_spacing(1, 3);
        assert_eq!(c.anchor_spacing(), 3);
        for len in 1..=7usize {
            assert!(c.record(len, &(len as u32 * 10)));
        }
        // Records 3 and 6 are anchors; record 7 is the retained tip.
        let kept: Vec<usize> = (1..=7).filter_map(|l| c.floor(l).map(|(k, _)| k)).collect();
        assert_eq!(c.len(), 3);
        assert_eq!(c.last(), Some((7, &70)));
        assert_eq!(kept, vec![3, 3, 3, 6, 7], "floors resolve to anchors");
        // Every surviving point still maps to the state recorded at
        // that depth — pruning drops points, never corrupts them.
        assert_eq!(c.floor(5), Some((3, &30)));
        // Truncation restarts the anchor phase at the surviving tip.
        c.truncate(6);
        assert_eq!(c.last(), Some((6, &60)));
        assert!(c.record(7, &70));
        assert_eq!(c.len(), 3, "post-truncate tip kept as an anchor");
    }

    #[test]
    fn anchor_spacing_one_is_byte_identical_to_snapshots() {
        let mut plain: Checkpoints<u32> = Checkpoints::new(2);
        let mut delta: Checkpoints<u32> = Checkpoints::with_anchor_spacing(2, 1);
        for len in 1..=20usize {
            assert_eq!(
                plain.record(len, &(len as u32)),
                delta.record(len, &(len as u32))
            );
        }
        for limit in 0..=21 {
            assert_eq!(plain.floor(limit), delta.floor(limit));
        }
        assert_eq!(plain.len(), delta.len());
    }

    #[test]
    fn replayer_matches_naive_on_prefix_sweeps() {
        let app = Trace;
        let updates: Vec<Tag> = (0..100).map(Tag).collect();
        for every in [1, 2, 7, 32, 1000] {
            let mut r = Replayer::from_updates_with_interval(&app, &updates, every);
            // The sweep every whole-execution checker produces: prefix i
            // is "all of 0..i except a sliding window".
            for i in 0..updates.len() {
                let prefix: Vec<usize> = (0..i).filter(|j| !(j + 3 > i && j % 2 == 0)).collect();
                assert_eq!(
                    r.state_after_prefix(&prefix),
                    naive(&updates, &prefix),
                    "interval {every}, txn {i}"
                );
            }
        }
    }

    #[test]
    fn replayer_handles_divergent_paths() {
        let app = Trace;
        let updates: Vec<Tag> = (0..40).map(Tag).collect();
        let mut r = Replayer::from_updates_with_interval(&app, &updates, 4);
        let a: Vec<usize> = (0..30).collect();
        let b: Vec<usize> = (0..30).filter(|j| j % 3 != 1).collect();
        let c: Vec<usize> = vec![5, 7, 11];
        for prefix in [&a, &b, &c, &a, &c, &b] {
            assert_eq!(r.state_after_prefix(prefix), naive(&updates, prefix));
        }
    }

    #[test]
    fn replayer_reuses_work_across_related_queries() {
        let app = Trace;
        let updates: Vec<Tag> = (0..200).map(Tag).collect();
        let mut r = Replayer::from_updates_with_interval(&app, &updates, 8);
        let full: Vec<usize> = (0..200).collect();
        r.state_after_prefix(&full);
        let applied_first = r.stats().applied;
        // Dropping one late index shares a 150-long prefix: the second
        // query must not replay from scratch.
        let almost: Vec<usize> = (0..200).filter(|&j| j != 150).collect();
        r.state_after_prefix(&almost);
        let applied_second = r.stats().applied - applied_first;
        assert!(
            applied_second <= 200 - 150 + 8,
            "second query applied {applied_second} updates"
        );
        assert!(r.stats().reused > 0);
    }

    #[test]
    fn state_after_first_uses_full_checkpoints() {
        let app = Trace;
        let updates: Vec<Tag> = (0..100).map(Tag).collect();
        let mut r = Replayer::from_updates_with_interval(&app, &updates, 10);
        let full: Vec<usize> = (0..100).collect();
        for m in [100usize, 50, 55, 0, 99] {
            assert_eq!(r.state_after_first(m), naive(&updates, &full[..m]));
        }
        // A forward sweep after the warm-up replays only between
        // checkpoints: far less than the quadratic 100·100/2.
        let before = r.stats().applied;
        for m in 0..=100 {
            r.state_after_first(m);
        }
        let swept = r.stats().applied - before;
        assert!(swept <= 100 * 10, "sweep applied {swept} updates");
    }

    #[test]
    fn prefix_queries_resume_from_prebuilt_full_chain() {
        let app = Trace;
        let updates: Vec<Tag> = (0..200).map(Tag).collect();
        let mut r = Replayer::from_updates_with_interval(&app, &updates, 8);
        r.prebuild();
        let before = r.stats().applied;
        // A kept set missing only index 190 has a serial run of length
        // 190; a cold path cache would replay all 199 updates, but the
        // prebuilt full chain offers a checkpoint near depth 190.
        let kept: Vec<usize> = (0..200).filter(|&j| j != 190).collect();
        assert_eq!(r.state_after_prefix(&kept), naive(&updates, &kept));
        let applied = r.stats().applied - before;
        assert!(applied <= 200 - 190 + 8, "applied {applied} after prebuild");
        // And the answers stay correct when the path cache is reused for
        // a related query afterwards.
        let kept2: Vec<usize> = (0..200).filter(|&j| j != 190 && j != 195).collect();
        assert_eq!(r.state_after_prefix(&kept2), naive(&updates, &kept2));
    }

    #[test]
    fn full_chain_resume_never_changes_answers() {
        let app = Trace;
        let updates: Vec<Tag> = (0..60).map(Tag).collect();
        // Interleave serial-run queries with divergent paths, warm vs
        // cold, and compare every answer against the naive oracle.
        let queries: Vec<Vec<usize>> = vec![
            (0..50).collect(),
            (0..50).filter(|&j| j != 49).collect(),
            (0..50).filter(|&j| j % 5 != 2).collect(),
            (0..60).collect(),
            vec![3, 7, 11],
            (0..58).filter(|&j| j != 20).collect(),
            (0..60).filter(|&j| j != 59).collect(),
        ];
        let mut warm = Replayer::from_updates_with_interval(&app, &updates, 4);
        warm.prebuild();
        let mut cold = Replayer::from_updates_with_interval(&app, &updates, 4);
        for q in &queries {
            let expect = naive(&updates, q);
            assert_eq!(warm.state_after_prefix(q), expect, "warm, query {q:?}");
            assert_eq!(cold.state_after_prefix(q), expect, "cold, query {q:?}");
        }
    }

    #[test]
    fn parallel_prebuild_warms_every_execution() {
        use crate::execution::ExecutionBuilder;
        let app = Trace;
        let mut execs: Vec<Execution<Trace>> = (0..9)
            .map(|k| {
                let mut b = ExecutionBuilder::new(&app);
                for i in 0..40 {
                    b.push_complete(Tag(k * 1000 + i)).unwrap();
                }
                b.finish()
            })
            .collect();
        for threads in [1, 4] {
            prebuild_executions(
                &shard_pool::PoolConfig::with_threads(threads),
                &app,
                &mut execs,
            );
        }
        for (k, e) in execs.iter().enumerate() {
            let expect: Vec<u64> = (0..40).map(|i| k as u64 * 1000 + i).collect();
            assert_eq!(e.final_state(&app), expect);
            // The warm chain serves mid-sequence queries without a full
            // replay (stats only move by the short suffix).
            let before = e.replay_stats().applied;
            assert_eq!(e.actual_state_after(&app, 35), expect[..36].to_vec());
            assert!(e.replay_stats().applied - before <= DEFAULT_CHECKPOINT_INTERVAL as u64);
        }
    }

    #[test]
    fn fold_states_streams_every_state() {
        let app = Trace;
        let updates: Vec<Tag> = (0..5).map(Tag).collect();
        let r = Replayer::from_updates(&app, &updates);
        let lens = r.fold_states(Vec::new(), |mut acc, m, s| {
            assert_eq!(s.len(), m);
            acc.push(m);
            acc
        });
        assert_eq!(lens, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_sequence_yields_initial_state() {
        let app = Trace;
        let updates: Vec<Tag> = Vec::new();
        let mut r = Replayer::from_updates(&app, &updates);
        assert!(r.is_empty());
        assert_eq!(r.state_after_prefix(&[]), Vec::<u64>::new());
        assert_eq!(r.final_state(), Vec::<u64>::new());
    }
}
