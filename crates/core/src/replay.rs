//! Incremental, checkpointed state computation — the *replay engine*.
//!
//! Everything in the paper is defined by replaying update sequences from
//! the initial state: apparent states replay a prefix subsequence `𝒫ᵢ`,
//! actual states replay the full serial order, cost bounds replay kept
//! subsequences, and the undo/redo merge of §1.2 replays a timestamped
//! log. The seed implementation recomputed each of these from scratch on
//! every query, which made whole-execution checkers (verify, grouping
//! discovery, k-completeness sweeps) quadratic in the execution length.
//!
//! This module centralizes state computation in one place:
//!
//! * [`Checkpoints`] — a sparse, strictly increasing sequence of
//!   `(updates applied, state)` pairs recorded every `interval` updates.
//!   Shared verbatim by the simulator's undo/redo merge log, where the
//!   interval is the checkpoint-spacing ablation knob (experiment E11).
//! * `ReplayCache` *(crate-private)* — the memo owned by every
//!   [`Execution`]: checkpoints along the
//!   full serial order for actual-state queries, plus checkpoints along
//!   the **most recent replay path** for prefix-subsequence queries.
//!   A query for a new prefix resumes from the deepest checkpoint at or
//!   below the longest shared prefix with the previous path, so a sweep
//!   of near-identical prefixes (exactly what `verify`, grouping
//!   discovery and k-completeness checkers produce) costs
//!   `O(changed suffix + interval)` per query instead of `O(n)`.
//! * [`Replayer`] — the public face of the same cache for code that has
//!   an update sequence but no `Execution` (cost-bound subsequence
//!   enumeration, benches, ad-hoc analysis).
//!
//! Streaming (`fold`-style) traversal of all actual states lives on
//! `Execution` itself
//! ([`fold_actual_states`](crate::execution::Execution::fold_actual_states) /
//! [`for_each_actual_state`](crate::execution::Execution::for_each_actual_state));
//! it is a plain forward pass and deliberately does not touch the cache,
//! so callbacks may re-enter other state queries freely.

use crate::app::Application;
use crate::execution::{Execution, TxnIndex};

/// Global replay metrics, resolved once and cached — per-query cost when
/// enabled is a handful of relaxed atomic adds, nothing when disabled.
///
/// * `replay.queries` / `replay.applied` / `replay.reused` — the global
///   equivalents of [`ReplayStats`] across every cache in the process.
/// * `replay.ckpt_hits` / `replay.ckpt_misses` — queries that resumed
///   from a checkpoint or cached tip vs. from the initial state.
/// * `replay.lcp` — histogram of the longest-common-prefix length each
///   prefix query shared with its predecessor (the reuse opportunity).
/// * `replay.in_place_applies` — updates advanced via
///   [`Application::apply_in_place`] instead of clone-and-replace.
/// * `state.clone_count` / `state.clone_bytes` — full state snapshots
///   cloned (checkpoint records, cached tips) and their cost per
///   [`Application::state_size_hint`]. The clone-budget CI gate watches
///   `state.clone_bytes`; a snapshot-copying regression moves it first.
struct ReplayMetrics {
    queries: std::sync::Arc<shard_obs::Counter>,
    applied: std::sync::Arc<shard_obs::Counter>,
    reused: std::sync::Arc<shard_obs::Counter>,
    ckpt_hits: std::sync::Arc<shard_obs::Counter>,
    ckpt_misses: std::sync::Arc<shard_obs::Counter>,
    lcp: std::sync::Arc<shard_obs::Histogram>,
    in_place: std::sync::Arc<shard_obs::Counter>,
    clone_count: std::sync::Arc<shard_obs::Counter>,
    clone_bytes: std::sync::Arc<shard_obs::Counter>,
    spills: std::sync::Arc<shard_obs::Counter>,
    spill_loads: std::sync::Arc<shard_obs::Counter>,
    peak_resident: std::sync::Arc<shard_obs::Gauge>,
}

fn replay_metrics() -> &'static ReplayMetrics {
    static METRICS: std::sync::OnceLock<ReplayMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let r = shard_obs::Registry::global();
        ReplayMetrics {
            queries: r.counter("replay.queries"),
            applied: r.counter("replay.applied"),
            reused: r.counter("replay.reused"),
            ckpt_hits: r.counter("replay.ckpt_hits"),
            ckpt_misses: r.counter("replay.ckpt_misses"),
            lcp: r.histogram("replay.lcp"),
            in_place: r.counter("replay.in_place_applies"),
            clone_count: r.counter("state.clone_count"),
            clone_bytes: r.counter("state.clone_bytes"),
            spills: r.counter("replay.spills"),
            spill_loads: r.counter("replay.spill_loads"),
            peak_resident: r.gauge("state.peak_resident_bytes"),
        }
    })
}

/// Raises the `state.peak_resident_bytes` high-watermark gauge — the
/// observable side of every memory budget the out-of-core tier is
/// checked against. Called at checkpoint spill/load boundaries; no-op
/// while the obs layer is disabled.
pub fn note_resident_bytes(bytes: usize) {
    if shard_obs::enabled() {
        replay_metrics().peak_resident.max(bytes as i64);
    }
}

/// Records that a full state snapshot was cloned somewhere in the
/// state layer — a checkpoint record, a cached tip, a resume copy.
/// `bytes` comes from [`Application::state_size_hint`]. Feeds the
/// `state.clone_count` / `state.clone_bytes` counters; no-op while the
/// obs layer is disabled. Public because the simulator's merge log
/// clones against the same budget.
pub fn note_state_clone(bytes: usize) {
    if shard_obs::enabled() {
        let m = replay_metrics();
        m.clone_count.inc();
        m.clone_bytes.add(bytes as u64);
    }
}

/// Records `count` updates advanced via
/// [`Application::apply_in_place`] (counter
/// `replay.in_place_applies`). Public for the same reason as
/// [`note_state_clone`].
pub fn note_in_place_applies(count: u64) {
    if shard_obs::enabled() {
        replay_metrics().in_place.add(count);
    }
}

/// Default spacing, in applied updates, between state checkpoints.
///
/// Matches the simulator's default merge-log checkpoint interval, so the
/// core replay cache and the undo/redo log have the same replay-depth
/// bound out of the box.
pub const DEFAULT_CHECKPOINT_INTERVAL: usize = 32;

/// Cumulative counters describing how much work the replay engine did —
/// and, via `reused`, how much from-scratch work it avoided.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// State queries answered.
    pub queries: u64,
    /// Updates actually applied while answering them.
    pub applied: u64,
    /// Updates *not* re-applied because a checkpoint or cached tip
    /// already covered them. A from-scratch engine would have
    /// `applied + reused` applications.
    pub reused: u64,
}

/// A sparse sequence of prefix-state checkpoints: strictly increasing
/// `(updates applied, state)` pairs, recorded at most every `interval`
/// updates.
///
/// This is the structure the paper's §1.2 merge discussion attributes to
/// \[BK\]/\[SKS\]: keep periodic snapshots so that undoing to a timestamp
/// means dropping the invalidated suffix of checkpoints and redoing from
/// the deepest survivor. The same structure serves the in-memory replay
/// cache of [`Replayer`] and `Execution`.
///
/// With structurally-shared states (e.g. [`crate::pmap::PMap`]-backed),
/// consecutive recorded snapshots share all but the nodes touched since
/// the previous record — the sequence is then a **delta chain**: each
/// link costs O(delta) memory, not O(state). For deep-cloning states
/// the optional *anchor spacing* knob
/// ([`Checkpoints::with_anchor_spacing`]) bounds the chain instead:
/// only every `anchor_every`-th recorded point is retained long-term
/// (plus the newest point, where the next resume usually lands), so
/// the chain holds `O(n / (interval · anchor_every))` full anchors.
/// Pruning never changes any state a resume produces — only how far
/// back a resume may have to replay — and the default spacing of 1
/// retains every point, byte-identical to the pre-delta-chain
/// behaviour (a property test in `tests/state_inplace.rs` pins this).
#[derive(Clone, Debug)]
pub struct Checkpoints<S> {
    every: usize,
    anchor_every: usize,
    /// Successful records since the last retained anchor; 0 means the
    /// newest point *is* an anchor.
    since_anchor: usize,
    points: Vec<(usize, S)>,
}

impl<S: Clone> Checkpoints<S> {
    /// Creates an empty checkpoint sequence recording every `every`
    /// applied updates, retaining every recorded point (anchor
    /// spacing 1).
    ///
    /// # Panics
    ///
    /// Panics if `every == 0` (checkpoint interval must be positive).
    pub fn new(every: usize) -> Self {
        Self::with_anchor_spacing(every, 1)
    }

    /// Creates an empty checkpoint sequence recording every `every`
    /// applied updates and retaining one long-term anchor per
    /// `anchor_every` recorded points (the newest point is always
    /// kept). `anchor_every == 1` keeps everything — the snapshot
    /// behaviour [`Checkpoints::new`] gives.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0` or `anchor_every == 0`.
    pub fn with_anchor_spacing(every: usize, anchor_every: usize) -> Self {
        assert!(every > 0, "checkpoint interval must be positive");
        assert!(anchor_every > 0, "anchor spacing must be positive");
        Checkpoints {
            every,
            anchor_every,
            since_anchor: 0,
            points: Vec::new(),
        }
    }

    /// The configured spacing between checkpoints, in applied updates.
    pub fn interval(&self) -> usize {
        self.every
    }

    /// The anchor spacing: how many recorded points yield one retained
    /// long-term anchor (1 = retain every point).
    pub fn anchor_spacing(&self) -> usize {
        self.anchor_every
    }

    /// The number of checkpoints currently stored.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no checkpoints are stored.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Drops all checkpoints, keeping the interval.
    pub fn clear(&mut self) {
        self.points.clear();
        self.since_anchor = 0;
    }

    /// The depth (applied-update count) of the deepest checkpoint, or 0.
    pub fn last_len(&self) -> usize {
        self.points.last().map_or(0, |&(l, _)| l)
    }

    /// The deepest checkpoint, if any.
    pub fn last(&self) -> Option<(usize, &S)> {
        self.points.last().map(|(l, s)| (*l, s))
    }

    /// Records `state` as the checkpoint after `len` applied updates if
    /// the deepest checkpoint is at least `interval` updates back (an
    /// empty sequence counts as a checkpoint at depth 0). Calls with
    /// `len` at or below the deepest checkpoint are no-ops — replaying
    /// *between* existing checkpoints records nothing new. Returns
    /// whether a checkpoint was stored.
    pub fn record(&mut self, len: usize, state: &S) -> bool {
        if len >= self.last_len() + self.every {
            // Delta-chain pruning: the newest point was provisional
            // unless it fell on an anchor; with spacing 1 every point
            // is an anchor and nothing is ever dropped.
            if self.since_anchor != 0 {
                self.points.pop();
            }
            self.since_anchor = (self.since_anchor + 1) % self.anchor_every;
            self.points.push((len, state.clone()));
            true
        } else {
            false
        }
    }

    /// Drops every checkpoint deeper than `keep` applied updates — the
    /// *undo* half of undo/redo: checkpoints past an insertion point are
    /// invalidated, those at or before it survive.
    pub fn truncate(&mut self, keep: usize) {
        let before = self.points.len();
        while self.points.last().is_some_and(|&(l, _)| l > keep) {
            self.points.pop();
        }
        if self.points.len() != before {
            // The surviving tip becomes the anchor the next run of
            // records counts from.
            self.since_anchor = 0;
        }
    }

    /// The deepest checkpoint at or below `limit` applied updates —
    /// the best place to resume a replay targeting depth `limit`.
    pub fn floor(&self, limit: usize) -> Option<(usize, &S)> {
        let idx = self.points.partition_point(|&(l, _)| l <= limit);
        if idx == 0 {
            None
        } else {
            let (l, s) = &self.points[idx - 1];
            Some((*l, s))
        }
    }
}

fn encode_state<S: shard_store::Codec>(s: &S, out: &mut Vec<u8>) {
    s.encode(out);
}

fn decode_state<S: shard_store::Codec>(bytes: &[u8]) -> Option<S> {
    S::from_slice(bytes)
}

/// A two-tier checkpoint sequence: the newest `hot_capacity` points
/// stay in RAM (the delta chain every resume usually lands on), while
/// every `spill_spacing`-th point evicted from the hot tier is
/// serialized through a [`Store`](shard_store::Store) as a **cold
/// anchor** — so a 10⁷-update execution keeps O(hot) resident state
/// instead of O(n / interval) snapshots.
///
/// The spill store is a *cache*, not a durability domain: a spilled
/// anchor that fails to write, load or decode (e.g. a kill point cut
/// it in half) is simply skipped and the resume falls back to the next
/// shallower anchor — answers never change, only how far a replay has
/// to run. The serialization functions are captured as plain `fn`
/// pointers at construction (the one place a
/// [`Codec`](shard_store::Codec) bound exists), so every later call
/// site — the merge log's undo/redo paths included — stays free of
/// codec bounds.
///
/// Spilled record byte layout (see `docs/storage.md`): anchor `seq`
/// (a monotone sequence number, so truncated-then-rewritten depths
/// never collide in the insert-only store) keys a chunked group of
/// `write_frame(encode(state))` split into
/// [`CHUNK_BYTES`](shard_store::CHUNK_BYTES) records
/// `(primary = seq, secondary = chunk index)`.
pub struct SpillingCheckpoints<S> {
    every: usize,
    hot_capacity: usize,
    spill_spacing: usize,
    /// Newest points, ascending by depth; parallel to `hot_hints`.
    hot: std::collections::VecDeque<(usize, S)>,
    hot_hints: std::collections::VecDeque<usize>,
    /// Sum of `hot_hints` — the tier's resident-state bytes.
    hot_bytes: usize,
    /// Spilled anchors `(depth, seq)`, ascending by depth; every depth
    /// here is shallower than every hot depth.
    spilled: Vec<(usize, u64)>,
    next_seq: u64,
    evictions: usize,
    store: Box<dyn shard_store::Store + Send>,
    encode: fn(&S, &mut Vec<u8>),
    decode: fn(&[u8]) -> Option<S>,
}

impl<S> std::fmt::Debug for SpillingCheckpoints<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillingCheckpoints")
            .field("every", &self.every)
            .field("hot_capacity", &self.hot_capacity)
            .field("spill_spacing", &self.spill_spacing)
            .field("hot_points", &self.hot.len())
            .field("hot_bytes", &self.hot_bytes)
            .field("spilled", &self.spilled.len())
            .finish()
    }
}

impl<S: Clone> SpillingCheckpoints<S> {
    /// An empty spilling sequence recording every `every` applied
    /// updates, keeping `hot_capacity` points in RAM and spilling
    /// every `spill_spacing`-th evicted point to `store` as a cold
    /// anchor (1 = spill everything evicted).
    ///
    /// # Panics
    ///
    /// Panics if `every`, `hot_capacity` or `spill_spacing` is 0.
    pub fn new(
        store: Box<dyn shard_store::Store + Send>,
        every: usize,
        hot_capacity: usize,
        spill_spacing: usize,
    ) -> Self
    where
        S: shard_store::Codec,
    {
        assert!(every > 0, "checkpoint interval must be positive");
        assert!(hot_capacity > 0, "hot capacity must be positive");
        assert!(spill_spacing > 0, "spill spacing must be positive");
        SpillingCheckpoints {
            every,
            hot_capacity,
            spill_spacing,
            hot: std::collections::VecDeque::new(),
            hot_hints: std::collections::VecDeque::new(),
            hot_bytes: 0,
            spilled: Vec::new(),
            next_seq: 0,
            evictions: 0,
            store,
            encode: encode_state::<S>,
            decode: decode_state::<S>,
        }
    }

    /// The configured spacing between checkpoints, in applied updates.
    pub fn interval(&self) -> usize {
        self.every
    }

    /// Checkpoints currently reachable (hot + spilled).
    pub fn len(&self) -> usize {
        self.hot.len() + self.spilled.len()
    }

    /// Whether no checkpoints are stored.
    pub fn is_empty(&self) -> bool {
        self.hot.is_empty() && self.spilled.is_empty()
    }

    /// Resident (hot-tier) state bytes, per the recorded size hints.
    pub fn resident_bytes(&self) -> usize {
        self.hot_bytes
    }

    /// Spilled cold anchors currently indexed.
    pub fn spilled_anchors(&self) -> usize {
        self.spilled.len()
    }

    /// The spill store — exposed so fault harnesses can crash it under
    /// a live checkpoint sequence.
    pub fn store_mut(&mut self) -> &mut (dyn shard_store::Store + Send) {
        &mut *self.store
    }

    /// The depth of the deepest checkpoint, or 0.
    pub fn last_len(&self) -> usize {
        self.hot
            .back()
            .map(|&(l, _)| l)
            .or_else(|| self.spilled.last().map(|&(l, _)| l))
            .unwrap_or(0)
    }

    /// Records `state` after `len` applied updates under the same
    /// interval gating as [`Checkpoints::record`]; `size_hint` is the
    /// state's [`Application::state_size_hint`] cost, used for
    /// resident-byte accounting. Returns whether a checkpoint was
    /// stored. Spill failures are swallowed — the anchor is just not
    /// indexed.
    pub fn record(&mut self, len: usize, state: &S, size_hint: usize) -> bool {
        if len < self.last_len() + self.every {
            return false;
        }
        note_state_clone(size_hint);
        self.hot.push_back((len, state.clone()));
        self.hot_hints.push_back(size_hint);
        self.hot_bytes += size_hint;
        while self.hot.len() > self.hot_capacity {
            self.evict_front();
        }
        note_resident_bytes(self.hot_bytes);
        true
    }

    fn evict_front(&mut self) {
        let Some((depth, state)) = self.hot.pop_front() else {
            return;
        };
        self.hot_bytes -= self.hot_hints.pop_front().unwrap_or(0);
        self.evictions += 1;
        if !self.evictions.is_multiple_of(self.spill_spacing) {
            return;
        }
        let mut payload = Vec::new();
        (self.encode)(&state, &mut payload);
        let seq = self.next_seq;
        self.next_seq += 1;
        if shard_store::append_chunked(&mut *self.store, seq, &payload).is_ok() {
            self.spilled.push((depth, seq));
            if shard_obs::enabled() {
                replay_metrics().spills.inc();
            }
        }
    }

    /// Drops every checkpoint deeper than `keep` applied updates (the
    /// *undo* half of undo/redo). Spilled store records of dropped
    /// anchors are orphaned, never reused — fresh anchors get fresh
    /// sequence numbers.
    pub fn truncate(&mut self, keep: usize) {
        while self.hot.back().is_some_and(|&(l, _)| l > keep) {
            self.hot.pop_back();
            self.hot_bytes -= self.hot_hints.pop_back().unwrap_or(0);
        }
        while self.spilled.last().is_some_and(|&(l, _)| l > keep) {
            self.spilled.pop();
        }
    }

    /// The deepest checkpoint, cloned out of the hot tier or loaded
    /// back from the spill store.
    pub fn last_owned(&mut self) -> Option<(usize, S)> {
        if let Some((l, s)) = self.hot.back() {
            return Some((*l, s.clone()));
        }
        self.load_deepest_spilled(usize::MAX)
    }

    /// The deepest checkpoint at or below `limit` applied updates —
    /// hot tier first (always deeper where it qualifies), then spilled
    /// anchors deepest-first, skipping any that fail to load or decode.
    pub fn floor_owned(&mut self, limit: usize) -> Option<(usize, S)> {
        if let Some((l, s)) = self.hot.iter().rev().find(|&&(l, _)| l <= limit) {
            return Some((*l, s.clone()));
        }
        self.load_deepest_spilled(limit)
    }

    fn load_deepest_spilled(&mut self, limit: usize) -> Option<(usize, S)> {
        let end = self.spilled.partition_point(|&(l, _)| l <= limit);
        for &(depth, seq) in self.spilled[..end].iter().rev() {
            let Ok(Some(bytes)) = shard_store::read_chunked(&mut *self.store, seq) else {
                continue;
            };
            let Some(state) = (self.decode)(&bytes) else {
                continue;
            };
            if shard_obs::enabled() {
                replay_metrics().spill_loads.inc();
            }
            // The loaded anchor is transiently resident on top of the
            // hot tier; its encoded size is the best proxy we have.
            note_resident_bytes(self.hot_bytes + bytes.len());
            return Some((depth, state));
        }
        None
    }
}

/// A streamed record of the serial order: what
/// [`StreamingExecution::for_each_row`] yields per transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamedRecord<U> {
    /// Real initiation time (the simulator's integer ticks).
    pub time: u64,
    /// Strictly increasing indices in `0..index` the transaction
    /// missed (the complement of its prefix subsequence).
    pub missed: Vec<TxnIndex>,
    /// The update the transaction contributed.
    pub update: U,
}

/// An execution that lives in a [`Store`](shard_store::Store) instead
/// of a `Vec<TxnRecord>`: rows are appended in serial order as chunked
/// records, and every whole-execution traversal —
/// [`fold_actual_states`](StreamingExecution::fold_actual_states),
/// [`for_each_actual_state`](StreamingExecution::for_each_actual_state),
/// the §3 window checker ([`check_stream`](StreamingExecution::check_stream)) —
/// runs directly off a key-order cursor, so peak resident state is one
/// application state plus one row, independent of the execution length.
///
/// Row byte layout (framed and chunked like spilled checkpoints;
/// `docs/storage.md` documents both): `time: u64` big-endian,
/// `missed_len: u32`, `missed[i]: u32` each, then the update's
/// [`Codec`](shard_store::Codec) encoding.
pub struct StreamingExecution<A: crate::app::Application> {
    store: Box<dyn shard_store::Store + Send>,
    len: usize,
    _app: std::marker::PhantomData<fn() -> A>,
}

impl<A: crate::app::Application> std::fmt::Debug for StreamingExecution<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingExecution")
            .field("len", &self.len)
            .finish()
    }
}

impl<A: crate::app::Application> StreamingExecution<A>
where
    A::Update: shard_store::Codec,
{
    /// An empty streaming execution over `store` (which should be
    /// empty; reuse [`StreamingExecution::reopen`] for a store that
    /// already holds rows).
    pub fn new(store: Box<dyn shard_store::Store + Send>) -> Self {
        debug_assert_eq!(store.entries(), 0, "use reopen for a non-empty store");
        StreamingExecution {
            store,
            len: 0,
            _app: std::marker::PhantomData,
        }
    }

    /// Re-attaches to a store holding `len` previously pushed rows.
    pub fn reopen(store: Box<dyn shard_store::Store + Send>, len: usize) -> Self {
        StreamingExecution {
            store,
            len,
            _app: std::marker::PhantomData,
        }
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no rows were pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Durability barrier on the backing store.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.store.sync()
    }

    /// The backing store — exposed so fault harnesses can crash it
    /// under a live execution.
    pub fn store_mut(&mut self) -> &mut (dyn shard_store::Store + Send) {
        &mut *self.store
    }

    /// Releases the backing store and the row count, e.g. to reopen the
    /// same rows after a simulated crash.
    pub fn into_store(self) -> (Box<dyn shard_store::Store + Send>, usize) {
        (self.store, self.len)
    }

    /// Appends the next transaction of the serial order: its initiation
    /// `time`, the indices it `missed`, and its `update`. Returns the
    /// row's index.
    ///
    /// # Panics
    ///
    /// Panics if a missed index is not strictly below the row's index.
    pub fn push(
        &mut self,
        time: u64,
        missed: &[TxnIndex],
        update: &A::Update,
    ) -> std::io::Result<TxnIndex> {
        let index = self.len;
        let mut payload = Vec::with_capacity(16 + 4 * missed.len());
        payload.extend_from_slice(&time.to_be_bytes());
        payload.extend_from_slice(&(missed.len() as u32).to_be_bytes());
        for &m in missed {
            assert!(m < index, "missed index {m} not below row {index}");
            payload.extend_from_slice(&(m as u32).to_be_bytes());
        }
        shard_store::Codec::encode(update, &mut payload);
        shard_store::append_chunked(&mut *self.store, index as u64, &payload)?;
        self.len += 1;
        Ok(index)
    }

    /// Streams every row in serial order through `f` off a key-order
    /// store cursor. Errors on a missing, torn or malformed row — a
    /// streaming execution is an *authoritative* copy, not a cache, so
    /// holes are not skippable.
    pub fn for_each_row(
        &mut self,
        mut f: impl FnMut(TxnIndex, &StreamedRecord<A::Update>),
    ) -> std::io::Result<()> {
        let bad = |i: usize, what: &str| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("streaming row {i}: {what}"),
            )
        };
        let mut cursor = shard_store::KeyCursor::new(1024);
        let mut active: Option<(u64, shard_store::FrameReader)> = None;
        let mut next = 0usize;
        loop {
            let rec = cursor.next(&mut *self.store)?;
            let boundary = match &rec {
                Some((k, _)) => active.as_ref().is_some_and(|(p, _)| *p != k.primary),
                None => active.is_some(),
            };
            if boundary {
                let (primary, mut reader) = active.take().expect("boundary implies a group");
                if primary != next as u64 {
                    return Err(bad(next, "row group missing"));
                }
                let payload = reader
                    .next_frame()
                    .ok_or_else(|| bad(next, "torn row group"))?;
                let row = decode_row::<A>(payload).ok_or_else(|| bad(next, "malformed row"))?;
                f(next, &row);
                next += 1;
            }
            match rec {
                Some((k, v)) => {
                    let (_, reader) =
                        active.get_or_insert_with(|| (k.primary, shard_store::FrameReader::new()));
                    reader.push(&v);
                }
                None => break,
            }
        }
        if next != self.len {
            return Err(bad(next, "row group missing"));
        }
        Ok(())
    }

    /// Streams the actual states `s₀, s₁, …, sₙ` through `f` in one
    /// forward pass off the store cursor — the out-of-core counterpart
    /// of [`Execution::fold_actual_states`], same callback contract
    /// (`m = 0` is the initial state, `m = i + 1` the state after
    /// row `i`), identical fold results for identical rows.
    pub fn fold_actual_states<T>(
        &mut self,
        app: &A,
        init: T,
        mut f: impl FnMut(T, usize, &A::State) -> T,
    ) -> std::io::Result<T> {
        let mut state = app.initial_state();
        let mut acc = Some(f(init, 0, &state));
        let mut applied = 0u64;
        self.for_each_row(|i, row| {
            app.apply_in_place(&mut state, &row.update);
            applied += 1;
            acc = Some(f(acc.take().expect("accumulator in flight"), i + 1, &state));
        })?;
        note_in_place_applies(applied);
        Ok(acc.expect("fold seeded above"))
    }

    /// Streams the actual states through `f` (see
    /// [`StreamingExecution::fold_actual_states`]).
    pub fn for_each_actual_state(
        &mut self,
        app: &A,
        mut f: impl FnMut(usize, &A::State),
    ) -> std::io::Result<()> {
        self.fold_actual_states(app, (), |(), m, s| f(m, s))
    }

    /// The final actual state (the initial state if empty).
    pub fn final_state(&mut self, app: &A) -> std::io::Result<A::State> {
        let mut state = app.initial_state();
        let mut applied = 0u64;
        self.for_each_row(|_, row| {
            app.apply_in_place(&mut state, &row.update);
            applied += 1;
        })?;
        note_in_place_applies(applied);
        Ok(state)
    }

    /// Runs the online §3 window checker over the stored rows —
    /// verdicts, certificates and the final report are byte-identical
    /// to [`check_rows`](crate::stream::check_rows) on the same rows
    /// materialized in memory.
    pub fn check_stream(&mut self, window: usize) -> std::io::Result<crate::stream::StreamReport> {
        let mut checker = crate::stream::StreamChecker::new(window);
        self.for_each_row(|i, row| {
            checker.push(&crate::stream::StreamRow {
                index: i,
                time: row.time,
                missed: row.missed.clone(),
            });
        })?;
        Ok(checker.report())
    }

    /// Spills a timed in-memory execution into `store` row by row — the
    /// bridge the equivalence tests and benches use.
    pub fn from_timed_execution(
        store: Box<dyn shard_store::Store + Send>,
        pool: &shard_pool::PoolConfig,
        te: &crate::conditions::TimedExecution<A>,
    ) -> std::io::Result<Self> {
        let rows = crate::stream::rows_from_execution(pool, te);
        let mut out = Self::new(store);
        for (rec, row) in te.execution.records().iter().zip(&rows) {
            out.push(row.time, &row.missed, &rec.update)?;
        }
        Ok(out)
    }
}

fn decode_row<A: crate::app::Application>(payload: &[u8]) -> Option<StreamedRecord<A::Update>>
where
    A::Update: shard_store::Codec,
{
    let mut r = shard_store::ByteReader::new(payload);
    let time = r.u64()?;
    let missed_len = r.u32()? as usize;
    let mut missed = Vec::with_capacity(missed_len);
    for _ in 0..missed_len {
        missed.push(r.u32()? as TxnIndex);
    }
    let update = <A::Update as shard_store::Codec>::decode(&mut r)?;
    if !r.is_done() {
        return None;
    }
    Some(StreamedRecord {
        time,
        missed,
        update,
    })
}

/// The memo behind all incremental state queries.
///
/// Holds two checkpoint sequences plus a cached "tip" for each:
///
/// * `full` — checkpoints along the full serial order `A₀ … Aₙ₋₁`,
///   serving actual-state queries. Executions are append-only, so these
///   never invalidate.
/// * `path` / `path_ckpts` — the index path of the most recent
///   prefix-subsequence replay and checkpoints along it. A new query
///   resumes from the deepest checkpoint at or below the longest prefix
///   shared with `path`.
#[derive(Clone, Debug)]
pub(crate) struct ReplayCache<A: Application> {
    /// Index path of the most recent prefix replay.
    path: Vec<TxnIndex>,
    /// Checkpoints along `path`, keyed by depth *into the path*.
    path_ckpts: Checkpoints<A::State>,
    /// State after applying all of `path`, if known.
    path_tip: Option<A::State>,
    /// Checkpoints along the full serial order, keyed by prefix length.
    full: Checkpoints<A::State>,
    /// Deepest full-order state computed so far `(prefix length, state)`.
    full_tip: Option<(usize, A::State)>,
    stats: ReplayStats,
}

impl<A: Application> ReplayCache<A> {
    pub(crate) fn new(every: usize) -> Self {
        ReplayCache {
            path: Vec::new(),
            path_ckpts: Checkpoints::new(every),
            path_tip: None,
            full: Checkpoints::new(every),
            full_tip: None,
            stats: ReplayStats::default(),
        }
    }

    pub(crate) fn interval(&self) -> usize {
        self.path_ckpts.interval()
    }

    pub(crate) fn stats(&self) -> ReplayStats {
        self.stats
    }

    /// Re-creates both checkpoint sequences with a new interval,
    /// dropping cached states (stats are kept — they describe work
    /// done, not the cache contents).
    pub(crate) fn set_interval(&mut self, every: usize) {
        self.path_ckpts = Checkpoints::new(every);
        self.full = Checkpoints::new(every);
        self.clear();
    }

    /// Drops all cached states (keeps the interval and the stats).
    /// Required after in-place mutation of already-replayed updates;
    /// appends never require it.
    pub(crate) fn clear(&mut self) {
        self.path.clear();
        self.path_ckpts.clear();
        self.path_tip = None;
        self.full.clear();
        self.full_tip = None;
    }

    /// The state after applying the updates selected by `prefix`
    /// (in order) to the initial state. `update_at(j)` supplies `Aⱼ`.
    ///
    /// Resumes from the deepest cached point at or below the longest
    /// prefix shared with the previous query's path.
    pub(crate) fn state_after_prefix<'u>(
        &mut self,
        app: &A,
        update_at: impl Fn(TxnIndex) -> &'u A::Update,
        prefix: &[TxnIndex],
    ) -> A::State
    where
        A::Update: 'u,
    {
        self.stats.queries += 1;
        // Longest common prefix with the previous path, compared in
        // blocks: whole-execution sweeps ask ~n queries whose shared
        // runs are ~n long, so this comparison is the only O(n²) term
        // left in a sweep — block equality compiles to wide compares
        // instead of an element-at-a-time loop.
        let m = prefix.len().min(self.path.len());
        let mut lcp = 0;
        const BLOCK: usize = 64;
        while lcp + BLOCK <= m && prefix[lcp..lcp + BLOCK] == self.path[lcp..lcp + BLOCK] {
            lcp += BLOCK;
        }
        while lcp < m && prefix[lcp] == self.path[lcp] {
            lcp += 1;
        }
        // Deepest path-based resume point.
        let path_resume: (usize, Option<A::State>) =
            if lcp == self.path.len() && self.path_tip.is_some() {
                // The previous path is a prefix of this query: extend its tip.
                (lcp, self.path_tip.clone())
            } else {
                match self.path_ckpts.floor(lcp) {
                    Some((l, s)) => (l, Some(s.clone())),
                    None => (0, None),
                }
            };
        // The query's leading *serial run* — `prefix[j] == j` — walks the
        // full order itself, so full-order checkpoints (e.g. prebuilt by
        // `state_after_first`) are equally valid resume points for it.
        // This is what lets many fresh caches share one warmed full
        // chain instead of each replaying the common prefix from `s₀`.
        // `prefix` is strictly increasing, so `prefix[j] - j` is
        // non-decreasing and the identity run is a true prefix — find
        // its end by binary search instead of walking it.
        let serial_run = {
            let (mut lo, mut hi) = (0usize, prefix.len());
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if prefix[mid] == mid {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            lo
        };
        let mut full_resume: Option<(usize, A::State)> =
            self.full.floor(serial_run).map(|(l, s)| (l, s.clone()));
        if let Some((l, s)) = &self.full_tip {
            if *l <= serial_run && *l > full_resume.as_ref().map_or(0, |&(fl, _)| fl) {
                full_resume = Some((*l, s.clone()));
            }
        }
        let (depth, mut state, from_full) = match full_resume {
            Some((fl, fs)) if fl > path_resume.0 => (fl, fs, true),
            _ => match path_resume {
                (d, Some(s)) => (d, s, false),
                _ => (0, app.initial_state(), false),
            },
        };
        self.stats.reused += depth as u64;
        if shard_obs::enabled() {
            let m = replay_metrics();
            m.queries.inc();
            m.reused.add(depth as u64);
            // Each loop iteration below applies exactly one update,
            // in place.
            m.applied.add((prefix.len() - depth) as u64);
            m.in_place.add((prefix.len() - depth) as u64);
            m.lcp.record(lcp as u64);
            if depth > 0 {
                m.ckpt_hits.inc();
            } else {
                m.ckpt_misses.inc();
            }
        }
        if from_full {
            // The old path may disagree with `prefix[..depth]`; the
            // serial run guarantees `prefix[..depth]` is the identity,
            // so rebuild the path bookkeeping from the full-order state.
            self.path.clear();
            self.path_ckpts.clear();
            self.path.extend_from_slice(&prefix[..depth]);
            self.path_ckpts.record(depth, &state);
        } else {
            self.path.truncate(depth);
            self.path_ckpts.truncate(depth);
        }
        for &j in &prefix[depth..] {
            app.apply_in_place(&mut state, update_at(j));
            self.stats.applied += 1;
            self.path.push(j);
            if self.path_ckpts.record(self.path.len(), &state) {
                note_state_clone(app.state_size_hint(&state));
            }
        }
        note_state_clone(app.state_size_hint(&state));
        self.path_tip = Some(state.clone());
        state
    }

    /// The state after the first `m` updates of the serial order —
    /// `sₘ` in the paper's numbering (`s₀` for `m = 0`).
    pub(crate) fn state_after_first<'u>(
        &mut self,
        app: &A,
        update_at: impl Fn(TxnIndex) -> &'u A::Update,
        m: usize,
    ) -> A::State
    where
        A::Update: 'u,
    {
        self.stats.queries += 1;
        let mut base: Option<(usize, A::State)> = self.full.floor(m).map(|(l, s)| (l, s.clone()));
        if let Some((l, s)) = &self.full_tip {
            if *l <= m && *l > base.as_ref().map_or(0, |(bl, _)| *bl) {
                base = Some((*l, s.clone()));
            }
        }
        let (mut len, mut state) = base.unwrap_or((0, app.initial_state()));
        self.stats.reused += len as u64;
        if shard_obs::enabled() {
            let metrics = replay_metrics();
            metrics.queries.inc();
            metrics.reused.add(len as u64);
            metrics.applied.add((m - len) as u64);
            metrics.in_place.add((m - len) as u64);
            if len > 0 {
                metrics.ckpt_hits.inc();
            } else {
                metrics.ckpt_misses.inc();
            }
        }
        while len < m {
            app.apply_in_place(&mut state, update_at(len));
            len += 1;
            self.stats.applied += 1;
            if self.full.record(len, &state) {
                note_state_clone(app.state_size_hint(&state));
            }
        }
        if self.full_tip.as_ref().is_none_or(|(l, _)| *l <= m) {
            note_state_clone(app.state_size_hint(&state));
            self.full_tip = Some((m, state.clone()));
        }
        state
    }
}

/// Incremental state computation over an update sequence.
///
/// The public face of the replay cache for code that holds an update
/// sequence (or an [`Execution`]) and asks for many related states:
/// cost-bound subsequence enumeration, checker benches, analysis sweeps.
/// Queries whose index sequences share long prefixes — which is what
/// every whole-execution sweep in this codebase produces — are answered
/// by longest-shared-prefix reuse instead of from-scratch replay.
///
/// ```
/// use shard_core::{Application, DecisionOutcome, replay::Replayer};
/// # struct Counter;
/// # #[derive(Clone, Debug, PartialEq)]
/// # struct Add(i64);
/// # impl Application for Counter {
/// #     type State = i64;
/// #     type Update = Add;
/// #     type Decision = Add;
/// #     fn initial_state(&self) -> i64 { 0 }
/// #     fn is_well_formed(&self, _: &i64) -> bool { true }
/// #     fn apply(&self, s: &i64, u: &Add) -> i64 { s + u.0 }
/// #     fn decide(&self, d: &Add, _: &i64) -> DecisionOutcome<Add> {
/// #         DecisionOutcome::update_only(d.clone())
/// #     }
/// #     fn constraint_count(&self) -> usize { 0 }
/// #     fn constraint_name(&self, _: usize) -> &str { unreachable!() }
/// #     fn cost(&self, _: &i64, _: usize) -> u64 { 0 }
/// # }
/// let app = Counter;
/// let updates = vec![Add(1), Add(2), Add(4)];
/// let mut replayer = Replayer::from_updates(&app, &updates);
/// assert_eq!(replayer.state_after_prefix(&[0, 2]), 5);
/// assert_eq!(replayer.state_after_prefix(&[0, 1, 2]), 7);
/// assert_eq!(replayer.final_state(), 7);
/// ```
pub struct Replayer<'a, A: Application> {
    app: &'a A,
    updates: Vec<&'a A::Update>,
    cache: ReplayCache<A>,
}

impl<'a, A: Application> Replayer<'a, A> {
    /// A replayer over the update sequence of `exec`, with the default
    /// checkpoint interval.
    pub fn new(app: &'a A, exec: &'a Execution<A>) -> Self {
        Self::with_interval(app, exec, DEFAULT_CHECKPOINT_INTERVAL)
    }

    /// A replayer over the update sequence of `exec` with checkpoints
    /// every `every` applied updates.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn with_interval(app: &'a A, exec: &'a Execution<A>, every: usize) -> Self {
        Self::from_updates_with_interval(app, exec.records().iter().map(|r| &r.update), every)
    }

    /// A replayer over an explicit update sequence, with the default
    /// checkpoint interval.
    pub fn from_updates(app: &'a A, updates: impl IntoIterator<Item = &'a A::Update>) -> Self {
        Self::from_updates_with_interval(app, updates, DEFAULT_CHECKPOINT_INTERVAL)
    }

    /// A replayer over an explicit update sequence with checkpoints every
    /// `every` applied updates.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn from_updates_with_interval(
        app: &'a A,
        updates: impl IntoIterator<Item = &'a A::Update>,
        every: usize,
    ) -> Self {
        Replayer {
            app,
            updates: updates.into_iter().collect(),
            cache: ReplayCache::new(every),
        }
    }

    /// The number of updates in the sequence.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Whether the update sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// The checkpoint spacing, in applied updates.
    pub fn interval(&self) -> usize {
        self.cache.interval()
    }

    /// Cumulative work counters for this replayer.
    pub fn stats(&self) -> ReplayStats {
        self.cache.stats()
    }

    /// The state after applying the updates selected by `prefix`, in the
    /// given order, to the initial state. Indices may select any
    /// subsequence (the paper's prefix subsequences and the kept sets of
    /// cost-bound instances are the intended callers).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn state_after_prefix(&mut self, prefix: &[TxnIndex]) -> A::State {
        self.cache
            .state_after_prefix(self.app, |j| self.updates[j], prefix)
    }

    /// The state after the first `m` updates of the sequence (`s₀` for
    /// `m = 0`), answered from full-order checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `m > self.len()`.
    pub fn state_after_first(&mut self, m: usize) -> A::State {
        assert!(
            m <= self.updates.len(),
            "state_after_first: {m} updates requested"
        );
        self.cache
            .state_after_first(self.app, |j| self.updates[j], m)
    }

    /// The state after the whole sequence.
    pub fn final_state(&mut self) -> A::State {
        self.state_after_first(self.updates.len())
    }

    /// Warms the full-order checkpoint chain in one forward pass.
    /// Subsequent [`Replayer::state_after_prefix`] queries whose leading
    /// indices follow the serial order (`prefix[j] == j`) resume from
    /// the deepest checkpoint under that run instead of replaying from
    /// the initial state. Idempotent cache priming; answers never
    /// change.
    pub fn prebuild(&mut self) {
        let _ = self.final_state();
    }

    /// Streams all states `s₀, s₁, …, sₙ` through `f` in one forward
    /// pass, threading an accumulator. The callback receives the number
    /// of updates applied so far together with the state.
    pub fn fold_states<T>(&self, init: T, mut f: impl FnMut(T, usize, &A::State) -> T) -> T {
        let mut s = self.app.initial_state();
        let mut acc = f(init, 0, &s);
        for (i, u) in self.updates.iter().enumerate() {
            self.app.apply_in_place(&mut s, u);
            acc = f(acc, i + 1, &s);
        }
        note_in_place_applies(self.updates.len() as u64);
        acc
    }
}

/// Warms the full-order checkpoint chain of every execution in
/// parallel — one pool worker per contiguous block of executions, one
/// forward pass each (see
/// [`Execution::prebuild_actual_states`]).
/// Caches are per-execution, so the parallel warm-up is embarrassingly
/// parallel and the resulting cache contents are independent of the
/// thread count.
pub fn prebuild_executions<A>(pool: &shard_pool::PoolConfig, app: &A, execs: &mut [Execution<A>])
where
    A: Application + Sync,
    Execution<A>: Send,
{
    shard_pool::par_for_each_mut(pool, execs, |_, exec| exec.prebuild_actual_states(app));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::DecisionOutcome;
    use crate::conditions::TimedExecution;
    use crate::execution::ExecutionBuilder;

    /// Toy application: state is the concatenation-as-number of applied
    /// update ids, so every distinct subsequence yields a distinct state
    /// and any replay mistake is visible.
    struct Trace;

    #[derive(Clone, Debug, PartialEq)]
    struct Tag(u64);

    impl Application for Trace {
        type State = Vec<u64>;
        type Update = Tag;
        type Decision = Tag;
        fn initial_state(&self) -> Vec<u64> {
            Vec::new()
        }
        fn is_well_formed(&self, _: &Vec<u64>) -> bool {
            true
        }
        fn apply(&self, s: &Vec<u64>, u: &Tag) -> Vec<u64> {
            let mut s = s.clone();
            s.push(u.0);
            s
        }
        fn decide(&self, d: &Tag, _: &Vec<u64>) -> DecisionOutcome<Tag> {
            DecisionOutcome::update_only(d.clone())
        }
        fn constraint_count(&self) -> usize {
            0
        }
        fn constraint_name(&self, _: usize) -> &str {
            unreachable!()
        }
        fn cost(&self, _: &Vec<u64>, _: usize) -> u64 {
            0
        }
    }

    fn naive(updates: &[Tag], prefix: &[usize]) -> Vec<u64> {
        prefix.iter().map(|&j| updates[j].0).collect()
    }

    #[test]
    fn checkpoints_record_at_interval() {
        let mut c: Checkpoints<u32> = Checkpoints::new(3);
        assert!(!c.record(1, &10));
        assert!(!c.record(2, &20));
        assert!(c.record(3, &30));
        assert!(!c.record(4, &40));
        assert!(c.record(6, &60));
        assert_eq!(c.last(), Some((6, &60)));
        assert_eq!(c.last_len(), 6);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn checkpoints_floor_and_truncate() {
        let mut c: Checkpoints<u32> = Checkpoints::new(2);
        for len in 1..=10usize {
            c.record(len, &(len as u32 * 10));
        }
        assert_eq!(c.floor(1), None);
        assert_eq!(c.floor(5), Some((4, &40)));
        assert_eq!(c.floor(100), Some((10, &100)));
        c.truncate(5);
        assert_eq!(c.last(), Some((4, &40)));
        c.truncate(0);
        assert!(c.is_empty());
        assert_eq!(c.floor(100), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn checkpoints_reject_zero_interval() {
        let _ = Checkpoints::<u32>::new(0);
    }

    #[test]
    #[should_panic(expected = "anchor spacing must be positive")]
    fn checkpoints_reject_zero_anchor_spacing() {
        let _ = Checkpoints::<u32>::with_anchor_spacing(4, 0);
    }

    #[test]
    fn anchor_spacing_prunes_to_anchors_plus_tip() {
        let mut c: Checkpoints<u32> = Checkpoints::with_anchor_spacing(1, 3);
        assert_eq!(c.anchor_spacing(), 3);
        for len in 1..=7usize {
            assert!(c.record(len, &(len as u32 * 10)));
        }
        // Records 3 and 6 are anchors; record 7 is the retained tip.
        let kept: Vec<usize> = (1..=7).filter_map(|l| c.floor(l).map(|(k, _)| k)).collect();
        assert_eq!(c.len(), 3);
        assert_eq!(c.last(), Some((7, &70)));
        assert_eq!(kept, vec![3, 3, 3, 6, 7], "floors resolve to anchors");
        // Every surviving point still maps to the state recorded at
        // that depth — pruning drops points, never corrupts them.
        assert_eq!(c.floor(5), Some((3, &30)));
        // Truncation restarts the anchor phase at the surviving tip.
        c.truncate(6);
        assert_eq!(c.last(), Some((6, &60)));
        assert!(c.record(7, &70));
        assert_eq!(c.len(), 3, "post-truncate tip kept as an anchor");
    }

    #[test]
    fn anchor_spacing_one_is_byte_identical_to_snapshots() {
        let mut plain: Checkpoints<u32> = Checkpoints::new(2);
        let mut delta: Checkpoints<u32> = Checkpoints::with_anchor_spacing(2, 1);
        for len in 1..=20usize {
            assert_eq!(
                plain.record(len, &(len as u32)),
                delta.record(len, &(len as u32))
            );
        }
        for limit in 0..=21 {
            assert_eq!(plain.floor(limit), delta.floor(limit));
        }
        assert_eq!(plain.len(), delta.len());
    }

    #[test]
    fn replayer_matches_naive_on_prefix_sweeps() {
        let app = Trace;
        let updates: Vec<Tag> = (0..100).map(Tag).collect();
        for every in [1, 2, 7, 32, 1000] {
            let mut r = Replayer::from_updates_with_interval(&app, &updates, every);
            // The sweep every whole-execution checker produces: prefix i
            // is "all of 0..i except a sliding window".
            for i in 0..updates.len() {
                let prefix: Vec<usize> = (0..i).filter(|j| !(j + 3 > i && j % 2 == 0)).collect();
                assert_eq!(
                    r.state_after_prefix(&prefix),
                    naive(&updates, &prefix),
                    "interval {every}, txn {i}"
                );
            }
        }
    }

    #[test]
    fn replayer_handles_divergent_paths() {
        let app = Trace;
        let updates: Vec<Tag> = (0..40).map(Tag).collect();
        let mut r = Replayer::from_updates_with_interval(&app, &updates, 4);
        let a: Vec<usize> = (0..30).collect();
        let b: Vec<usize> = (0..30).filter(|j| j % 3 != 1).collect();
        let c: Vec<usize> = vec![5, 7, 11];
        for prefix in [&a, &b, &c, &a, &c, &b] {
            assert_eq!(r.state_after_prefix(prefix), naive(&updates, prefix));
        }
    }

    #[test]
    fn replayer_reuses_work_across_related_queries() {
        let app = Trace;
        let updates: Vec<Tag> = (0..200).map(Tag).collect();
        let mut r = Replayer::from_updates_with_interval(&app, &updates, 8);
        let full: Vec<usize> = (0..200).collect();
        r.state_after_prefix(&full);
        let applied_first = r.stats().applied;
        // Dropping one late index shares a 150-long prefix: the second
        // query must not replay from scratch.
        let almost: Vec<usize> = (0..200).filter(|&j| j != 150).collect();
        r.state_after_prefix(&almost);
        let applied_second = r.stats().applied - applied_first;
        assert!(
            applied_second <= 200 - 150 + 8,
            "second query applied {applied_second} updates"
        );
        assert!(r.stats().reused > 0);
    }

    #[test]
    fn state_after_first_uses_full_checkpoints() {
        let app = Trace;
        let updates: Vec<Tag> = (0..100).map(Tag).collect();
        let mut r = Replayer::from_updates_with_interval(&app, &updates, 10);
        let full: Vec<usize> = (0..100).collect();
        for m in [100usize, 50, 55, 0, 99] {
            assert_eq!(r.state_after_first(m), naive(&updates, &full[..m]));
        }
        // A forward sweep after the warm-up replays only between
        // checkpoints: far less than the quadratic 100·100/2.
        let before = r.stats().applied;
        for m in 0..=100 {
            r.state_after_first(m);
        }
        let swept = r.stats().applied - before;
        assert!(swept <= 100 * 10, "sweep applied {swept} updates");
    }

    #[test]
    fn prefix_queries_resume_from_prebuilt_full_chain() {
        let app = Trace;
        let updates: Vec<Tag> = (0..200).map(Tag).collect();
        let mut r = Replayer::from_updates_with_interval(&app, &updates, 8);
        r.prebuild();
        let before = r.stats().applied;
        // A kept set missing only index 190 has a serial run of length
        // 190; a cold path cache would replay all 199 updates, but the
        // prebuilt full chain offers a checkpoint near depth 190.
        let kept: Vec<usize> = (0..200).filter(|&j| j != 190).collect();
        assert_eq!(r.state_after_prefix(&kept), naive(&updates, &kept));
        let applied = r.stats().applied - before;
        assert!(applied <= 200 - 190 + 8, "applied {applied} after prebuild");
        // And the answers stay correct when the path cache is reused for
        // a related query afterwards.
        let kept2: Vec<usize> = (0..200).filter(|&j| j != 190 && j != 195).collect();
        assert_eq!(r.state_after_prefix(&kept2), naive(&updates, &kept2));
    }

    #[test]
    fn full_chain_resume_never_changes_answers() {
        let app = Trace;
        let updates: Vec<Tag> = (0..60).map(Tag).collect();
        // Interleave serial-run queries with divergent paths, warm vs
        // cold, and compare every answer against the naive oracle.
        let queries: Vec<Vec<usize>> = vec![
            (0..50).collect(),
            (0..50).filter(|&j| j != 49).collect(),
            (0..50).filter(|&j| j % 5 != 2).collect(),
            (0..60).collect(),
            vec![3, 7, 11],
            (0..58).filter(|&j| j != 20).collect(),
            (0..60).filter(|&j| j != 59).collect(),
        ];
        let mut warm = Replayer::from_updates_with_interval(&app, &updates, 4);
        warm.prebuild();
        let mut cold = Replayer::from_updates_with_interval(&app, &updates, 4);
        for q in &queries {
            let expect = naive(&updates, q);
            assert_eq!(warm.state_after_prefix(q), expect, "warm, query {q:?}");
            assert_eq!(cold.state_after_prefix(q), expect, "cold, query {q:?}");
        }
    }

    #[test]
    fn parallel_prebuild_warms_every_execution() {
        use crate::execution::ExecutionBuilder;
        let app = Trace;
        let mut execs: Vec<Execution<Trace>> = (0..9)
            .map(|k| {
                let mut b = ExecutionBuilder::new(&app);
                for i in 0..40 {
                    b.push_complete(Tag(k * 1000 + i)).unwrap();
                }
                b.finish()
            })
            .collect();
        for threads in [1, 4] {
            prebuild_executions(
                &shard_pool::PoolConfig::with_threads(threads),
                &app,
                &mut execs,
            );
        }
        for (k, e) in execs.iter().enumerate() {
            let expect: Vec<u64> = (0..40).map(|i| k as u64 * 1000 + i).collect();
            assert_eq!(e.final_state(&app), expect);
            // The warm chain serves mid-sequence queries without a full
            // replay (stats only move by the short suffix).
            let before = e.replay_stats().applied;
            assert_eq!(e.actual_state_after(&app, 35), expect[..36].to_vec());
            assert!(e.replay_stats().applied - before <= DEFAULT_CHECKPOINT_INTERVAL as u64);
        }
    }

    #[test]
    fn fold_states_streams_every_state() {
        let app = Trace;
        let updates: Vec<Tag> = (0..5).map(Tag).collect();
        let r = Replayer::from_updates(&app, &updates);
        let lens = r.fold_states(Vec::new(), |mut acc, m, s| {
            assert_eq!(s.len(), m);
            acc.push(m);
            acc
        });
        assert_eq!(lens, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_sequence_yields_initial_state() {
        let app = Trace;
        let updates: Vec<Tag> = Vec::new();
        let mut r = Replayer::from_updates(&app, &updates);
        assert!(r.is_empty());
        assert_eq!(r.state_after_prefix(&[]), Vec::<u64>::new());
        assert_eq!(r.final_state(), Vec::<u64>::new());
    }

    impl shard_store::Codec for Tag {
        fn encode(&self, out: &mut Vec<u8>) {
            self.0.encode(out);
        }
        fn decode(r: &mut shard_store::ByteReader<'_>) -> Option<Self> {
            Some(Tag(u64::decode(r)?))
        }
    }

    fn spilling(hot: usize, spacing: usize, every: usize) -> SpillingCheckpoints<u64> {
        SpillingCheckpoints::new(Box::new(shard_store::MemStore::new()), every, hot, spacing)
    }

    #[test]
    fn spilling_with_spacing_one_matches_plain_checkpoints() {
        let mut plain: Checkpoints<u64> = Checkpoints::new(2);
        let mut spill = spilling(3, 1, 2);
        for len in 1..=40usize {
            assert_eq!(
                plain.record(len, &(len as u64 * 10)),
                spill.record(len, &(len as u64 * 10), 8)
            );
        }
        assert!(spill.spilled_anchors() > 0, "eviction must have spilled");
        assert!(spill.resident_bytes() <= 3 * 8, "hot tier bounded");
        for limit in 0..=41 {
            assert_eq!(
                plain.floor(limit).map(|(l, s)| (l, *s)),
                spill.floor_owned(limit),
                "limit {limit}"
            );
        }
        assert_eq!(plain.last_len(), spill.last_len());
        assert_eq!(
            plain.last().map(|(l, s)| (l, *s)),
            spill.last_owned(),
            "deepest point loads back from the cold tier too"
        );
    }

    #[test]
    fn spilling_truncate_then_readvance_never_collides() {
        let mut spill = spilling(1, 1, 1);
        for len in 1..=10usize {
            spill.record(len, &(len as u64), 8);
        }
        // Undo to depth 4, then redo with *different* states at the
        // same depths: the fresh anchors must win over the orphans.
        spill.truncate(4);
        assert_eq!(spill.last_len(), 4);
        for len in 5..=12usize {
            spill.record(len, &(len as u64 + 100), 8);
        }
        assert_eq!(spill.floor_owned(7), Some((7, 107)));
        assert_eq!(spill.floor_owned(4), Some((4, 4)));
        assert_eq!(spill.last_owned(), Some((12, 112)));
    }

    #[test]
    fn spilling_floor_degrades_past_lost_anchors() {
        // Spacing 3 drops two of every three evicted points entirely;
        // floors fall back to the deepest surviving point.
        let mut spill = spilling(2, 3, 1);
        for len in 1..=20usize {
            spill.record(len, &(len as u64), 8);
        }
        for limit in 0..=21 {
            match spill.floor_owned(limit) {
                Some((l, s)) => {
                    assert!(l <= limit && s == l as u64);
                }
                None => assert!(limit < 3, "shallow limits may have no anchor"),
            }
        }
        // Crashing the spill store to nothing degrades floors to the
        // hot tier instead of failing.
        spill.store_mut().crash(0).unwrap();
        assert_eq!(spill.floor_owned(18), None, "cold anchors gone");
        assert_eq!(spill.floor_owned(19), Some((19, 19)), "hot tier intact");
        assert_eq!(spill.last_owned(), Some((20, 20)));
    }

    fn mixed_timed_execution(n: usize) -> TimedExecution<Trace> {
        let app = Trace;
        let mut b = ExecutionBuilder::new(&app);
        for i in 0..n {
            if i % 3 == 2 {
                b.push_missing(Tag(i as u64), &[i - 1, i / 2]).unwrap();
            } else {
                b.push_complete(Tag(i as u64)).unwrap();
            }
        }
        let times = (0..n as u64).map(|t| t * 7 % 400 + t).collect();
        TimedExecution::new(b.finish(), times)
    }

    #[test]
    fn streaming_execution_matches_in_memory_traversals() {
        let app = Trace;
        let pool = shard_pool::PoolConfig::sequential();
        let te = mixed_timed_execution(60);
        let mut se = StreamingExecution::<Trace>::from_timed_execution(
            Box::new(shard_store::MemStore::new()),
            &pool,
            &te,
        )
        .unwrap();
        assert_eq!(se.len(), 60);
        let mem: Vec<(usize, Vec<u64>)> =
            te.execution
                .fold_actual_states(&app, Vec::new(), |mut acc, m, s| {
                    acc.push((m, s.clone()));
                    acc
                });
        let streamed = se
            .fold_actual_states(&app, Vec::new(), |mut acc, m, s| {
                acc.push((m, s.clone()));
                acc
            })
            .unwrap();
        assert_eq!(mem, streamed, "identical fold results");
        assert_eq!(
            se.final_state(&app).unwrap(),
            te.execution.final_state(&app)
        );
        for window in [1, 7, 64] {
            let rows = crate::stream::rows_from_execution(&pool, &te);
            assert_eq!(
                se.check_stream(window).unwrap(),
                crate::stream::check_rows(window, &rows),
                "window {window}"
            );
        }
    }

    #[test]
    fn streaming_execution_round_trips_rows_through_disk() {
        let dir = std::env::temp_dir().join(format!("shard_streaming_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let (store, _) =
            shard_store::DiskStore::open(&dir, shard_store::StoreOptions::default()).unwrap();
        let mut se = StreamingExecution::<Trace>::new(Box::new(store));
        se.push(3, &[], &Tag(7)).unwrap();
        se.push(9, &[0], &Tag(8)).unwrap();
        se.sync().unwrap();
        let (store, len) = se.into_store();
        drop(store);
        let (store, recovered) =
            shard_store::DiskStore::open(&dir, shard_store::StoreOptions::default()).unwrap();
        assert_eq!(recovered, 2);
        let mut se = StreamingExecution::<Trace>::reopen(Box::new(store), len);
        let mut rows = Vec::new();
        se.for_each_row(|i, row| rows.push((i, row.clone())))
            .unwrap();
        assert_eq!(
            rows,
            vec![
                (
                    0,
                    StreamedRecord {
                        time: 3,
                        missed: vec![],
                        update: Tag(7)
                    }
                ),
                (
                    1,
                    StreamedRecord {
                        time: 9,
                        missed: vec![0],
                        update: Tag(8)
                    }
                ),
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_execution_rejects_torn_rows() {
        let pool = shard_pool::PoolConfig::sequential();
        let te = mixed_timed_execution(10);
        let se = StreamingExecution::<Trace>::from_timed_execution(
            Box::new(shard_store::MemStore::new()),
            &pool,
            &te,
        )
        .unwrap();
        let (mut store, len) = se.into_store();
        let keep = store.len_bytes() - 1;
        store.crash(keep).unwrap();
        let mut se = StreamingExecution::<Trace>::reopen(store, len);
        let app = Trace;
        let err = se.final_state(&app).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
