//! Streaming (online) verification of the §3 conditions.
//!
//! The condition checkers in [`crate::conditions`] are whole-execution
//! folds: they need every prefix in memory before they answer, so a
//! chaos run must finish before we learn it was doomed. This module is
//! the *online* counterpart — monitors that consume an execution one
//! transaction at a time, in serial order, and maintain exactly the
//! evidence needed to answer "does the condition still hold?" after
//! every row:
//!
//! * **k-completeness** is trivially online: `missed_count(i)` is the
//!   size of row `i`'s miss set, so the running maximum is one
//!   comparison per row.
//! * **transitivity** is the interesting one. Row `i` with miss set
//!   `Mᵢ` violates transitivity iff some `x ∈ Mᵢ` has a *witness*
//!   `j ∈ (x, i)` with `j ∈ 𝒫ᵢ` and `x ∈ 𝒫ⱼ` — a transaction `i` saw
//!   that had itself seen `x`. Because `j ∈ 𝒫ᵢ ⟺ j ∉ Mᵢ` and
//!   `x ∈ 𝒫ⱼ ⟺ j ∉ missers(x)`, the check only needs, per past
//!   transaction `x`, the sorted list of rows that missed `x` — the
//!   **missers index**. One merged gap-scan of `Mᵢ` and `missers(x)`
//!   over the range `(x, i)` per missed `x` decides the row; rows with
//!   empty miss sets (the common case) cost nothing. Total state is
//!   O(total misses), not O(n²).
//! * **t-bounded delay** follows the same shape: row `i` raises the
//!   running bound to `timeᵢ − timeₓ + 1` for each missed `x`, which
//!   needs only the append-only vector of initiation times.
//!
//! The [`StreamChecker`] wraps the three monitors behind a *window*
//! abstraction: every `window` rows it emits a [`WindowVerdict`] (the
//! cumulative verdicts at that boundary) and snapshots its own state
//! into a [`Checkpoints`] chain. Snapshots are O(1) because the missers
//! index lives in a [`PMap`] (the structurally shared treap of PR 6),
//! so the chain is a delta chain and [`StreamChecker::rewind`] can
//! resume the checker from any retained boundary without re-reading
//! the stream from the start.
//!
//! Verdicts are **bit-identical** to the offline checkers: feeding
//! [`rows_from_execution`] through a checker of any window size yields
//! exactly `is_transitive`, `max_missed` and `min_delay_bound` of the
//! source execution (`tests/stream_equivalence.rs` pins this per
//! application, window and pool size).
//!
//! Every verdict ships with a [`Certificate`] — the witness rows that
//! *prove* it — serialized into the trace vocabulary so an independent
//! validator (`shard-trace certify`, implemented in `shard-obs` with no
//! types from this crate) can re-check it against the raw trace in
//! O(|certificate|) work, without replaying the execution.

use crate::app::Application;
use crate::conditions::TimedExecution;
use crate::execution::TxnIndex;
use crate::pmap::PMap;
use crate::replay::Checkpoints;
use shard_pool::PoolConfig;

/// Schema tag stamped into serialized certificates.
pub const CERT_SCHEMA: &str = "shard-cert/v1";

/// Executions below this length are converted to rows sequentially;
/// above it, [`rows_from_execution`] partitions the row range across
/// the pool (same threshold as the offline checkers).
const PAR_THRESHOLD: usize = 1024;

/// How many window-boundary snapshots yield one long-term anchor in the
/// checker's [`Checkpoints`] chain (the newest boundary is always
/// retained). Snapshots are O(1) via [`PMap`] sharing, so this only
/// bounds chain length, not correctness.
const ANCHOR_SPACING: usize = 8;

/// Per-process stream metrics, resolved once (same pattern as the
/// replay engine's counters).
struct StreamMetrics {
    rows: std::sync::Arc<shard_obs::Counter>,
    windows: std::sync::Arc<shard_obs::Counter>,
    violations: std::sync::Arc<shard_obs::Counter>,
}

fn stream_metrics() -> &'static StreamMetrics {
    static METRICS: std::sync::OnceLock<StreamMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let r = shard_obs::Registry::global();
        StreamMetrics {
            rows: r.counter("stream.rows"),
            windows: r.counter("stream.windows"),
            violations: r.counter("stream.violations"),
        }
    })
}

/// One transaction of the streaming vocabulary: its position in the
/// serial order, its real initiation time, and the sorted indices of
/// the preceding transactions it did **not** see (the complement of its
/// prefix subsequence). Miss sets are the natural wire form — sparse
/// under realistic fault rates where prefixes are nearly complete, so a
/// row is O(|missed|), not O(i).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamRow {
    /// Position in the global serial order (0-based).
    pub index: TxnIndex,
    /// Real initiation time (the simulator's integer ticks).
    pub time: u64,
    /// Strictly increasing indices in `0..index` the transaction
    /// missed: `missed = {0..index} ∖ 𝒫(index)`.
    pub missed: Vec<TxnIndex>,
}

impl StreamRow {
    /// Renders the row as one JSONL trace line:
    /// `{"event":"txn","i":…,"t":…,"missed":[…]}`.
    pub fn to_json_line(&self) -> String {
        let missed: Vec<String> = self.missed.iter().map(ToString::to_string).collect();
        shard_obs::ObjWriter::new()
            .str("event", "txn")
            .u64("i", self.index as u64)
            .u64("t", self.time)
            .raw("missed", &format!("[{}]", missed.join(",")))
            .finish()
    }

    /// Parses a `txn` trace line back into a row.
    ///
    /// # Errors
    ///
    /// Returns a description if the line is not a `txn` event or its
    /// fields are missing, ill-typed, or the miss set is not strictly
    /// increasing below `i`.
    pub fn from_json_line(line: &str) -> Result<StreamRow, String> {
        let v = shard_obs::json::parse(line).map_err(|e| format!("not valid JSON: {e}"))?;
        if v.get("event").and_then(shard_obs::Json::as_str) != Some("txn") {
            return Err("not a txn event".to_string());
        }
        let index = v
            .get("i")
            .and_then(shard_obs::Json::as_u64)
            .ok_or("txn event lacks index field \"i\"")? as usize;
        let time = v
            .get("t")
            .and_then(shard_obs::Json::as_u64)
            .ok_or("txn event lacks time field \"t\"")?;
        let missed: Vec<usize> = v
            .get("missed")
            .and_then(shard_obs::Json::as_arr)
            .ok_or("txn event lacks \"missed\" array")?
            .iter()
            .map(|m| {
                shard_obs::Json::as_u64(m)
                    .map(|m| m as usize)
                    .ok_or_else(|| "non-integer miss entry".to_string())
            })
            .collect::<Result<_, _>>()?;
        let row = StreamRow {
            index,
            time,
            missed,
        };
        if !row.missed_well_formed() {
            return Err(format!(
                "miss set of row {index} is not strictly increasing below {index}"
            ));
        }
        Ok(row)
    }

    /// Whether the miss set is strictly increasing and below `index`.
    pub fn missed_well_formed(&self) -> bool {
        self.missed.windows(2).all(|w| w[0] < w[1])
            && self.missed.last().is_none_or(|&m| m < self.index)
    }
}

/// A compact, independently checkable witness for a monitor verdict —
/// the streaming analogue of the §3.1 counterexamples. Certificates
/// name *rows of the trace*; re-validation reads only those rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Certificate {
    /// A transitivity violation: `low ∈ 𝒫(mid)`, `mid ∈ 𝒫(top)`, yet
    /// `low ∉ 𝒫(top)` — in miss-set terms, `low ∉ missed(mid)`,
    /// `mid ∉ missed(top)`, `low ∈ missed(top)`.
    Transitivity {
        /// The transaction seen indirectly but not directly.
        low: TxnIndex,
        /// The intermediary that saw `low`.
        mid: TxnIndex,
        /// The transaction that saw `mid` but missed `low`.
        top: TxnIndex,
    },
    /// The row attaining the execution's `max_missed`: a witness that
    /// the execution is **not** (`missed − 1`)-complete.
    KCompleteness {
        /// The witness row.
        index: TxnIndex,
        /// Its miss-set size (the execution's `max_missed`).
        missed: usize,
    },
    /// The pair attaining the execution's minimal delay bound: `seer`
    /// missed `missed` although it ran `bound − 1` ticks later, so no
    /// `t < bound` is a valid delay bound.
    DelayBound {
        /// The late transaction whose prefix omitted `missed`.
        seer: TxnIndex,
        /// The omitted predecessor.
        missed: TxnIndex,
        /// `time(seer) − time(missed) + 1` — the execution's
        /// `min_delay_bound`.
        bound: u64,
    },
}

impl Certificate {
    /// The property the certificate witnesses, as its trace name.
    pub fn property(&self) -> &'static str {
        match self {
            Certificate::Transitivity { .. } => "transitivity",
            Certificate::KCompleteness { .. } => "k_completeness",
            Certificate::DelayBound { .. } => "delay_bound",
        }
    }

    /// Serializes the certificate as one JSON object in the trace
    /// vocabulary (schema [`CERT_SCHEMA`]).
    pub fn to_json(&self) -> String {
        let w = shard_obs::ObjWriter::new()
            .str("schema", CERT_SCHEMA)
            .str("property", self.property());
        match *self {
            Certificate::Transitivity { low, mid, top } => w
                .u64("low", low as u64)
                .u64("mid", mid as u64)
                .u64("top", top as u64),
            Certificate::KCompleteness { index, missed } => {
                w.u64("index", index as u64).u64("missed", missed as u64)
            }
            Certificate::DelayBound {
                seer,
                missed,
                bound,
            } => w
                .u64("seer", seer as u64)
                .u64("missed", missed as u64)
                .u64("bound", bound),
        }
        .finish()
    }
}

/// The cumulative monitor state — everything the three online checkers
/// know after some prefix of the stream. Cloning is O(1): the missers
/// index is a structurally shared [`PMap`], the rest scalars. This is
/// what the window [`Checkpoints`] chain snapshots.
#[derive(Clone, Debug)]
struct MonitorState {
    /// Rows consumed so far.
    rows: usize,
    /// No transitivity violation seen yet.
    transitive: bool,
    /// First violation in (row, missed, witness)-scan order.
    first_violation: Option<(TxnIndex, TxnIndex, TxnIndex)>,
    /// For each transaction `x` missed by anyone: the strictly
    /// increasing rows whose miss sets contained `x`.
    missers: PMap<TxnIndex, Vec<TxnIndex>>,
    /// Largest miss-set size so far (`max_missed` of the prefix).
    max_missed: usize,
    /// First row attaining `max_missed` (meaningful when > 0).
    worst_row: TxnIndex,
    /// Minimal delay bound of the prefix (0 = all prefixes complete).
    delay_bound: u64,
    /// First `(seer, missed)` pair attaining `delay_bound`.
    delay_witness: Option<(TxnIndex, TxnIndex)>,
}

impl MonitorState {
    fn fresh() -> Self {
        MonitorState {
            rows: 0,
            transitive: true,
            first_violation: None,
            missers: PMap::new(),
            max_missed: 0,
            worst_row: 0,
            delay_bound: 0,
            delay_witness: None,
        }
    }
}

/// The cumulative verdicts at one window boundary: after `end` rows,
/// over the whole stream so far (not just the window's rows — a
/// violation in window 2 keeps every later verdict false, exactly like
/// the offline checkers on the growing prefix).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowVerdict {
    /// 0-based window ordinal.
    pub window: usize,
    /// First row of the window.
    pub start: TxnIndex,
    /// One past the last row of the window.
    pub end: TxnIndex,
    /// `is_transitive` of the first `end` rows.
    pub transitive: bool,
    /// `max_missed` of the first `end` rows.
    pub max_missed: usize,
    /// `min_delay_bound` of the first `end` rows.
    pub delay_bound: u64,
}

impl WindowVerdict {
    /// Renders the verdict as one JSONL trace line
    /// (`{"event":"monitor.window",…}`).
    pub fn to_json_line(&self) -> String {
        shard_obs::ObjWriter::new()
            .str("event", "monitor.window")
            .u64("window", self.window as u64)
            .u64("start", self.start as u64)
            .u64("end", self.end as u64)
            .bool("transitive", self.transitive)
            .u64("max_missed", self.max_missed as u64)
            .u64("delay_bound", self.delay_bound)
            .finish()
    }
}

/// Everything a finished (or in-flight) stream check concluded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamReport {
    /// Rows consumed.
    pub rows: usize,
    /// `is_transitive` verdict over all consumed rows.
    pub transitive: bool,
    /// `max_missed` over all consumed rows.
    pub max_missed: usize,
    /// `min_delay_bound` over all consumed rows.
    pub min_delay_bound: u64,
    /// One cumulative verdict per completed window.
    pub verdicts: Vec<WindowVerdict>,
    /// Witnesses for the verdicts: the first transitivity violation (if
    /// any), the `max_missed` row (when > 0), and the delay-bound pair
    /// (when > 0) — each independently checkable against the raw trace.
    pub certificates: Vec<Certificate>,
}

impl StreamReport {
    /// The transitivity-violation certificate, if the stream had one.
    pub fn violation(&self) -> Option<&Certificate> {
        self.certificates
            .iter()
            .find(|c| matches!(c, Certificate::Transitivity { .. }))
    }
}

/// The windowed online checker: push rows in serial order, get a
/// cumulative [`WindowVerdict`] back every `window` rows, read the
/// final [`StreamReport`] (verdicts + certificates) at any point.
///
/// State is O(total misses + rows·8B): the missers index holds one
/// entry per (row, missed predecessor) pair and the time vector one
/// `u64` per row; windows bound *latency to a verdict*, while the
/// [`Checkpoints`] chain of O(1) state snapshots (every boundary, one
/// long-term anchor per `ANCHOR_SPACING` = 8) makes the checker
/// resumable: [`StreamChecker::rewind`] restores a retained boundary
/// so the stream can be re-fed from there instead of from row 0.
#[derive(Clone, Debug)]
pub struct StreamChecker {
    window: usize,
    state: MonitorState,
    /// Initiation time of every consumed row (append-only; truncated
    /// exactly on rewind).
    times: Vec<u64>,
    /// O(1) snapshots of `state` at window boundaries.
    marks: Checkpoints<MonitorState>,
    verdicts: Vec<WindowVerdict>,
}

impl StreamChecker {
    /// A fresh checker emitting a verdict every `window` rows.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "a verdict window must hold at least one row");
        StreamChecker {
            window,
            state: MonitorState::fresh(),
            times: Vec::new(),
            marks: Checkpoints::with_anchor_spacing(window, ANCHOR_SPACING),
            verdicts: Vec::new(),
        }
    }

    /// Rows consumed so far.
    pub fn rows(&self) -> usize {
        self.state.rows
    }

    /// The configured window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Whether no transitivity violation has been seen yet — the
    /// running verdict, readable between windows without building a
    /// report.
    pub fn transitive_so_far(&self) -> bool {
        self.state.transitive
    }

    /// Consumes the next row of the serial order; returns the
    /// cumulative verdict when `row` completes a window.
    ///
    /// # Panics
    ///
    /// Panics if `row.index` is not the next expected index or its miss
    /// set is not strictly increasing below it — streams are fed in
    /// serial order by construction, so either is a harness bug (the
    /// CLI validates untrusted traces before pushing).
    pub fn push(&mut self, row: &StreamRow) -> Option<WindowVerdict> {
        assert_eq!(
            row.index, self.state.rows,
            "stream rows must arrive in serial order"
        );
        assert!(
            row.missed_well_formed(),
            "miss set of row {} is not strictly increasing below it",
            row.index
        );
        let i = row.index;
        let s = &mut self.state;

        // k-completeness: the miss-set size IS missed_count(i).
        if row.missed.len() > s.max_missed {
            s.max_missed = row.missed.len();
            s.worst_row = i;
        }

        // Delay bound: missing x is tolerable only for t > timeᵢ − timeₓ.
        for &x in &row.missed {
            let bound = row.time.saturating_sub(self.times[x]) + 1;
            if bound > s.delay_bound {
                s.delay_bound = bound;
                s.delay_witness = Some((i, x));
            }
        }

        // Transitivity: for each missed x, scan (x, i) for a witness j
        // outside both Mᵢ and missers(x) — such a j is in 𝒫ᵢ and saw x.
        for (pos, &x) in row.missed.iter().enumerate() {
            if s.first_violation.is_some() {
                break;
            }
            let empty: &[TxnIndex] = &[];
            let mx: &[TxnIndex] = s.missers.get(&x).map_or(empty, Vec::as_slice);
            if let Some(j) = gap_witness(&row.missed[pos + 1..], mx, x, i) {
                s.transitive = false;
                s.first_violation = Some((x, j, i));
                if shard_obs::enabled() {
                    stream_metrics().violations.inc();
                }
            }
        }

        // Maintain the missers index (after the check: a row is never
        // its own witness). `get_mut` appends in place — the list is
        // only copied when a window snapshot still shares it.
        for &x in &row.missed {
            match s.missers.get_mut(&x) {
                Some(list) => list.push(i),
                None => {
                    s.missers.insert(x, vec![i]);
                }
            }
        }

        self.times.push(row.time);
        s.rows += 1;
        if shard_obs::enabled() {
            stream_metrics().rows.inc();
        }
        if !s.rows.is_multiple_of(self.window) {
            return None;
        }
        let verdict = WindowVerdict {
            window: self.verdicts.len(),
            start: s.rows - self.window,
            end: s.rows,
            transitive: s.transitive,
            max_missed: s.max_missed,
            delay_bound: s.delay_bound,
        };
        self.marks.record(s.rows, &self.state);
        self.verdicts.push(verdict);
        if shard_obs::enabled() {
            stream_metrics().windows.inc();
        }
        Some(verdict)
    }

    /// Rewinds the checker to the deepest retained window boundary at
    /// or below `keep_rows` and returns the row count it now holds
    /// (0 = fresh). Re-feed the stream from that index to continue —
    /// the resumed checker is indistinguishable from one that never
    /// went past the boundary.
    pub fn rewind(&mut self, keep_rows: usize) -> usize {
        self.marks.truncate(keep_rows);
        self.state = match self.marks.last() {
            Some((_, snapshot)) => snapshot.clone(),
            None => MonitorState::fresh(),
        };
        self.times.truncate(self.state.rows);
        self.verdicts.truncate(self.state.rows / self.window);
        self.state.rows
    }

    /// The verdicts and certificates for everything consumed so far.
    pub fn report(&self) -> StreamReport {
        let s = &self.state;
        let mut certificates = Vec::new();
        if let Some((low, mid, top)) = s.first_violation {
            certificates.push(Certificate::Transitivity { low, mid, top });
        }
        if s.max_missed > 0 {
            certificates.push(Certificate::KCompleteness {
                index: s.worst_row,
                missed: s.max_missed,
            });
        }
        if let Some((seer, missed)) = s.delay_witness {
            certificates.push(Certificate::DelayBound {
                seer,
                missed,
                bound: s.delay_bound,
            });
        }
        StreamReport {
            rows: s.rows,
            transitive: s.transitive,
            max_missed: s.max_missed,
            min_delay_bound: s.delay_bound,
            verdicts: self.verdicts.clone(),
            certificates,
        }
    }
}

/// Finds the smallest `j ∈ (x, i)` absent from both sorted lists
/// (`rest` — the checking row's misses above `x`; `mx` — the rows that
/// missed `x`), or `None` if every candidate is blocked. A merged gap
/// scan: O(|rest| + |mx|).
fn gap_witness(rest: &[TxnIndex], mx: &[TxnIndex], x: TxnIndex, i: TxnIndex) -> Option<TxnIndex> {
    let (mut a, mut b) = (0usize, 0usize);
    let mut candidate = x + 1;
    while candidate < i {
        while a < rest.len() && rest[a] < candidate {
            a += 1;
        }
        while b < mx.len() && mx[b] < candidate {
            b += 1;
        }
        let blocked = match (rest.get(a).copied(), mx.get(b).copied()) {
            (Some(u), Some(v)) => u.min(v),
            (Some(u), None) => u,
            (None, Some(v)) => v,
            (None, None) => return Some(candidate),
        };
        if blocked > candidate {
            return Some(candidate);
        }
        candidate += 1;
    }
    None
}

/// Converts a timed execution into its stream rows — each prefix
/// complemented into a miss set by a two-pointer scan. Long executions
/// partition the row range across `pool` (rows are independent and
/// collected in input order, so the result is identical at every
/// thread count).
pub fn rows_from_execution<A: Application>(
    pool: &PoolConfig,
    te: &TimedExecution<A>,
) -> Vec<StreamRow> {
    let prefixes: Vec<&[TxnIndex]> = te
        .execution
        .records()
        .iter()
        .map(|r| r.prefix.as_slice())
        .collect();
    let times = te.times.as_slice();
    let row_of = |i: usize| {
        let mut missed = Vec::with_capacity(i - prefixes[i].len());
        let mut seen = prefixes[i].iter().copied().peekable();
        for j in 0..i {
            if seen.next_if_eq(&j).is_some() {
                continue;
            }
            missed.push(j);
        }
        StreamRow {
            index: i,
            time: times[i],
            missed,
        }
    };
    let n = prefixes.len();
    if n < PAR_THRESHOLD || shard_pool::is_worker() {
        return (0..n).map(row_of).collect();
    }
    shard_pool::par_ranges(pool, n, |range| {
        range.into_iter().map(row_of).collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Feeds pre-extracted rows through a fresh checker and reports.
pub fn check_rows(window: usize, rows: &[StreamRow]) -> StreamReport {
    let mut checker = StreamChecker::new(window);
    for row in rows {
        checker.push(row);
    }
    checker.report()
}

/// The offline entry point over the pool: extracts rows in parallel
/// ([`rows_from_execution`]), folds them through one sequential
/// [`StreamChecker`] (the fold is O(total misses) — the cheap part),
/// and reports. Verdicts equal the offline checkers' at every window
/// and pool size.
pub fn par_check<A: Application>(
    pool: &PoolConfig,
    te: &TimedExecution<A>,
    window: usize,
) -> StreamReport {
    let _span = shard_obs::span!("stream.par_check");
    let rows = rows_from_execution(pool, te);
    check_rows(window, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::DecisionOutcome;
    use crate::conditions::{is_transitive, max_missed, transitivity_violation};
    use crate::execution::ExecutionBuilder;

    #[derive(Clone, Debug, PartialEq)]
    struct Nop;

    struct Trivial;
    impl Application for Trivial {
        type State = ();
        type Update = Nop;
        type Decision = ();
        fn initial_state(&self) {}
        fn is_well_formed(&self, _: &()) -> bool {
            true
        }
        fn apply(&self, _: &(), _: &Nop) {}
        fn decide(&self, _: &(), _: &()) -> DecisionOutcome<Nop> {
            DecisionOutcome::update_only(Nop)
        }
        fn constraint_count(&self) -> usize {
            0
        }
        fn constraint_name(&self, _: usize) -> &str {
            unreachable!()
        }
        fn cost(&self, _: &(), _: usize) -> u64 {
            unreachable!()
        }
    }

    fn timed(prefixes: &[&[usize]], times: &[u64]) -> TimedExecution<Trivial> {
        let mut b = ExecutionBuilder::new(&Trivial);
        for p in prefixes {
            b.push((), p.to_vec()).unwrap();
        }
        TimedExecution::new(b.finish(), times.to_vec())
    }

    fn rows_of(te: &TimedExecution<Trivial>) -> Vec<StreamRow> {
        rows_from_execution(&PoolConfig::sequential(), te)
    }

    #[test]
    fn rows_complement_prefixes() {
        let te = timed(&[&[], &[0], &[1], &[0, 2]], &[0, 5, 9, 14]);
        let rows = rows_of(&te);
        assert_eq!(rows[0].missed, Vec::<usize>::new());
        assert_eq!(rows[1].missed, Vec::<usize>::new());
        assert_eq!(rows[2].missed, vec![0]);
        assert_eq!(rows[3].missed, vec![1]);
        assert_eq!(rows[3].time, 14);
    }

    #[test]
    fn verdicts_match_offline_checkers_on_the_paper_shapes() {
        // The §3.2 intransitive shape: 2 sees 1, 1 sees 0, 2 misses 0.
        let te = timed(&[&[], &[0], &[1]], &[0, 10, 20]);
        let report = check_rows(1, &rows_of(&te));
        assert!(!report.transitive);
        assert_eq!(report.max_missed, 1);
        assert_eq!(report.min_delay_bound, 21);
        assert!(is_transitive(&te.execution) == report.transitive);
        assert_eq!(max_missed(&te.execution), report.max_missed);
        assert_eq!(te.min_delay_bound(), report.min_delay_bound);
        // The certificate is the offline violation triple.
        assert_eq!(
            report.violation(),
            Some(&Certificate::Transitivity {
                low: 0,
                mid: 1,
                top: 2
            })
        );
        assert_eq!(transitivity_violation(&te.execution), Some((0, 1, 2)));

        // A transitive shape stays clean at every window size.
        let te = timed(&[&[], &[0], &[0, 1]], &[0, 1, 2]);
        for w in [1, 2, 7] {
            let report = check_rows(w, &rows_of(&te));
            assert!(report.transitive);
            assert_eq!(report.max_missed, 0);
            assert_eq!(report.min_delay_bound, 0);
            assert!(report.violation().is_none());
        }
    }

    #[test]
    fn late_indirect_witnesses_are_caught() {
        // 3 sees 2 (which saw 0 and 1) but misses 1: the witness is not
        // adjacent to the missed transaction.
        let te = timed(&[&[], &[], &[0, 1], &[0, 2]], &[0, 1, 2, 3]);
        let report = check_rows(4, &rows_of(&te));
        assert!(!report.transitive);
        assert_eq!(
            report.violation(),
            Some(&Certificate::Transitivity {
                low: 1,
                mid: 2,
                top: 3
            })
        );
        // Offline agreement on the verdict.
        assert!(!is_transitive(&te.execution));
    }

    #[test]
    fn missers_index_blocks_false_witnesses() {
        // 3 misses 0; its only in-range peers 1 and 2 also missed 0, so
        // nobody 3 saw had seen 0 — transitive despite the misses.
        let te = timed(&[&[], &[], &[1], &[1, 2]], &[0, 1, 2, 3]);
        let report = check_rows(1, &rows_of(&te));
        assert!(report.transitive, "no witness exists");
        assert!(is_transitive(&te.execution));
        assert_eq!(report.max_missed, max_missed(&te.execution));
    }

    #[test]
    fn window_verdicts_are_cumulative() {
        // The violation occurs at row 2 (inside window 1); window 2's
        // rows are clean but its verdict must still report it.
        let te = timed(
            &[&[], &[0], &[1], &[0, 1, 2], &[0, 1, 2, 3], &[0, 1, 2, 3, 4]],
            &[0, 1, 2, 3, 4, 5],
        );
        let report = check_rows(2, &rows_of(&te));
        assert_eq!(report.verdicts.len(), 3);
        assert!(report.verdicts[0].transitive, "rows 0-1 are clean");
        assert!(!report.verdicts[1].transitive, "row 2 violates");
        assert!(!report.verdicts[2].transitive, "verdicts are cumulative");
        assert_eq!(report.verdicts[2].start, 4);
        assert_eq!(report.verdicts[2].end, 6);
    }

    #[test]
    fn rewind_restores_a_boundary_exactly() {
        // 20 rows, window 2: records at 2, 4, …, 20. The delta chain
        // retains every ANCHOR_SPACING-th record (len 16) plus the tip
        // (len 20), so rewinding to 17 resumes from 16.
        let n = 20usize;
        let mut b = ExecutionBuilder::new(&Trivial);
        for i in 0..n {
            // Rows 5 and 11 miss a predecessor; the rest see everything.
            let prefix: Vec<usize> = match i {
                5 => (0..i).filter(|&j| j != 2).collect(),
                11 => (0..i).filter(|&j| j != 7).collect(),
                _ => (0..i).collect(),
            };
            b.push((), prefix).unwrap();
        }
        let te = TimedExecution::new(b.finish(), (0..n as u64).map(|t| t * 3).collect());
        let rows = rows_of(&te);
        let mut checker = StreamChecker::new(2);
        for row in &rows {
            checker.push(row);
        }
        let full = checker.report();
        assert!(!full.transitive, "rows 5/11 both have witnesses");
        // Rewind to 17 rows: the deepest retained boundary is 16.
        let resumed_at = checker.rewind(17);
        assert_eq!(resumed_at, 16);
        assert_eq!(checker.rows(), 16);
        for row in &rows[resumed_at..] {
            checker.push(row);
        }
        let replayed = checker.report();
        assert_eq!(replayed.rows, full.rows);
        assert_eq!(replayed.transitive, full.transitive);
        assert_eq!(replayed.max_missed, full.max_missed);
        assert_eq!(replayed.min_delay_bound, full.min_delay_bound);
        assert_eq!(replayed.verdicts, full.verdicts);
        assert_eq!(replayed.certificates, full.certificates);
        // Rewind below the first retained point = fresh checker.
        assert_eq!(checker.rewind(1), 0);
        assert_eq!(checker.rows(), 0);
    }

    #[test]
    fn certificates_serialize_and_rows_round_trip() {
        let cert = Certificate::Transitivity {
            low: 3,
            mid: 5,
            top: 9,
        };
        let json = cert.to_json();
        let v = shard_obs::json::parse(&json).expect("valid JSON");
        assert_eq!(
            v.get("schema").and_then(shard_obs::Json::as_str),
            Some(CERT_SCHEMA)
        );
        assert_eq!(
            v.get("property").and_then(shard_obs::Json::as_str),
            Some("transitivity")
        );
        assert_eq!(v.get("top").and_then(shard_obs::Json::as_u64), Some(9));

        let row = StreamRow {
            index: 7,
            time: 42,
            missed: vec![1, 4],
        };
        let line = row.to_json_line();
        assert_eq!(StreamRow::from_json_line(&line).unwrap(), row);
        assert!(StreamRow::from_json_line("{\"event\":\"deliver\"}").is_err());
        assert!(
            StreamRow::from_json_line("{\"event\":\"txn\",\"i\":2,\"t\":0,\"missed\":[2]}")
                .is_err(),
            "miss entries must lie below the row index"
        );
    }

    #[test]
    fn par_rows_match_sequential_rows() {
        // Above PAR_THRESHOLD the extraction takes the partitioned
        // path; rows must be identical to the sequential ones.
        let n = PAR_THRESHOLD + 100;
        let mut b = ExecutionBuilder::new(&Trivial);
        for i in 0..n {
            let prefix: Vec<usize> = if i % 97 == 3 {
                (1..i).collect()
            } else {
                (0..i).collect()
            };
            b.push((), prefix).unwrap();
        }
        let te = TimedExecution::new(b.finish(), (0..n as u64).collect());
        let seq: Vec<StreamRow> = (0..n)
            .map(|i| {
                let mut missed = Vec::new();
                let mut seen = te.execution.record(i).prefix.iter().copied().peekable();
                for j in 0..i {
                    if seen.next_if_eq(&j).is_some() {
                        continue;
                    }
                    missed.push(j);
                }
                StreamRow {
                    index: i,
                    time: te.times[i],
                    missed,
                }
            })
            .collect();
        for threads in [1, 2, 7] {
            let par = rows_from_execution(&PoolConfig::with_threads(threads), &te);
            assert_eq!(par, seq, "rows diverge at {threads} threads");
        }
        // And the report agrees with the offline verdicts.
        let report = check_rows(64, &seq);
        assert_eq!(report.transitive, is_transitive(&te.execution));
        assert_eq!(report.max_missed, max_missed(&te.execution));
        assert_eq!(report.min_delay_bound, te.min_delay_bound());
    }

    #[test]
    #[should_panic(expected = "serial order")]
    fn out_of_order_rows_panic() {
        let mut checker = StreamChecker::new(1);
        checker.push(&StreamRow {
            index: 3,
            time: 0,
            missed: vec![],
        });
    }
}
