//! Groupings of an execution for a constraint, and normal states (§5.2).
//!
//! An invariant upper bound for the *underbooking* cost fails in general:
//! many requests can arrive in rapid succession without intervening
//! MOVE-UPs. Theorem 9 therefore restricts attention to **normal states**
//! with respect to a *grouping*: a partition of the execution's indices
//! into groups of consecutive indices, each of which either
//!
//! * (a) is a single transaction that **preserves** the constraint's
//!   cost, or
//! * (b) ends in an apparent state whose cost for the constraint is `0` —
//!   a point where the transactions *believe* they have repaired the
//!   constraint.
//!
//! Executions with groupings are abundant whenever the application has a
//! compensating transaction (Corollary 2): run the compensator atomically
//! after each non-preserving transaction until the apparent cost is zero.

use crate::app::Application;
use crate::execution::{Execution, TxnIndex};
use std::ops::Range;

/// A partition of `0..n` into consecutive groups.
///
/// # Examples
///
/// ```
/// use shard_core::Grouping;
/// let g = Grouping::from_ends(vec![2, 5]);
/// let groups: Vec<_> = g.groups().collect();
/// assert_eq!(groups, vec![0..2, 2..5]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Grouping {
    /// Exclusive end index of each group; the last entry equals `n`.
    ends: Vec<usize>,
}

impl Grouping {
    /// Builds a grouping from consecutive group end indices (exclusive).
    /// `ends` must be strictly increasing and its last entry must equal
    /// the execution length the grouping is used with.
    ///
    /// # Panics
    ///
    /// Panics if `ends` is not strictly increasing.
    pub fn from_ends(ends: Vec<usize>) -> Self {
        assert!(
            ends.windows(2).all(|w| w[0] < w[1]),
            "group ends must increase"
        );
        Grouping { ends }
    }

    /// The trivial grouping: every transaction is its own group.
    pub fn singletons(n: usize) -> Self {
        Grouping {
            ends: (1..=n).collect(),
        }
    }

    /// The number of groups.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Whether there are no groups.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Iterates over the groups as index ranges.
    pub fn groups(&self) -> impl Iterator<Item = Range<TxnIndex>> + '_ {
        self.ends.iter().scan(0usize, |start, &end| {
            let r = *start..end;
            *start = end;
            Some(r)
        })
    }

    /// The total number of indices covered.
    pub fn covered(&self) -> usize {
        self.ends.last().copied().unwrap_or(0)
    }

    /// Whether this is a valid grouping of `exec` for `constraint`
    /// (§5.2): it covers exactly the execution and each group satisfies
    /// (a) or (b). `is_preserving(d)` must say whether transaction kind
    /// `d` preserves the cost of the constraint (applications know this
    /// statically; the paper proves it per transaction in §4.1).
    pub fn is_grouping_for<A: Application>(
        &self,
        app: &A,
        exec: &Execution<A>,
        constraint: usize,
        is_preserving: impl Fn(&A::Decision) -> bool,
    ) -> bool {
        if self.covered() != exec.len() {
            return false;
        }
        self.groups().all(|g| {
            let last = g.end - 1;
            (g.len() == 1 && is_preserving(&exec.record(last).decision))
                || app.cost(&exec.apparent_state_after(app, last), constraint) == 0
        })
    }

    /// Discovers a grouping of `exec` for `constraint` greedily: each
    /// cost-preserving transaction with no group open becomes a singleton
    /// group; any other transaction opens (or continues) a group that
    /// closes at the first transaction whose apparent state after has
    /// cost `0`. Returns `None` if a group never closes (the execution
    /// then has no grouping of this shape — e.g. requests with no
    /// compensating MOVE-UPs after them).
    pub fn discover<A: Application>(
        app: &A,
        exec: &Execution<A>,
        constraint: usize,
        is_preserving: impl Fn(&A::Decision) -> bool,
    ) -> Option<Grouping> {
        let _span = shard_obs::span!("grouping.discover");
        let mut ends = Vec::new();
        let mut open = false;
        for i in 0..exec.len() {
            let rec = exec.record(i);
            if !open && is_preserving(&rec.decision) {
                ends.push(i + 1);
                continue;
            }
            // A non-preserving transaction (or a continuing group).
            open = true;
            if app.cost(&exec.apparent_state_after(app, i), constraint) == 0 {
                ends.push(i + 1);
                open = false;
            }
        }
        if open {
            None
        } else {
            Some(Grouping { ends })
        }
    }

    /// The **normal states** of `exec` with respect to this grouping: the
    /// actual states reachable *after* each group (the initial state is
    /// normal too, matching the paper's induction basis).
    ///
    /// This clones one state per group; checkers that only *inspect*
    /// normal states should prefer the streaming
    /// [`Grouping::for_each_normal_state`].
    pub fn normal_states<A: Application>(
        &self,
        app: &A,
        exec: &Execution<A>,
    ) -> Vec<(Option<TxnIndex>, A::State)> {
        let mut out = Vec::with_capacity(self.len() + 1);
        self.for_each_normal_state(app, exec, |idx, s| out.push((idx, s.clone())));
        out
    }

    /// Streams the normal states through `f` in one forward pass over
    /// the execution — no intermediate `Vec<State>`. `f` receives
    /// `(None, s₀)` first, then `(Some(last index of group), state after
    /// the group)` for each group in order.
    pub fn for_each_normal_state<A: Application>(
        &self,
        app: &A,
        exec: &Execution<A>,
        mut f: impl FnMut(Option<TxnIndex>, &A::State),
    ) {
        let mut ends = self.ends.iter().peekable();
        exec.for_each_actual_state(app, |m, s| {
            if m == 0 {
                f(None, s);
            }
            while ends.next_if(|&&e| e == m).is_some() {
                f(Some(m - 1), s);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{Cost, DecisionOutcome};
    use crate::execution::ExecutionBuilder;

    /// A debt counter: `Borrow` raises debt by 1 (never preserves the
    /// "no-debt" constraint); `Repay` clears all debt (preserves and
    /// compensates). Cost = debt.
    struct Debt;

    #[derive(Clone, Debug, PartialEq)]
    enum Act {
        Borrow,
        Repay,
    }

    impl Application for Debt {
        type State = u32;
        type Update = Act;
        type Decision = Act;
        fn initial_state(&self) -> u32 {
            0
        }
        fn is_well_formed(&self, _: &u32) -> bool {
            true
        }
        fn apply(&self, s: &u32, u: &Act) -> u32 {
            match u {
                Act::Borrow => s + 1,
                Act::Repay => 0,
            }
        }
        fn decide(&self, d: &Act, _: &u32) -> DecisionOutcome<Act> {
            DecisionOutcome::update_only(d.clone())
        }
        fn constraint_count(&self) -> usize {
            1
        }
        fn constraint_name(&self, _: usize) -> &str {
            "no-debt"
        }
        fn cost(&self, s: &u32, _: usize) -> Cost {
            *s as Cost
        }
    }

    fn exec(seq: &[Act]) -> Execution<Debt> {
        let app = Debt;
        let mut b = ExecutionBuilder::new(&app);
        for d in seq {
            b.push_complete(d.clone()).unwrap();
        }
        b.finish()
    }

    fn preserving(d: &Act) -> bool {
        matches!(d, Act::Repay)
    }

    #[test]
    fn groups_iteration() {
        let g = Grouping::from_ends(vec![2, 3, 6]);
        let groups: Vec<_> = g.groups().collect();
        assert_eq!(groups, vec![0..2, 2..3, 3..6]);
        assert_eq!(g.covered(), 6);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn singleton_grouping() {
        let g = Grouping::singletons(3);
        assert_eq!(g.groups().collect::<Vec<_>>(), vec![0..1, 1..2, 2..3]);
    }

    #[test]
    #[should_panic(expected = "must increase")]
    fn non_increasing_ends_panic() {
        let _ = Grouping::from_ends(vec![2, 2]);
    }

    #[test]
    fn discover_closes_groups_at_repair_points() {
        // Borrow, Borrow, Repay | Repay | Borrow, Repay
        let e = exec(&[
            Act::Borrow,
            Act::Borrow,
            Act::Repay,
            Act::Repay,
            Act::Borrow,
            Act::Repay,
        ]);
        let g = Grouping::discover(&Debt, &e, 0, preserving).unwrap();
        assert_eq!(g.groups().collect::<Vec<_>>(), vec![0..3, 3..4, 4..6]);
        assert!(g.is_grouping_for(&Debt, &e, 0, preserving));
    }

    #[test]
    fn discover_fails_when_group_never_closes() {
        let e = exec(&[Act::Borrow, Act::Borrow]);
        assert_eq!(Grouping::discover(&Debt, &e, 0, preserving), None);
    }

    #[test]
    fn invalid_groupings_rejected() {
        let e = exec(&[Act::Borrow, Act::Repay]);
        // A singleton group around the Borrow violates both (a) and (b).
        let g = Grouping::from_ends(vec![1, 2]);
        assert!(!g.is_grouping_for(&Debt, &e, 0, preserving));
        // Wrong coverage.
        let g = Grouping::from_ends(vec![1]);
        assert!(!g.is_grouping_for(&Debt, &e, 0, preserving));
    }

    #[test]
    fn normal_states_are_post_group_states() {
        let e = exec(&[Act::Borrow, Act::Repay, Act::Borrow, Act::Repay]);
        let g = Grouping::discover(&Debt, &e, 0, preserving).unwrap();
        let normals = g.normal_states(&Debt, &e);
        // Initial state plus one per group, all with zero debt here.
        assert_eq!(normals.len(), 1 + g.len());
        assert!(normals.iter().all(|(_, s)| *s == 0));
        assert_eq!(normals[0].0, None);
        assert_eq!(normals[1].0, Some(1));
    }

    #[test]
    fn empty_execution_grouping() {
        let e = exec(&[]);
        let g = Grouping::discover(&Debt, &e, 0, preserving).unwrap();
        assert!(g.is_empty());
        assert!(g.is_grouping_for(&Debt, &e, 0, preserving));
        assert_eq!(g.normal_states(&Debt, &e).len(), 1);
    }
}
