//! Fairness: competing entities, priority, and priority preservation
//! (§4.2).
//!
//! Resource-allocation applications have *entities* (people, customers)
//! competing for a resource. In each state, some entities are **known**
//! (currently competing) and a partial order on the known entities gives
//! their **priority**. The paper defines two transaction properties:
//!
//! * `T` **preserves priority** if running `T(s, s)` (observing the state
//!   it changes) never inverts the relative priority of two entities that
//!   stay known, and newly known entities rank below previously known
//!   ones;
//! * `T` **strongly preserves priority** if the same holds for
//!   `T(s, s′)` with *arbitrary* well-formed `s′` — the airline's
//!   REQUEST and CANCEL are strong, but MOVE-UP and MOVE-DOWN are not
//!   (the worked example in §4.2), which is precisely why the fairness
//!   theorems of §5.5 need centralization of the moving transactions.

use crate::app::{Application, StateSpace};
use std::fmt::Debug;

/// Extends an [`Application`] with the competing-entity model of §4.2.
pub trait PriorityModel: Application {
    /// The competing entities (people, customers, …).
    type Entity: Clone + PartialEq + Debug;

    /// The entities known (currently competing) in `state`.
    fn known(&self, state: &Self::State) -> Vec<Self::Entity>;

    /// Whether `p` strictly precedes `q` in `state`'s priority order.
    /// Only meaningful when both are known in `state`.
    fn precedes(&self, state: &Self::State, p: &Self::Entity, q: &Self::Entity) -> bool;
}

/// One witness of a priority violation, for diagnostics.
#[derive(Clone, Debug, PartialEq)]
pub struct PriorityViolation<S, E> {
    /// The state the decision part observed.
    pub observed: S,
    /// The state the update was applied to (equals `observed` for the
    /// weak property).
    pub acting: S,
    /// The pair whose relative priority was violated.
    pub pair: (E, E),
    /// What went wrong.
    pub kind: PriorityViolationKind,
}

/// The two clauses of the priority-preservation definition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PriorityViolationKind {
    /// Clause (a): both entities known before and after, but their order
    /// inverted (or the strict precedence was lost).
    Inverted,
    /// Clause (b): a newly known entity moved ahead of a previously known
    /// one.
    NewAheadOfOld,
}

/// Checks both clauses for a single `(observed, acting)` pair and a
/// transaction kind; returns the first violation if any.
fn check_pair<A: PriorityModel>(
    app: &A,
    decision: &A::Decision,
    observed: &A::State,
    acting: &A::State,
) -> Option<PriorityViolation<A::State, A::Entity>> {
    let after = app.run(decision, observed, acting);
    let before_known = app.known(acting);
    let after_known = app.known(&after);
    // Clause (a): known in acting state and still known after.
    for p in &before_known {
        for q in &before_known {
            if p == q || !app.precedes(acting, p, q) {
                continue;
            }
            let both_after = after_known.contains(p) && after_known.contains(q);
            if both_after && !app.precedes(&after, p, q) {
                return Some(PriorityViolation {
                    observed: observed.clone(),
                    acting: acting.clone(),
                    pair: (p.clone(), q.clone()),
                    kind: PriorityViolationKind::Inverted,
                });
            }
        }
    }
    // Clause (b): p known before, q not; both known after ⇒ p precedes q.
    for p in &before_known {
        if !after_known.contains(p) {
            continue;
        }
        for q in &after_known {
            if before_known.contains(q) || p == q {
                continue;
            }
            if !app.precedes(&after, p, q) {
                return Some(PriorityViolation {
                    observed: observed.clone(),
                    acting: acting.clone(),
                    pair: (p.clone(), q.clone()),
                    kind: PriorityViolationKind::NewAheadOfOld,
                });
            }
        }
    }
    None
}

/// Whether `decision` **preserves priority** over the state space:
/// for every well-formed `s`, running `T(s, s)` keeps relative priority
/// of surviving entities and ranks newcomers last.
pub fn preserves_priority<A: PriorityModel>(
    app: &A,
    decision: &A::Decision,
    space: &impl StateSpace<A>,
) -> bool {
    priority_violation(app, decision, space).is_none()
}

/// First violation of the weak property, if any.
pub fn priority_violation<A: PriorityModel>(
    app: &A,
    decision: &A::Decision,
    space: &impl StateSpace<A>,
) -> Option<PriorityViolation<A::State, A::Entity>> {
    let mut found = None;
    space.for_each_state(app, &mut |s| {
        if !app.is_well_formed(s) {
            return true;
        }
        match check_pair(app, decision, s, s) {
            Some(v) => {
                found = Some(v);
                false
            }
            None => true,
        }
    });
    found
}

/// Whether `decision` **strongly preserves priority** over the state
/// space: for all well-formed `s` (observed) and `s′` (acting),
/// `T(s, s′)` keeps relative priority. Quadratic in the space size.
pub fn strongly_preserves_priority<A: PriorityModel>(
    app: &A,
    decision: &A::Decision,
    space: &impl StateSpace<A>,
) -> bool {
    strong_priority_violation(app, decision, space).is_none()
}

/// First violation of the strong property, if any.
pub fn strong_priority_violation<A: PriorityModel>(
    app: &A,
    decision: &A::Decision,
    space: &impl StateSpace<A>,
) -> Option<PriorityViolation<A::State, A::Entity>> {
    let mut found = None;
    space.for_each_state(app, &mut |observed| {
        if !app.is_well_formed(observed) {
            return true;
        }
        space.for_each_state(app, &mut |acting| {
            if !app.is_well_formed(acting) {
                return true;
            }
            match check_pair(app, decision, observed, acting) {
                Some(v) => {
                    found = Some(v);
                    false
                }
                None => true,
            }
        })
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{Cost, DecisionOutcome, ExplicitStates};

    /// A one-slot queue world: state is an ordered list of entities.
    /// `Join(e)` appends `e` if absent; `Promote(e)` moves `e` to the
    /// front (violates priority); `Leave(e)` removes `e`.
    #[derive(Clone, Debug, PartialEq)]
    struct Q(Vec<u8>);

    #[derive(Clone, Debug, PartialEq)]
    enum QOp {
        Join(u8),
        Promote(u8),
        Leave(u8),
    }

    struct Queue;

    impl Application for Queue {
        type State = Q;
        type Update = QOp;
        type Decision = QOp;
        fn initial_state(&self) -> Q {
            Q(Vec::new())
        }
        fn is_well_formed(&self, s: &Q) -> bool {
            let mut v = s.0.clone();
            v.sort_unstable();
            v.dedup();
            v.len() == s.0.len()
        }
        fn apply(&self, s: &Q, u: &QOp) -> Q {
            let mut v = s.0.clone();
            match u {
                QOp::Join(e) => {
                    if !v.contains(e) {
                        v.push(*e);
                    }
                }
                QOp::Promote(e) => {
                    if let Some(pos) = v.iter().position(|x| x == e) {
                        v.remove(pos);
                        v.insert(0, *e);
                    }
                }
                QOp::Leave(e) => v.retain(|x| x != e),
            }
            Q(v)
        }
        fn decide(&self, d: &QOp, _: &Q) -> DecisionOutcome<QOp> {
            DecisionOutcome::update_only(d.clone())
        }
        fn constraint_count(&self) -> usize {
            0
        }
        fn constraint_name(&self, _: usize) -> &str {
            unreachable!()
        }
        fn cost(&self, _: &Q, _: usize) -> Cost {
            0
        }
    }

    impl PriorityModel for Queue {
        type Entity = u8;
        fn known(&self, s: &Q) -> Vec<u8> {
            s.0.clone()
        }
        fn precedes(&self, s: &Q, p: &u8, q: &u8) -> bool {
            match (
                s.0.iter().position(|x| x == p),
                s.0.iter().position(|x| x == q),
            ) {
                (Some(a), Some(b)) => a < b,
                _ => false,
            }
        }
    }

    fn space() -> ExplicitStates<Q> {
        // All permutations of subsets of {1,2,3} up to length 3.
        let mut out = vec![Q(vec![])];
        for a in 1..=3u8 {
            out.push(Q(vec![a]));
            for b in 1..=3u8 {
                if b != a {
                    out.push(Q(vec![a, b]));
                    for c in 1..=3u8 {
                        if c != a && c != b {
                            out.push(Q(vec![a, b, c]));
                        }
                    }
                }
            }
        }
        ExplicitStates(out)
    }

    #[test]
    fn join_preserves_priority_weak_and_strong() {
        let app = Queue;
        assert!(preserves_priority(&app, &QOp::Join(2), &space()));
        assert!(strongly_preserves_priority(&app, &QOp::Join(2), &space()));
    }

    #[test]
    fn leave_preserves_priority() {
        let app = Queue;
        assert!(preserves_priority(&app, &QOp::Leave(1), &space()));
        assert!(strongly_preserves_priority(&app, &QOp::Leave(1), &space()));
    }

    #[test]
    fn promote_violates_priority() {
        let app = Queue;
        let v = priority_violation(&app, &QOp::Promote(2), &space()).unwrap();
        assert_eq!(v.kind, PriorityViolationKind::Inverted);
        assert!(!strongly_preserves_priority(
            &app,
            &QOp::Promote(2),
            &space()
        ));
    }

    #[test]
    fn violation_reports_the_inverted_pair() {
        let app = Queue;
        let v = strong_priority_violation(&app, &QOp::Promote(2), &space()).unwrap();
        // Some entity was overtaken by 2.
        assert_eq!(v.pair.1, 2);
    }

    /// A transaction that appends a *new* entity at the front violates
    /// clause (b): newcomers must rank below previously known entities.
    #[test]
    fn newcomer_ahead_violates_clause_b() {
        struct PushFront;
        impl Application for PushFront {
            type State = Q;
            type Update = QOp;
            type Decision = ();
            fn initial_state(&self) -> Q {
                Q(vec![])
            }
            fn is_well_formed(&self, s: &Q) -> bool {
                Queue.is_well_formed(s)
            }
            fn apply(&self, s: &Q, u: &QOp) -> Q {
                match u {
                    QOp::Join(e) => {
                        let mut v = s.0.clone();
                        if !v.contains(e) {
                            v.insert(0, *e);
                        }
                        Q(v)
                    }
                    _ => s.clone(),
                }
            }
            fn decide(&self, _: &(), _: &Q) -> DecisionOutcome<QOp> {
                DecisionOutcome::update_only(QOp::Join(9))
            }
            fn constraint_count(&self) -> usize {
                0
            }
            fn constraint_name(&self, _: usize) -> &str {
                unreachable!()
            }
            fn cost(&self, _: &Q, _: usize) -> Cost {
                0
            }
        }
        impl PriorityModel for PushFront {
            type Entity = u8;
            fn known(&self, s: &Q) -> Vec<u8> {
                Queue.known(s)
            }
            fn precedes(&self, s: &Q, p: &u8, q: &u8) -> bool {
                Queue.precedes(s, p, q)
            }
        }
        let app = PushFront;
        let sp = ExplicitStates(vec![Q(vec![1])]);
        let v = priority_violation(&app, &(), &sp).unwrap();
        assert_eq!(v.kind, PriorityViolationKind::NewAheadOfOld);
        assert_eq!(v.pair, (1, 9));
    }
}
