//! Property-based tests of the formal model: the execution builder,
//! condition checkers and bit-set utility are checked against
//! brute-force reference implementations on randomized inputs.

use proptest::prelude::*;
use shard_core::bitset::BitSet;
use shard_core::{conditions, Application, DecisionOutcome, ExecutionBuilder, TimedExecution};
use std::collections::BTreeSet;

/// Reference application: an append-log of the observed state sizes, so
/// decisions genuinely depend on the apparent state.
struct LogApp;

#[derive(Clone, Debug, PartialEq)]
struct Append(usize);

impl Application for LogApp {
    type State = Vec<usize>;
    type Update = Append;
    type Decision = ();
    fn initial_state(&self) -> Vec<usize> {
        Vec::new()
    }
    fn is_well_formed(&self, _: &Vec<usize>) -> bool {
        true
    }
    fn apply(&self, s: &Vec<usize>, u: &Append) -> Vec<usize> {
        let mut v = s.clone();
        v.push(u.0);
        v
    }
    fn decide(&self, _: &(), observed: &Vec<usize>) -> DecisionOutcome<Append> {
        // The update records how much the decision saw: any tampering
        // with prefixes or states is detected by verify().
        DecisionOutcome::update_only(Append(observed.len()))
    }
    fn constraint_count(&self) -> usize {
        0
    }
    fn constraint_name(&self, _: usize) -> &str {
        unreachable!()
    }
    fn cost(&self, _: &Vec<usize>, _: usize) -> u64 {
        0
    }
}

/// Strategy: per-transaction random subsets of predecessors, expressed
/// as a seed vector of booleans (index j of entry i: does i see j?).
fn prefix_matrix(n: usize) -> impl Strategy<Value = Vec<Vec<bool>>> {
    proptest::collection::vec(proptest::collection::vec(any::<bool>(), n), n)
}

fn build_execution(matrix: &[Vec<bool>]) -> shard_core::Execution<LogApp> {
    let app = LogApp;
    let mut b = ExecutionBuilder::new(&app);
    for (i, row) in matrix.iter().enumerate() {
        let prefix: Vec<usize> = (0..i).filter(|&j| row[j]).collect();
        b.push((), prefix).unwrap();
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Builder-constructed executions always verify.
    #[test]
    fn builder_output_always_verifies(matrix in prefix_matrix(12)) {
        let e = build_execution(&matrix);
        prop_assert!(e.verify(&LogApp).is_ok());
    }

    /// The transitivity checker agrees with a brute-force reference.
    #[test]
    fn transitivity_matches_brute_force(matrix in prefix_matrix(10)) {
        let e = build_execution(&matrix);
        let sets: Vec<BTreeSet<usize>> = e
            .records()
            .iter()
            .map(|r| r.prefix.iter().copied().collect())
            .collect();
        let mut brute = true;
        'outer: for (top, set) in sets.iter().enumerate() {
            for &mid in set {
                for &low in &sets[mid] {
                    if !set.contains(&low) {
                        brute = false;
                        break 'outer;
                    }
                }
            }
            let _ = top;
        }
        prop_assert_eq!(conditions::is_transitive(&e), brute);
        prop_assert_eq!(conditions::transitivity_violation(&e).is_none(), brute);
    }

    /// `missed_count` + prefix length always equals the index.
    #[test]
    fn missed_count_arithmetic(matrix in prefix_matrix(12)) {
        let e = build_execution(&matrix);
        for i in 0..e.len() {
            prop_assert_eq!(
                conditions::missed_count(&e, i) + e.record(i).prefix.len(),
                i
            );
        }
        let max = conditions::max_missed(&e);
        for i in 0..e.len() {
            prop_assert!(conditions::is_k_complete(&e, i, max));
        }
    }

    /// Atomic ranges detected by `is_atomic` satisfy both defining
    /// clauses, cross-checked naively.
    #[test]
    fn atomicity_matches_definition(matrix in prefix_matrix(9), start in 0usize..8, len in 0usize..5) {
        let e = build_execution(&matrix);
        let end = (start + len).min(e.len());
        let start = start.min(end);
        let range = start..end;
        let naive = {
            let mut ok = true;
            if !range.is_empty() {
                let base: Vec<usize> = e.record(range.start).prefix.iter()
                    .copied().filter(|&p| p < range.start).collect();
                for j in range.clone() {
                    let below: Vec<usize> = e.record(j).prefix.iter()
                        .copied().filter(|&p| p < range.start).collect();
                    ok &= below == base;
                    for earlier in range.start..j {
                        ok &= e.record(j).prefix.contains(&earlier);
                    }
                }
            }
            ok
        };
        prop_assert_eq!(conditions::is_atomic(&e, range), naive);
    }

    /// `min_delay_bound` is exactly the smallest t with t-bounded delay.
    #[test]
    fn min_delay_bound_is_tight(
        matrix in prefix_matrix(8),
        times in proptest::collection::vec(0u64..100, 8),
    ) {
        let e = build_execution(&matrix);
        let mut times = times;
        times.sort_unstable();
        let te = TimedExecution::new(e, times);
        let t = te.min_delay_bound();
        prop_assert!(te.has_t_bounded_delay(t));
        if t > 0 {
            prop_assert!(!te.has_t_bounded_delay(t - 1));
        }
    }

    /// BitSet agrees with a BTreeSet model under arbitrary operation
    /// sequences.
    #[test]
    fn bitset_matches_btreeset_model(
        ops in proptest::collection::vec((any::<bool>(), 0usize..200), 0..100)
    ) {
        let mut bs = BitSet::new(200);
        let mut model = BTreeSet::new();
        for (insert, i) in ops {
            if insert {
                bs.insert(i);
                model.insert(i);
            } else {
                bs.remove(i);
                model.remove(&i);
            }
            prop_assert_eq!(bs.count(), model.len());
        }
        prop_assert_eq!(bs.iter().collect::<Vec<_>>(), model.iter().copied().collect::<Vec<_>>());
        for i in 0..200 {
            prop_assert_eq!(bs.contains(i), model.contains(&i));
        }
    }

    /// Subset relation matches the model.
    #[test]
    fn bitset_subset_matches_model(
        a in proptest::collection::btree_set(0usize..100, 0..30),
        b in proptest::collection::btree_set(0usize..100, 0..30),
    ) {
        let ba = BitSet::from_members(100, &a.iter().copied().collect::<Vec<_>>());
        let bb = BitSet::from_members(100, &b.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(ba.is_subset_of(&bb), a.iter().all(|x| b.contains(x)));
        let mut united = ba.clone();
        united.union_with(&bb);
        let model_union: Vec<usize> = a.union(&b).copied().collect();
        prop_assert_eq!(united.iter().collect::<Vec<_>>(), model_union);
    }

    /// Apparent and actual states coincide exactly when prefixes are
    /// complete.
    #[test]
    fn complete_prefixes_mean_serializable(n in 1usize..15) {
        let app = LogApp;
        let mut b = ExecutionBuilder::new(&app);
        for _ in 0..n {
            b.push_complete(()).unwrap();
        }
        let e = b.finish();
        for i in 0..n {
            prop_assert_eq!(
                e.apparent_state_before(&app, i),
                e.actual_state_before(&app, i)
            );
        }
        prop_assert_eq!(conditions::max_missed(&e), 0);
    }
}
