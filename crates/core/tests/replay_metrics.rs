//! The global `replay.*` metrics must agree with what the replay cache
//! actually did — which is dictated by [`Checkpoints`] floor/record
//! semantics. This lives in its own integration-test binary (own
//! process) so the global registry sees only this file's activity; the
//! single `#[test]` keeps the deltas race-free.

use shard_core::replay::{Checkpoints, Replayer};
use shard_core::{Application, DecisionOutcome};
use shard_obs::Registry;

struct Trace;

#[derive(Clone, Debug, PartialEq)]
struct Tag(u64);

impl Application for Trace {
    type State = Vec<u64>;
    type Update = Tag;
    type Decision = Tag;
    fn initial_state(&self) -> Vec<u64> {
        Vec::new()
    }
    fn is_well_formed(&self, _: &Vec<u64>) -> bool {
        true
    }
    fn apply(&self, s: &Vec<u64>, u: &Tag) -> Vec<u64> {
        let mut s = s.clone();
        s.push(u.0);
        s
    }
    fn decide(&self, d: &Tag, _: &Vec<u64>) -> DecisionOutcome<Tag> {
        DecisionOutcome::update_only(d.clone())
    }
    fn constraint_count(&self) -> usize {
        0
    }
    fn constraint_name(&self, _: usize) -> &str {
        unreachable!()
    }
    fn cost(&self, _: &Vec<u64>, _: usize) -> u64 {
        0
    }
}

fn deltas(name: &str, before: &shard_obs::Snapshot) -> u64 {
    Registry::global().snapshot().counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0)
}

#[test]
fn global_counters_match_checkpoint_behavior() {
    shard_obs::set_enabled(true);
    const EVERY: usize = 4;
    let app = Trace;
    let updates: Vec<Tag> = (0..20).map(Tag).collect();
    let mut r = Replayer::from_updates_with_interval(&app, &updates, EVERY);

    // An oracle Checkpoints sequence recorded exactly as the cache
    // records along its path: one record() per applied update.
    let mut oracle: Checkpoints<usize> = Checkpoints::new(EVERY);

    let before = Registry::global().snapshot();

    // Query 1: cold cache — must resume from the initial state (miss).
    let full: Vec<usize> = (0..20).collect();
    r.state_after_prefix(&full);
    for len in 1..=20usize {
        oracle.record(len, &len);
    }
    assert_eq!(
        deltas("replay.ckpt_misses", &before),
        1,
        "cold start misses"
    );
    assert_eq!(deltas("replay.applied", &before), 20);

    // Query 2: identical prefix — the cached tip covers it (hit), and
    // nothing is applied.
    r.state_after_prefix(&full);
    assert_eq!(deltas("replay.ckpt_hits", &before), 1, "tip reuse is a hit");
    assert_eq!(deltas("replay.applied", &before), 20, "no new applications");

    // Query 3: drop index 17 → shared prefix has length 17. The oracle
    // has a checkpoint at floor(17) = 16, so the cache must resume from
    // it: a hit, applying only the suffix past depth 16.
    assert_eq!(oracle.floor(17).map(|(l, _)| l), Some(16), "oracle floor");
    let drop_late: Vec<usize> = (0..20).filter(|&j| j != 17).collect();
    r.state_after_prefix(&drop_late);
    assert_eq!(
        deltas("replay.ckpt_hits", &before),
        2,
        "checkpoint resume is a hit"
    );
    assert_eq!(
        deltas("replay.applied", &before),
        20 + (19 - 16),
        "only the suffix past the depth-16 checkpoint is replayed"
    );

    // Query 4: drop index 1 → the path is now `drop_late`, and the
    // shared prefix with it is just [0], length 1. Undoing past depth 16
    // invalidated nothing at or below 1 either way: the oracle says no
    // checkpoint exists at or below depth 1 (first one is at EVERY = 4),
    // so the cache must restart from the initial state — a miss.
    oracle.truncate(16);
    assert_eq!(oracle.floor(1), None, "oracle: no checkpoint at depth <= 1");
    let drop_early: Vec<usize> = (0..20).filter(|&j| j != 1).collect();
    r.state_after_prefix(&drop_early);
    assert_eq!(
        deltas("replay.ckpt_misses", &before),
        2,
        "below first checkpoint"
    );
    assert_eq!(deltas("replay.applied", &before), 20 + 3 + 19);
    assert_eq!(deltas("replay.queries", &before), 4);

    // The global counters mirror the per-replayer stats exactly (this
    // process ran no other replays).
    let stats = r.stats();
    assert_eq!(deltas("replay.applied", &before), stats.applied);
    assert_eq!(deltas("replay.reused", &before), stats.reused);
    assert_eq!(deltas("replay.queries", &before), stats.queries);

    // The LCP histogram saw one sample per prefix query with the
    // lengths computed above: 0 (cold), 20 (identical), 17 (drop late),
    // 1 (drop early) → sum 38.
    let snap = Registry::global().snapshot();
    let lcp = snap.histogram("replay.lcp").expect("lcp histogram exists");
    assert_eq!(lcp.count, 4);
    assert_eq!(lcp.sum, 38);
    assert_eq!(lcp.max, 20);
}
