//! A slotted-page B+tree keyed by [`StoreKey`], built on the buffer
//! pool — the engine's timestamp-order index.
//!
//! # Page layouts (4 KiB pages, little-endian integers)
//!
//! Leaf (`kind = 0`):
//!
//! ```text
//! 0     1        3          11           13                cells_start        4096
//! +-----+--------+----------+------------+------- ... ------+---- ... ----------+
//! |kind | count  | next_leaf| cells_start| slot dir (u16 ×  |   cells (grow     |
//! | u8  | u16    | u64      | u16        |  count, sorted)  |   downwards)      |
//! +-----+--------+----------+------------+------- ... ------+-------------------+
//! cell := key:10  vlen:u16  value
//! ```
//!
//! Internal (`kind = 1`):
//!
//! ```text
//! 0     1        3         11
//! +-----+--------+---------+--[ key:10  child:u64 ] × count --+
//! |kind | count  | child0  |   separators, sorted             |
//! +-----+--------+---------+----------------------------------+
//! ```
//!
//! Separator `i` is the smallest key reachable under child `i + 1`.
//! The tree is **insert-only** (the WAL never retracts a record;
//! crashes rebuild the whole index), duplicate keys are ignored
//! (first-writer-wins — WAL replay never produces them), and the tree's
//! shape lives only in memory: the root page id is held by [`BTree`],
//! which is always reconstructed from the WAL on open. See
//! `docs/storage.md` for the byte-layout rationale.

use crate::codec::{StoreKey, KEY_BYTES};
use crate::page::{Page, PageId, PAGE_SIZE};
use crate::pool::BufferPool;
use std::io;

const LEAF: u8 = 0;
const INTERNAL: u8 = 1;
const LEAF_HDR: usize = 13;
const INT_HDR: usize = 11;
const INT_ENTRY: usize = KEY_BYTES + 8;
const NO_LEAF: u64 = u64::MAX;

/// Largest value the tree stores inline. WAL payloads above this are a
/// caller bug (application updates are tens of bytes).
pub const MAX_VALUE: usize = 1024;

/// Separators an internal page holds at most.
const INT_MAX_KEYS: usize = (PAGE_SIZE - INT_HDR) / INT_ENTRY;

fn init_leaf(p: &mut Page) {
    p.bytes_mut()[0] = LEAF;
    p.put_u16(1, 0);
    p.put_u64(3, NO_LEAF);
    p.put_u16(11, PAGE_SIZE as u16);
}

fn init_internal(p: &mut Page, child0: PageId) {
    p.bytes_mut()[0] = INTERNAL;
    p.put_u16(1, 0);
    p.put_u64(3, child0);
}

fn count(p: &Page) -> usize {
    p.u16_at(1) as usize
}

fn leaf_cells_start(p: &Page) -> usize {
    // An empty leaf's `cells_start` is PAGE_SIZE, which wraps to 0 in
    // the u16 field only if PAGE_SIZE were 65536 — at 4096 it fits.
    p.u16_at(11) as usize
}

fn leaf_key(p: &Page, i: usize) -> StoreKey {
    let off = p.u16_at(LEAF_HDR + 2 * i) as usize;
    let mut k = [0u8; KEY_BYTES];
    k.copy_from_slice(p.slice(off, KEY_BYTES));
    StoreKey::from_bytes(&k)
}

fn leaf_value(p: &Page, i: usize) -> &[u8] {
    let off = p.u16_at(LEAF_HDR + 2 * i) as usize;
    let vlen = p.u16_at(off + KEY_BYTES) as usize;
    p.slice(off + KEY_BYTES + 2, vlen)
}

fn leaf_search(p: &Page, key: StoreKey) -> Result<usize, usize> {
    let mut lo = 0usize;
    let mut hi = count(p);
    while lo < hi {
        let mid = (lo + hi) / 2;
        match leaf_key(p, mid).cmp(&key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

fn leaf_free(p: &Page) -> usize {
    leaf_cells_start(p) - (LEAF_HDR + 2 * count(p))
}

fn leaf_insert_at(p: &mut Page, i: usize, key: StoreKey, value: &[u8]) {
    let n = count(p);
    debug_assert!(i <= n);
    let cell = KEY_BYTES + 2 + value.len();
    let start = leaf_cells_start(p) - cell;
    p.write(start, &key.to_bytes());
    p.put_u16(start + KEY_BYTES, value.len() as u16);
    p.write(start + KEY_BYTES + 2, value);
    // Shift slots [i, n) one to the right.
    for j in (i..n).rev() {
        let v = p.u16_at(LEAF_HDR + 2 * j);
        p.put_u16(LEAF_HDR + 2 * (j + 1), v);
    }
    p.put_u16(LEAF_HDR + 2 * i, start as u16);
    p.put_u16(1, (n + 1) as u16);
    p.put_u16(11, start as u16);
}

fn int_child0(p: &Page) -> PageId {
    p.u64_at(3)
}

fn int_key(p: &Page, i: usize) -> StoreKey {
    let off = INT_HDR + INT_ENTRY * i;
    let mut k = [0u8; KEY_BYTES];
    k.copy_from_slice(p.slice(off, KEY_BYTES));
    StoreKey::from_bytes(&k)
}

fn int_child(p: &Page, i: usize) -> PageId {
    p.u64_at(INT_HDR + INT_ENTRY * i + KEY_BYTES)
}

/// The child index `key` routes to: the number of separators `<= key`.
fn int_route(p: &Page, key: StoreKey) -> usize {
    let mut lo = 0usize;
    let mut hi = count(p);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if int_key(p, mid) <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

fn int_child_at(p: &Page, route: usize) -> PageId {
    if route == 0 {
        int_child0(p)
    } else {
        int_child(p, route - 1)
    }
}

fn int_insert_at(p: &mut Page, i: usize, key: StoreKey, child: PageId) {
    let n = count(p);
    debug_assert!(n < INT_MAX_KEYS && i <= n);
    let src = INT_HDR + INT_ENTRY * i;
    let tail = INT_ENTRY * (n - i);
    let mut moved = vec![0u8; tail];
    moved.copy_from_slice(p.slice(src, tail));
    p.write(src + INT_ENTRY, &moved);
    p.write(src, &key.to_bytes());
    p.put_u64(src + KEY_BYTES, child);
    p.put_u16(1, (n + 1) as u16);
}

enum Inserted {
    Done,
    Duplicate,
    Split(StoreKey, PageId),
}

/// The B+tree. Owns its buffer pool; every page access is a
/// pin/use/unpin round through it.
pub struct BTree {
    pool: BufferPool,
    root: PageId,
    entries: usize,
}

impl BTree {
    /// A fresh, empty tree over `pool` (its file starts truncated —
    /// the tree is derived state, rebuilt from the WAL by its owner).
    pub fn create(mut pool: BufferPool) -> io::Result<Self> {
        let root = pool.allocate();
        let f = pool.pin(root)?;
        init_leaf(pool.page_mut(f));
        pool.unpin(f);
        pool.set_sticky(root, true);
        Ok(BTree {
            pool,
            root,
            entries: 0,
        })
    }

    /// Key/value pairs stored.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// The underlying pool (introspection: page counts, capacity).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Inserts `key -> value`; a duplicate key is ignored (first write
    /// wins) and reported as `false`.
    ///
    /// # Panics
    ///
    /// Panics if `value` exceeds [`MAX_VALUE`].
    pub fn insert(&mut self, key: StoreKey, value: &[u8]) -> io::Result<bool> {
        assert!(value.len() <= MAX_VALUE, "value too large for a leaf cell");
        match self.insert_rec(self.root, key, value)? {
            Inserted::Duplicate => Ok(false),
            Inserted::Done => {
                self.entries += 1;
                Ok(true)
            }
            Inserted::Split(sep, right) => {
                let new_root = self.pool.allocate();
                let f = self.pool.pin(new_root)?;
                let p = self.pool.page_mut(f);
                init_internal(p, self.root);
                int_insert_at(p, 0, sep, right);
                self.pool.unpin(f);
                // The sticky (scan-resistant) mark follows the root:
                // every descent starts there, so it is the one page a
                // full-order scan must never displace.
                self.pool.set_sticky(self.root, false);
                self.pool.set_sticky(new_root, true);
                self.root = new_root;
                self.entries += 1;
                Ok(true)
            }
        }
    }

    fn insert_rec(&mut self, page: PageId, key: StoreKey, value: &[u8]) -> io::Result<Inserted> {
        let f = self.pool.pin(page)?;
        if self.pool.page(f).bytes()[0] == LEAF {
            let p = self.pool.page(f);
            let slot = match leaf_search(p, key) {
                Ok(_) => {
                    self.pool.unpin(f);
                    return Ok(Inserted::Duplicate);
                }
                Err(i) => i,
            };
            if leaf_free(p) >= KEY_BYTES + 4 + value.len() {
                leaf_insert_at(self.pool.page_mut(f), slot, key, value);
                self.pool.unpin(f);
                return Ok(Inserted::Done);
            }
            // Split: gather every cell (plus the newcomer), rewrite the
            // two halves from scratch — compaction for free.
            let p = self.pool.page(f);
            let mut cells: Vec<(StoreKey, Vec<u8>)> = (0..count(p))
                .map(|i| (leaf_key(p, i), leaf_value(p, i).to_vec()))
                .collect();
            cells.insert(slot, (key, value.to_vec()));
            let next = p.u64_at(3);
            let mid = cells.len() / 2;
            let sep = cells[mid].0;
            let right_id = self.pool.allocate();
            let rf = self.pool.pin(right_id)?;
            let rp = self.pool.page_mut(rf);
            init_leaf(rp);
            rp.put_u64(3, next);
            for (j, (k, v)) in cells[mid..].iter().enumerate() {
                leaf_insert_at(rp, j, *k, v);
            }
            self.pool.unpin(rf);
            let lp = self.pool.page_mut(f);
            init_leaf(lp);
            lp.put_u64(3, right_id);
            for (j, (k, v)) in cells[..mid].iter().enumerate() {
                leaf_insert_at(lp, j, *k, v);
            }
            self.pool.unpin(f);
            return Ok(Inserted::Split(sep, right_id));
        }
        // Internal node: route, release the pin across the recursion
        // (the pool may evict us), re-pin if the child split.
        let p = self.pool.page(f);
        let route = int_route(p, key);
        let child = int_child_at(p, route);
        self.pool.unpin(f);
        let (sep, right) = match self.insert_rec(child, key, value)? {
            Inserted::Split(sep, right) => (sep, right),
            other => return Ok(other),
        };
        let f = self.pool.pin(page)?;
        if count(self.pool.page(f)) < INT_MAX_KEYS {
            int_insert_at(self.pool.page_mut(f), route, sep, right);
            self.pool.unpin(f);
            return Ok(Inserted::Done);
        }
        // Split the internal node; the middle separator moves up.
        let p = self.pool.page(f);
        let child0 = int_child0(p);
        let mut entries: Vec<(StoreKey, PageId)> = (0..count(p))
            .map(|i| (int_key(p, i), int_child(p, i)))
            .collect();
        entries.insert(route, (sep, right));
        let mid = entries.len() / 2;
        let promoted = entries[mid].0;
        let right_id = self.pool.allocate();
        let rf = self.pool.pin(right_id)?;
        let rp = self.pool.page_mut(rf);
        init_internal(rp, entries[mid].1);
        for (j, (k, c)) in entries[mid + 1..].iter().enumerate() {
            int_insert_at(rp, j, *k, *c);
        }
        self.pool.unpin(rf);
        let lp = self.pool.page_mut(f);
        init_internal(lp, child0);
        for (j, (k, c)) in entries[..mid].iter().enumerate() {
            int_insert_at(lp, j, *k, *c);
        }
        self.pool.unpin(f);
        Ok(Inserted::Split(promoted, right_id))
    }

    /// Looks a key up.
    pub fn get(&mut self, key: StoreKey) -> io::Result<Option<Vec<u8>>> {
        let mut page = self.root;
        loop {
            let f = self.pool.pin(page)?;
            let p = self.pool.page(f);
            if p.bytes()[0] == LEAF {
                let out = leaf_search(p, key).ok().map(|i| leaf_value(p, i).to_vec());
                self.pool.unpin(f);
                return Ok(out);
            }
            let next = int_child_at(p, int_route(p, key));
            self.pool.unpin(f);
            page = next;
        }
    }

    /// Streams every pair in key order (the paper's serial order, for
    /// timestamp keys) through the leaf chain — pages fault in and out
    /// of the pool as the scan walks, so the whole tree never needs to
    /// be resident.
    pub fn scan(&mut self, f: &mut dyn FnMut(StoreKey, &[u8])) -> io::Result<()> {
        let mut page = self.root;
        // Descend to the leftmost leaf.
        loop {
            let fr = self.pool.pin(page)?;
            let p = self.pool.page(fr);
            if p.bytes()[0] == LEAF {
                self.pool.unpin(fr);
                break;
            }
            let next = int_child0(p);
            self.pool.unpin(fr);
            page = next;
        }
        let mut leaf = page;
        loop {
            let fr = self.pool.pin(leaf)?;
            let p = self.pool.page(fr);
            for i in 0..count(p) {
                f(leaf_key(p, i), leaf_value(p, i));
            }
            let next = p.u64_at(3);
            self.pool.unpin(fr);
            if next == NO_LEAF {
                return Ok(());
            }
            leaf = next;
        }
    }

    /// Streams pairs with `key >= from` in key order, stopping early
    /// the first time `f` returns `false` — the range-scan primitive
    /// the store cursor and chunked-record reads are built on.
    pub fn scan_from(
        &mut self,
        from: StoreKey,
        f: &mut dyn FnMut(StoreKey, &[u8]) -> bool,
    ) -> io::Result<()> {
        // Descend along `from` (not leftmost): the routed leaf is the
        // only one that can hold the first qualifying key.
        let mut page = self.root;
        loop {
            let fr = self.pool.pin(page)?;
            let p = self.pool.page(fr);
            if p.bytes()[0] == LEAF {
                self.pool.unpin(fr);
                break;
            }
            let next = int_child_at(p, int_route(p, from));
            self.pool.unpin(fr);
            page = next;
        }
        let mut leaf = page;
        let mut first = true;
        loop {
            let fr = self.pool.pin(leaf)?;
            let p = self.pool.page(fr);
            let begin = if first {
                first = false;
                match leaf_search(p, from) {
                    Ok(i) | Err(i) => i,
                }
            } else {
                0
            };
            for i in begin..count(p) {
                if !f(leaf_key(p, i), leaf_value(p, i)) {
                    self.pool.unpin(fr);
                    return Ok(());
                }
            }
            let next = p.u64_at(3);
            self.pool.unpin(fr);
            if next == NO_LEAF {
                return Ok(());
            }
            leaf = next;
        }
    }

    /// Shape and occupancy statistics — `shard-trace store --stats`
    /// uses these for postmortem inspection of spilled runs.
    pub fn stats(&mut self) -> io::Result<BTreeStats> {
        // Depth via the leftmost descent.
        let mut depth = 1u32;
        let mut page = self.root;
        loop {
            let fr = self.pool.pin(page)?;
            let p = self.pool.page(fr);
            if p.bytes()[0] == LEAF {
                self.pool.unpin(fr);
                break;
            }
            let next = int_child0(p);
            self.pool.unpin(fr);
            page = next;
            depth += 1;
        }
        // Occupancy via the leaf chain; every allocated page is a tree
        // node, so internal pages are the remainder.
        let mut leaf = page;
        let mut leaf_pages = 0u64;
        let mut used = 0u64;
        loop {
            let fr = self.pool.pin(leaf)?;
            let p = self.pool.page(fr);
            leaf_pages += 1;
            used += (PAGE_SIZE - leaf_free(p)) as u64;
            let next = p.u64_at(3);
            self.pool.unpin(fr);
            if next == NO_LEAF {
                break;
            }
            leaf = next;
        }
        let total_pages = self.pool.page_count();
        Ok(BTreeStats {
            entries: self.entries,
            depth,
            total_pages,
            leaf_pages,
            internal_pages: total_pages - leaf_pages,
            leaf_fill_permille: (used * 1000 / (leaf_pages * PAGE_SIZE as u64)) as u32,
        })
    }
}

/// What [`BTree::stats`] reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BTreeStats {
    /// Key/value pairs stored.
    pub entries: usize,
    /// Root-to-leaf page count along a descent (1 for a lone leaf) —
    /// the pins a point lookup or scan start costs.
    pub depth: u32,
    /// Pages allocated in total.
    pub total_pages: u64,
    /// Leaf pages in the chain.
    pub leaf_pages: u64,
    /// Internal (router) pages.
    pub internal_pages: u64,
    /// Mean leaf occupancy, in permille of the page size.
    pub leaf_fill_permille: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "shard-store-btree-{name}-{}.db",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn tree(name: &str, frames: usize) -> (BTree, PathBuf) {
        let path = tmp(name);
        let pool = BufferPool::create(&path, frames).unwrap();
        (BTree::create(pool).unwrap(), path)
    }

    /// Deterministic pseudo-random stream (xorshift) — no RNG dep here.
    fn xs(seed: &mut u64) -> u64 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *seed
    }

    #[test]
    fn matches_btreemap_oracle_under_random_inserts() {
        let (mut t, path) = tree("oracle", 16);
        let mut oracle = BTreeMap::new();
        let mut seed = 0x5eed_cafe_f00d_0001u64;
        for _ in 0..5000 {
            let k = StoreKey::new(xs(&mut seed) % 4096, (xs(&mut seed) % 7) as u16);
            let v = xs(&mut seed).to_be_bytes().to_vec();
            let fresh = t.insert(k, &v).unwrap();
            let oracle_fresh = !oracle.contains_key(&k);
            assert_eq!(fresh, oracle_fresh, "duplicate handling diverged at {k:?}");
            oracle.entry(k).or_insert(v);
        }
        assert_eq!(t.len(), oracle.len());
        let mut scanned = Vec::new();
        t.scan(&mut |k, v| scanned.push((k, v.to_vec()))).unwrap();
        let expect: Vec<_> = oracle.iter().map(|(k, v)| (*k, v.clone())).collect();
        assert_eq!(scanned, expect, "key-order scan matches the oracle");
        for (k, v) in oracle.iter().take(200) {
            assert_eq!(t.get(*k).unwrap().as_deref(), Some(v.as_slice()));
        }
        assert_eq!(t.get(StoreKey::new(u64::MAX, 9)).unwrap(), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sequential_inserts_chain_leaves() {
        // Ascending timestamps are the common case (a node's own log);
        // every leaf but the rightmost ends up exactly half full, and
        // the scan must still see all keys in order.
        let (mut t, path) = tree("seq", 16);
        let n = 20_000u64;
        for i in 0..n {
            assert!(t.insert(StoreKey::new(i, 3), &i.to_be_bytes()).unwrap());
        }
        assert!(t.pool().page_count() > 64, "must span many pages");
        let mut prev = None;
        let mut seen = 0u64;
        t.scan(&mut |k, v| {
            assert!(prev.is_none_or(|p| p < k), "strictly increasing");
            assert_eq!(u64::from_be_bytes(v.try_into().unwrap()), k.primary);
            prev = Some(k);
            seen += 1;
        })
        .unwrap();
        assert_eq!(seen, n);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn scan_from_matches_oracle_ranges() {
        let (mut t, path) = tree("scan-from", 16);
        let mut oracle = BTreeMap::new();
        let mut seed = 0x5eed_0bad_cafe_0002u64;
        for _ in 0..4000 {
            let k = StoreKey::new(xs(&mut seed) % 2048, (xs(&mut seed) % 5) as u16);
            let v = xs(&mut seed).to_be_bytes().to_vec();
            t.insert(k, &v).unwrap();
            oracle.entry(k).or_insert(v);
        }
        for start in [
            StoreKey::new(0, 0),
            StoreKey::new(1, 3),
            StoreKey::new(997, 0),
            StoreKey::new(2047, 4),
            StoreKey::new(5000, 0), // past every key
        ] {
            let mut got = Vec::new();
            t.scan_from(start, &mut |k, v| {
                got.push((k, v.to_vec()));
                true
            })
            .unwrap();
            let expect: Vec<_> = oracle
                .range(start..)
                .map(|(k, v)| (*k, v.clone()))
                .collect();
            assert_eq!(got, expect, "range from {start:?}");
        }
        // Early stop: the callback sees exactly as many pairs as it
        // asked for.
        let mut seen = 0usize;
        t.scan_from(StoreKey::new(0, 0), &mut |_, _| {
            seen += 1;
            seen < 17
        })
        .unwrap();
        assert_eq!(seen, 17);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stats_reflect_tree_shape() {
        let (mut t, path) = tree("stats", 16);
        let s = t.stats().unwrap();
        assert_eq!((s.depth, s.leaf_pages, s.internal_pages), (1, 1, 0));
        for i in 0..20_000u64 {
            t.insert(StoreKey::new(i, 0), &i.to_be_bytes()).unwrap();
        }
        let s = t.stats().unwrap();
        assert_eq!(s.entries, 20_000);
        assert!(s.depth >= 2, "split at least once: {s:?}");
        assert_eq!(s.total_pages, s.leaf_pages + s.internal_pages);
        assert_eq!(s.total_pages, t.pool().page_count());
        // Ascending inserts leave every leaf but the last half full.
        assert!(
            (300..=1000).contains(&s.leaf_fill_permille),
            "fill factor plausible: {s:?}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pool_pressure_does_not_corrupt() {
        // A pool far smaller than the tree: every descent faults pages.
        let (mut t, path) = tree("pressure", 8);
        for i in (0..8000u64).rev() {
            t.insert(StoreKey::new(i, 0), &(i * 3).to_be_bytes())
                .unwrap();
        }
        for i in [0u64, 1, 999, 4096, 7999] {
            let got = t.get(StoreKey::new(i, 0)).unwrap().unwrap();
            assert_eq!(u64::from_be_bytes(got.try_into().unwrap()), i * 3);
        }
        std::fs::remove_file(&path).unwrap();
    }
}
