//! `shard-store` — the durable storage engine under the SHARD merge log.
//!
//! Every node's [`MergeLog`] historically lived entirely in RAM: a
//! crashed replica simply lost its log, so the paper's §3
//! prefix-subsequence condition had never been exercised *across a
//! restart*. This crate supplies the missing layer, with zero external
//! dependencies (std plus the in-workspace `shard-obs` counters):
//!
//! * [`wal`] — an append-only **write-ahead segment log**: fixed-header
//!   records (`len`, CRC-32, payload) appended to rotating segment
//!   files, with torn-tail detection and truncation on open. The WAL is
//!   the *authoritative* copy of a node's merge log, in arrival order.
//! * [`pool`] — a **buffer pool** of fixed-size page frames over one
//!   backing file: pin counts, second-chance (clock) eviction, dirty
//!   write-back.
//! * [`btree`] — a **slotted-page B+tree** keyed by [`StoreKey`]
//!   (timestamp order), built through the buffer pool. The tree is a
//!   *derived index* over the WAL — rebuilt on open, never trusted
//!   after a crash — which keeps the recovery story one-sided: replay
//!   the WAL, re-derive everything else.
//! * [`store`] — the [`Store`] trait tying it together, with two
//!   implementations: [`MemStore`] (default; byte-accounting faithful
//!   to the disk format, for fast deterministic tests) and
//!   [`DiskStore`] (opt-in via `SHARD_STORE_DIR`).
//! * [`codec`] — the minimal [`Codec`] trait application updates
//!   implement so the simulator can persist them, plus [`StoreKey`],
//!   the order-preserving 10-byte timestamp encoding.
//!
//! The crash model is explicit rather than accidental: `Store::crash`
//! truncates the log at an arbitrary byte offset (at or beyond the last
//! fsync barrier), then recovery re-opens and replays — exactly what
//! the `CrashRecoverInjector` nemesis in `shard-sim` and experiment E24
//! drive. The recovery invariants that make §3 survive a restart are
//! spelled out in `docs/storage.md`.
//!
//! [`MergeLog`]: ../shard_sim/merge/struct.MergeLog.html
//! [`Store`]: store::Store
//! [`MemStore`]: store::MemStore
//! [`DiskStore`]: store::DiskStore
//! [`Codec`]: codec::Codec
//! [`StoreKey`]: codec::StoreKey

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod btree;
pub mod codec;
pub mod page;
pub mod pool;
pub mod store;
pub mod wal;

pub use btree::{BTree, BTreeStats};
pub use codec::{write_frame, ByteReader, Codec, FrameReader, StoreKey};
pub use page::{Page, PageId, PAGE_SIZE};
pub use pool::BufferPool;
pub use store::{
    append_chunked, read_chunked, CrashReport, DiskStore, KeyCursor, MemStore, Store, StoreOptions,
    CHUNK_BYTES,
};
pub use wal::{Wal, WalInspection, WalOptions};

use std::sync::{Arc, OnceLock};

/// The `store.*` counters every layer of the engine feeds. Follows the
/// registry idiom of `shard_core::replay`: one lazily initialised
/// handle bundle, no-ops while the obs layer is disabled.
pub(crate) struct StoreMetrics {
    /// `store.pins` — buffer-pool page pins.
    pub pins: Arc<shard_obs::Counter>,
    /// `store.evictions` — frames evicted to make room.
    pub evictions: Arc<shard_obs::Counter>,
    /// `store.page_reads` — pages read from the backing file.
    pub page_reads: Arc<shard_obs::Counter>,
    /// `store.page_writes` — dirty pages written back.
    pub page_writes: Arc<shard_obs::Counter>,
    /// `store.readaheads` — pages prefetched by sequential readahead.
    pub readaheads: Arc<shard_obs::Counter>,
    /// `store.wal_appends` — records appended to the WAL.
    pub wal_appends: Arc<shard_obs::Counter>,
    /// `store.wal_fsyncs` — fsync barriers taken.
    pub wal_fsyncs: Arc<shard_obs::Counter>,
    /// `store.wal_torn_truncations` — torn tails dropped on open.
    pub wal_torn_truncations: Arc<shard_obs::Counter>,
    /// `store.recovered_entries` — entries replayed out of a store
    /// during recovery.
    pub recovered_entries: Arc<shard_obs::Counter>,
}

pub(crate) fn metrics() -> &'static StoreMetrics {
    static METRICS: OnceLock<StoreMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = shard_obs::Registry::global();
        StoreMetrics {
            pins: r.counter("store.pins"),
            evictions: r.counter("store.evictions"),
            page_reads: r.counter("store.page_reads"),
            page_writes: r.counter("store.page_writes"),
            readaheads: r.counter("store.readaheads"),
            wal_appends: r.counter("store.wal_appends"),
            wal_fsyncs: r.counter("store.wal_fsyncs"),
            wal_torn_truncations: r.counter("store.wal_torn_truncations"),
            recovered_entries: r.counter("store.recovered_entries"),
        }
    })
}
