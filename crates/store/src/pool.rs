//! The buffer pool: a fixed set of page frames over one backing file,
//! with pin counts, second-chance (clock) eviction, and dirty-page
//! write-back.
//!
//! The discipline is the textbook one:
//!
//! * [`BufferPool::pin`] fixes a page in a frame (faulting it in from
//!   the file if needed) and bumps its pin count — a pinned frame is
//!   never evicted, so borrowed page contents stay valid;
//! * [`BufferPool::unpin`] releases one pin;
//! * a miss with all frames full runs the **clock hand** over the
//!   frames: pinned frames are skipped, recently-referenced frames get
//!   their second chance (reference bit cleared), the first
//!   unreferenced unpinned frame is evicted — written back first iff
//!   dirty;
//! * [`BufferPool::page_mut`] is the only mutable access path and marks
//!   the frame dirty, so write-back ordering is enforced by
//!   construction: a dirty page cannot leave the pool except through
//!   the write-back path.
//!
//! Two refinements keep a full-order scan from flushing the working
//! set (the out-of-core replay path scans the whole tree while point
//! lookups keep landing on the root):
//!
//! * **sticky pages** ([`BufferPool::set_sticky`]): the clock skips a
//!   sticky frame on its normal sweep and only claims one as a last
//!   resort, so the B+tree root never leaves the pool under scan
//!   pressure;
//! * **sequential readahead**: a fault whose page id directly follows
//!   the previous access prefetches the next few file pages in one
//!   read. Prefetched frames start *unreferenced*, so a used-once scan
//!   page is the clock's first victim and never displaces a referenced
//!   working-set frame.
//!
//! The pool feeds `store.pins`, `store.evictions`, `store.page_reads`,
//! `store.page_writes` and `store.readaheads`.

use crate::metrics;
use crate::page::{Page, PageId, PAGE_SIZE};
use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

struct Frame {
    page: Page,
    id: Option<PageId>,
    pins: u32,
    dirty: bool,
    referenced: bool,
    sticky: bool,
}

/// A pool of `capacity` frames over one page file.
pub struct BufferPool {
    file: File,
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    hand: usize,
    /// Number of pages the file logically holds (allocation high-water
    /// mark; trailing pages may not have hit the file yet).
    pages: u64,
    /// Pages materially present in the file (reads past this are zero).
    file_pages: u64,
    /// Pages marked scan-resistant (evicted only as a last resort).
    sticky: HashSet<PageId>,
    /// Most recently pinned page — sequential-fault detector for
    /// readahead.
    last_access: Option<PageId>,
}

impl BufferPool {
    /// Minimum frame count: enough for one root-to-leaf B+tree descent
    /// (parent + child pinned at once) with slack for splits.
    pub const MIN_FRAMES: usize = 8;

    /// Opens `path` (created and truncated — pool files are derived
    /// state, rebuilt by their owner on open) with `capacity` frames.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < MIN_FRAMES`.
    pub fn create(path: &Path, capacity: usize) -> io::Result<Self> {
        assert!(
            capacity >= Self::MIN_FRAMES,
            "buffer pool needs at least {} frames",
            Self::MIN_FRAMES
        );
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(BufferPool {
            file,
            capacity,
            frames: Vec::with_capacity(capacity),
            map: HashMap::new(),
            hand: 0,
            pages: 0,
            file_pages: 0,
            sticky: HashSet::new(),
            last_access: None,
        })
    }

    /// Pages a sequential fault prefetches (bounded by a quarter of the
    /// pool so a prefetch batch can never sweep the whole frame set).
    const READAHEAD: u64 = 8;

    /// Frames the pool may hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pages allocated so far.
    pub fn page_count(&self) -> u64 {
        self.pages
    }

    /// Allocates a fresh (all-zero) page and returns its id. The page
    /// is not resident until pinned.
    pub fn allocate(&mut self) -> PageId {
        let id = self.pages;
        self.pages += 1;
        id
    }

    /// Pins `id` into a frame, faulting it in if absent, and returns
    /// the frame index for [`BufferPool::page`] / [`BufferPool::page_mut`].
    /// Every `pin` must be paired with an [`BufferPool::unpin`].
    pub fn pin(&mut self, id: PageId) -> io::Result<usize> {
        assert!(id < self.pages, "pin of unallocated page {id}");
        metrics().pins.inc();
        if let Some(&idx) = self.map.get(&id) {
            self.frames[idx].pins += 1;
            self.frames[idx].referenced = true;
            self.last_access = Some(id);
            return Ok(idx);
        }
        let sequential = id > 0 && self.last_access == Some(id - 1);
        self.last_access = Some(id);
        let idx = self.free_frame()?;
        let mut page = Page::zeroed();
        if id < self.file_pages {
            self.file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
            self.file.read_exact(page.bytes_mut())?;
            metrics().page_reads.inc();
        }
        self.frames[idx] = Frame {
            page,
            id: Some(id),
            pins: 1,
            dirty: false,
            referenced: true,
            sticky: self.sticky.contains(&id),
        };
        self.map.insert(id, idx);
        if sequential && id + 1 < self.file_pages {
            // Best effort: a prefetch failure (pool momentarily full,
            // short read) costs nothing — the page faults in normally
            // when actually pinned.
            let _ = self.readahead(id + 1);
        }
        Ok(idx)
    }

    /// Marks `id` scan-resistant (or clears the mark): the clock sweep
    /// skips a sticky frame and only evicts one once every non-sticky
    /// candidate is pinned. The B+tree pins its root this way so a
    /// full-order scan cannot flush the top of the tree.
    pub fn set_sticky(&mut self, id: PageId, sticky: bool) {
        if sticky {
            self.sticky.insert(id);
        } else {
            self.sticky.remove(&id);
        }
        if let Some(&idx) = self.map.get(&id) {
            self.frames[idx].sticky = sticky;
        }
    }

    /// Prefetches up to [`Self::READAHEAD`] file pages starting at
    /// `from` in a single read. Prefetched frames are installed
    /// unpinned and *unreferenced*, so they are the first eviction
    /// victims unless a pin promotes them first.
    fn readahead(&mut self, from: PageId) -> io::Result<()> {
        let span = Self::READAHEAD.min((self.capacity / 4).max(1) as u64);
        let end = (from + span).min(self.file_pages);
        if from >= end {
            return Ok(());
        }
        let n = (end - from) as usize;
        // Residency snapshot *before* the read: a resident (possibly
        // dirty) page in the range may be evicted — and written back —
        // by free_frame during the install loop below, at which point
        // the prefetch buffer holds stale bytes for it. Such pages are
        // never installed from the buffer; they refault normally.
        let resident: Vec<bool> = (0..n)
            .map(|j| self.map.contains_key(&(from + j as u64)))
            .collect();
        let mut buf = vec![0u8; n * PAGE_SIZE];
        self.file.seek(SeekFrom::Start(from * PAGE_SIZE as u64))?;
        self.file.read_exact(&mut buf)?;
        for j in 0..n {
            let id = from + j as u64;
            if resident[j] || self.map.contains_key(&id) {
                continue;
            }
            let idx = self.free_frame()?;
            let mut page = Page::zeroed();
            page.bytes_mut()
                .copy_from_slice(&buf[j * PAGE_SIZE..(j + 1) * PAGE_SIZE]);
            self.frames[idx] = Frame {
                page,
                id: Some(id),
                pins: 0,
                dirty: false,
                referenced: false,
                sticky: self.sticky.contains(&id),
            };
            self.map.insert(id, idx);
            metrics().page_reads.inc();
            metrics().readaheads.inc();
        }
        Ok(())
    }

    /// Releases one pin on `frame`.
    ///
    /// # Panics
    ///
    /// Panics on unpinning a frame that holds no pins (a pairing bug).
    pub fn unpin(&mut self, frame: usize) {
        let f = &mut self.frames[frame];
        assert!(f.pins > 0, "unpin without a matching pin");
        f.pins -= 1;
    }

    /// Read access to a pinned frame's page.
    pub fn page(&self, frame: usize) -> &Page {
        debug_assert!(self.frames[frame].pins > 0, "access to unpinned frame");
        &self.frames[frame].page
    }

    /// Write access to a pinned frame's page; marks it dirty.
    pub fn page_mut(&mut self, frame: usize) -> &mut Page {
        let f = &mut self.frames[frame];
        debug_assert!(f.pins > 0, "access to unpinned frame");
        f.dirty = true;
        &mut f.page
    }

    /// Writes every dirty frame back to the file (without evicting).
    pub fn flush(&mut self) -> io::Result<()> {
        for idx in 0..self.frames.len() {
            if self.frames[idx].dirty {
                self.write_back(idx)?;
            }
        }
        Ok(())
    }

    /// Resident, currently pinned frames — test/introspection hook.
    pub fn pinned_frames(&self) -> usize {
        self.frames.iter().filter(|f| f.pins > 0).count()
    }

    fn write_back(&mut self, idx: usize) -> io::Result<()> {
        let id = self.frames[idx].id.expect("write-back of empty frame");
        self.file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        self.file.write_all(self.frames[idx].page.bytes())?;
        self.frames[idx].dirty = false;
        self.file_pages = self.file_pages.max(id + 1);
        metrics().page_writes.inc();
        Ok(())
    }

    /// A frame to load into: a never-used slot while the pool is below
    /// capacity, otherwise the clock's next victim (written back iff
    /// dirty).
    fn free_frame(&mut self) -> io::Result<usize> {
        if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                page: Page::zeroed(),
                id: None,
                pins: 0,
                dirty: false,
                referenced: false,
                sticky: false,
            });
            return Ok(self.frames.len() - 1);
        }
        // Second-chance sweep: at most two passes over the frames (one
        // to clear reference bits, one to claim a victim). Sticky
        // frames are skipped entirely on the first round and only
        // become candidates once nothing else is evictable.
        for honor_sticky in [true, false] {
            for _ in 0..2 * self.frames.len() {
                let idx = self.hand;
                self.hand = (self.hand + 1) % self.frames.len();
                let f = &mut self.frames[idx];
                if f.pins > 0 {
                    continue;
                }
                if honor_sticky && f.sticky {
                    continue;
                }
                if f.referenced {
                    f.referenced = false;
                    continue;
                }
                if self.frames[idx].dirty {
                    self.write_back(idx)?;
                }
                let old = self.frames[idx]
                    .id
                    .take()
                    .expect("occupied frame has an id");
                self.map.remove(&old);
                metrics().evictions.inc();
                return Ok(idx);
            }
        }
        Err(io::Error::other(
            "buffer pool exhausted: every frame is pinned",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("shard-store-pool-{name}-{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    /// Stamps a recognisable byte pattern for page `id`.
    fn stamp(pool: &mut BufferPool, frame: usize, id: PageId) {
        let p = pool.page_mut(frame);
        let b = (id % 251) as u8;
        p.bytes_mut().fill(b);
        p.put_u64(0, id);
    }

    fn check(pool: &BufferPool, frame: usize, id: PageId) {
        let p = pool.page(frame);
        assert_eq!(p.u64_at(0), id, "page {id} content");
        assert_eq!(p.bytes()[PAGE_SIZE - 1], (id % 251) as u8);
    }

    #[test]
    fn pin_unpin_pairing_and_reuse() {
        let path = tmp("pairing");
        let mut pool = BufferPool::create(&path, 8).unwrap();
        let id = pool.allocate();
        let f1 = pool.pin(id).unwrap();
        let f2 = pool.pin(id).unwrap();
        assert_eq!(f1, f2, "same page shares a frame");
        assert_eq!(pool.pinned_frames(), 1);
        pool.unpin(f1);
        assert_eq!(pool.pinned_frames(), 1, "second pin still holds");
        pool.unpin(f2);
        assert_eq!(pool.pinned_frames(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "unpin without a matching pin")]
    fn unbalanced_unpin_panics() {
        let path = tmp("unbalanced");
        let mut pool = BufferPool::create(&path, 8).unwrap();
        let id = pool.allocate();
        let f = pool.pin(id).unwrap();
        pool.unpin(f);
        pool.unpin(f);
    }

    #[test]
    fn eviction_under_pressure_round_trips_content() {
        let path = tmp("pressure");
        let mut pool = BufferPool::create(&path, 8).unwrap();
        // 64 pages through 8 frames: every page is written, evicted
        // (with write-back), and must read back intact.
        let ids: Vec<PageId> = (0..64).map(|_| pool.allocate()).collect();
        for &id in &ids {
            let f = pool.pin(id).unwrap();
            stamp(&mut pool, f, id);
            pool.unpin(f);
        }
        for &id in ids.iter().rev() {
            let f = pool.pin(id).unwrap();
            check(&pool, f, id);
            pool.unpin(f);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let path = tmp("pinned");
        let mut pool = BufferPool::create(&path, 8).unwrap();
        let hot = pool.allocate();
        let hf = pool.pin(hot).unwrap();
        stamp(&mut pool, hf, hot);
        // Flood the pool: the pinned frame must never be evicted.
        for _ in 0..50 {
            let id = pool.allocate();
            let f = pool.pin(id).unwrap();
            stamp(&mut pool, f, id);
            pool.unpin(f);
        }
        check(&pool, hf, hot);
        assert_eq!(pool.pin(hot).unwrap(), hf, "still resident in place");
        pool.unpin(hf);
        pool.unpin(hf);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn all_pinned_reports_exhaustion() {
        let path = tmp("exhaust");
        let mut pool = BufferPool::create(&path, 8).unwrap();
        let mut held = Vec::new();
        for _ in 0..8 {
            let id = pool.allocate();
            held.push(pool.pin(id).unwrap());
        }
        let extra = pool.allocate();
        assert!(pool.pin(extra).is_err(), "no evictable frame left");
        for f in held {
            pool.unpin(f);
        }
        assert!(pool.pin(extra).is_ok(), "recovers once pins release");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dirty_write_back_ordering() {
        // A dirty page evicted and re-faulted must come back from the
        // file with its latest content — i.e. write-back happens
        // *before* the frame is reused, never after.
        let path = tmp("wb-order");
        let mut pool = BufferPool::create(&path, 8).unwrap();
        let a = pool.allocate();
        let f = pool.pin(a).unwrap();
        stamp(&mut pool, f, a);
        pool.unpin(f);
        let reads_before = shard_obs::Registry::global()
            .snapshot()
            .counter("store.page_reads")
            .unwrap_or(0);
        // Cycle enough distinct pages to guarantee `a` is evicted.
        for _ in 0..16 {
            let id = pool.allocate();
            let f = pool.pin(id).unwrap();
            stamp(&mut pool, f, id);
            pool.unpin(f);
        }
        let f = pool.pin(a).unwrap();
        check(&pool, f, a);
        pool.unpin(f);
        let reads_after = shard_obs::Registry::global()
            .snapshot()
            .counter("store.page_reads")
            .unwrap_or(0);
        assert!(reads_after > reads_before, "page faulted back from disk");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sticky_page_survives_scan_pressure() {
        let path = tmp("sticky");
        let mut pool = BufferPool::create(&path, 8).unwrap();
        let root = pool.allocate();
        let f = pool.pin(root).unwrap();
        stamp(&mut pool, f, root);
        pool.unpin(f);
        pool.set_sticky(root, true);
        // A long scan of used-once pages: without stickiness the root
        // would be clocked out; with it the frame must stay resident.
        let reads_before = shard_obs::Registry::global()
            .snapshot()
            .counter("store.page_reads")
            .unwrap_or(0);
        for _ in 0..40 {
            let id = pool.allocate();
            let f = pool.pin(id).unwrap();
            stamp(&mut pool, f, id);
            pool.unpin(f);
        }
        let f = pool.pin(root).unwrap();
        check(&pool, f, root);
        pool.unpin(f);
        let reads_after = shard_obs::Registry::global()
            .snapshot()
            .counter("store.page_reads")
            .unwrap_or(0);
        assert_eq!(reads_after, reads_before, "root never left the pool");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sticky_page_yields_as_last_resort() {
        let path = tmp("sticky-yield");
        let mut pool = BufferPool::create(&path, 8).unwrap();
        // Mark every resident page sticky, then demand a fresh frame:
        // the pool must still make progress (desperate pass) rather
        // than report exhaustion.
        let ids: Vec<PageId> = (0..8).map(|_| pool.allocate()).collect();
        for &id in &ids {
            let f = pool.pin(id).unwrap();
            stamp(&mut pool, f, id);
            pool.unpin(f);
            pool.set_sticky(id, true);
        }
        let extra = pool.allocate();
        let f = pool.pin(extra).unwrap();
        pool.unpin(f);
        // One of the sticky pages was evicted; its content survives on
        // disk and reads back intact.
        for &id in &ids {
            let f = pool.pin(id).unwrap();
            check(&pool, f, id);
            pool.unpin(f);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sequential_faults_trigger_readahead() {
        let snap = |name: &str| {
            shard_obs::Registry::global()
                .snapshot()
                .counter(name)
                .unwrap_or(0)
        };
        let path = tmp("readahead");
        // A pool much smaller than the page set: the write pass evicts
        // (and thus persists) almost everything, so the later forward
        // walk faults pages back in sequentially from the file.
        let mut pool = BufferPool::create(&path, 8).unwrap();
        let n = 64u64;
        let ids: Vec<PageId> = (0..n).map(|_| pool.allocate()).collect();
        for &id in &ids {
            let f = pool.pin(id).unwrap();
            stamp(&mut pool, f, id);
            pool.unpin(f);
        }
        pool.flush().unwrap();
        let before = snap("store.readaheads");
        let reads_before = snap("store.page_reads");
        for &id in &ids {
            let f = pool.pin(id).unwrap();
            check(&pool, f, id);
            pool.unpin(f);
        }
        let prefetched = snap("store.readaheads") - before;
        let reads = snap("store.page_reads") - reads_before;
        assert!(prefetched > 0, "sequential walk prefetched pages");
        assert!(
            prefetched * 2 >= reads,
            "most pages arrived via readahead batches ({prefetched} of {reads})"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn flush_persists_without_eviction() {
        let path = tmp("flush");
        let mut pool = BufferPool::create(&path, 8).unwrap();
        let id = pool.allocate();
        let f = pool.pin(id).unwrap();
        stamp(&mut pool, f, id);
        pool.unpin(f);
        pool.flush().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len(), PAGE_SIZE);
        assert_eq!(u64::from_le_bytes(bytes[..8].try_into().unwrap()), id);
        std::fs::remove_file(&path).unwrap();
    }
}
