//! The [`Store`] trait — what the simulator's durable layer programs
//! against — and its two implementations.
//!
//! A store is an **ordered log of `(key, value)` records with a
//! durability barrier and an explicit crash model**:
//!
//! * [`Store::append`] adds a record (buffered, *not* durable);
//! * [`Store::sync`] is the fsync barrier — everything appended before
//!   it survives any later crash;
//! * [`Store::crash`] models the power cut: the log is truncated at an
//!   arbitrary byte offset (honest hardware keeps at least
//!   [`Store::synced_bytes`]), reopened, and torn records are dropped;
//! * [`Store::scan_arrival`] streams records in append order — the
//!   recovery path; [`Store::scan_key_order`] streams in key
//!   (timestamp) order through the B+tree index.
//!
//! [`MemStore`] keeps the same byte accounting as the disk format, so
//! crash offsets mean the same thing in both — the deterministic
//! kernel's proptests run against `MemStore` and transfer to
//! [`DiskStore`] by construction (and E24 checks they agree).

use crate::btree::BTree;
use crate::codec::{StoreKey, KEY_BYTES};
use crate::metrics;
use crate::pool::BufferPool;
use crate::wal::{Wal, WalOptions, RECORD_HEADER};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Outcome of a [`Store::crash`] + reopen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashReport {
    /// Records that survived.
    pub kept_entries: usize,
    /// Bytes that survived (record-aligned, `<=` the requested keep).
    pub kept_bytes: u64,
    /// Whether the keep offset cut a record in half (the torn record
    /// was dropped).
    pub torn: bool,
}

/// Tuning for a [`DiskStore`] (and the byte model of [`MemStore`]).
#[derive(Clone, Debug)]
pub struct StoreOptions {
    /// WAL segment rotation threshold.
    pub segment_bytes: u64,
    /// Buffer-pool frames for the B+tree index.
    pub pool_frames: usize,
}

impl Default for StoreOptions {
    /// 1 MiB segments, 64 frames (256 KiB of page cache).
    fn default() -> Self {
        StoreOptions {
            segment_bytes: WalOptions::default().segment_bytes,
            pool_frames: 64,
        }
    }
}

impl StoreOptions {
    /// Options with the documented environment overrides applied:
    /// `SHARD_STORE_SEGMENT_BYTES` and `SHARD_STORE_FRAMES`.
    pub fn from_env() -> Self {
        let mut opts = StoreOptions::default();
        if let Some(v) = env_u64("SHARD_STORE_SEGMENT_BYTES") {
            opts.segment_bytes = v.max(64);
        }
        if let Some(v) = env_u64("SHARD_STORE_FRAMES") {
            opts.pool_frames = (v as usize).max(BufferPool::MIN_FRAMES);
        }
        opts
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// An ordered, crash-truncatable record log. See the module docs for
/// the contract; `docs/storage.md` for the recovery invariants built
/// on top of it.
pub trait Store {
    /// Appends one record. Buffered until the next [`Store::sync`].
    fn append(&mut self, key: StoreKey, value: &[u8]) -> io::Result<()>;

    /// Durability barrier: everything appended so far survives crashes.
    fn sync(&mut self) -> io::Result<()>;

    /// Logical end offset of the log in bytes.
    fn len_bytes(&self) -> u64;

    /// Offset up to which the log is known durable.
    fn synced_bytes(&self) -> u64;

    /// Records in the log.
    fn entries(&self) -> usize;

    /// Streams records in append (arrival) order.
    fn scan_arrival(&mut self, f: &mut dyn FnMut(StoreKey, &[u8])) -> io::Result<()>;

    /// Streams records in key (timestamp) order.
    fn scan_key_order(&mut self, f: &mut dyn FnMut(StoreKey, &[u8])) -> io::Result<()>;

    /// Streams records with `key >= from` in key order, stopping early
    /// the first time `f` returns `false` — the cursor primitive the
    /// out-of-core replay path folds over.
    fn scan_key_range(
        &mut self,
        from: StoreKey,
        f: &mut dyn FnMut(StoreKey, &[u8]) -> bool,
    ) -> io::Result<()>;

    /// Point lookup by key.
    fn get(&mut self, key: StoreKey) -> io::Result<Option<Vec<u8>>>;

    /// Simulates a crash preserving exactly the first `keep` bytes,
    /// then recovers: reopen, truncate the torn tail, rebuild derived
    /// state. Honest hardware passes `keep >= synced_bytes()`.
    fn crash(&mut self, keep: u64) -> io::Result<CrashReport>;
}

/// Per-record byte cost shared by both stores (`header + key + value`).
fn record_bytes(value_len: usize) -> u64 {
    RECORD_HEADER + (KEY_BYTES + value_len) as u64
}

/// The in-memory store: a `Vec` of records with disk-faithful byte
/// accounting and the same crash semantics as [`DiskStore`]. The
/// default backend — durability without the I/O, for deterministic
/// tests and fast chaos sweeps.
#[derive(Default)]
pub struct MemStore {
    /// `(key, value, end_offset)` in arrival order.
    records: Vec<(StoreKey, Vec<u8>, u64)>,
    /// Key-order index (the `DiskStore`'s B+tree, flattened).
    index: BTreeMap<StoreKey, usize>,
    len: u64,
    synced: u64,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl Store for MemStore {
    fn append(&mut self, key: StoreKey, value: &[u8]) -> io::Result<()> {
        self.len += record_bytes(value.len());
        self.index.entry(key).or_insert(self.records.len());
        self.records.push((key, value.to_vec(), self.len));
        metrics().wal_appends.inc();
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.synced < self.len {
            self.synced = self.len;
            metrics().wal_fsyncs.inc();
        }
        Ok(())
    }

    fn len_bytes(&self) -> u64 {
        self.len
    }

    fn synced_bytes(&self) -> u64 {
        self.synced
    }

    fn entries(&self) -> usize {
        self.records.len()
    }

    fn scan_arrival(&mut self, f: &mut dyn FnMut(StoreKey, &[u8])) -> io::Result<()> {
        for (k, v, _) in &self.records {
            f(*k, v);
        }
        Ok(())
    }

    fn scan_key_order(&mut self, f: &mut dyn FnMut(StoreKey, &[u8])) -> io::Result<()> {
        for (k, &i) in &self.index {
            f(*k, &self.records[i].1);
        }
        Ok(())
    }

    fn scan_key_range(
        &mut self,
        from: StoreKey,
        f: &mut dyn FnMut(StoreKey, &[u8]) -> bool,
    ) -> io::Result<()> {
        for (k, &i) in self.index.range(from..) {
            if !f(*k, &self.records[i].1) {
                break;
            }
        }
        Ok(())
    }

    fn get(&mut self, key: StoreKey) -> io::Result<Option<Vec<u8>>> {
        Ok(self.index.get(&key).map(|&i| self.records[i].1.clone()))
    }

    fn crash(&mut self, keep: u64) -> io::Result<CrashReport> {
        let kept = self
            .records
            .iter()
            .take_while(|(_, _, end)| *end <= keep)
            .count();
        let kept_bytes = if kept == 0 {
            0
        } else {
            self.records[kept - 1].2
        };
        let torn = kept_bytes < keep.min(self.len);
        self.records.truncate(kept);
        // Rebuild the index first-writer-wins, matching the B+tree.
        self.index.clear();
        for (i, (k, _, _)) in self.records.iter().enumerate() {
            self.index.entry(*k).or_insert(i);
        }
        self.len = kept_bytes;
        self.synced = kept_bytes;
        if torn {
            metrics().wal_torn_truncations.inc();
        }
        metrics().recovered_entries.add(kept as u64);
        Ok(CrashReport {
            kept_entries: kept,
            kept_bytes,
            torn,
        })
    }
}

/// The disk store: a [`Wal`] (authoritative, arrival order) plus a
/// [`BTree`] index (derived, key order) rebuilt from the WAL on every
/// open. Opt in with `SHARD_STORE_DIR` or an explicit directory.
pub struct DiskStore {
    dir: PathBuf,
    opts: StoreOptions,
    wal: Wal,
    index: BTree,
}

impl DiskStore {
    /// Opens (creating if needed) the store in `dir`: validates the
    /// WAL, truncates any torn tail, and rebuilds the B+tree index by
    /// streaming the log. Returns the store and the records recovered.
    pub fn open(dir: &Path, opts: StoreOptions) -> io::Result<(Self, usize)> {
        let wal_opts = WalOptions {
            segment_bytes: opts.segment_bytes,
        };
        let (wal, report) = Wal::open(dir, wal_opts)?;
        let pool = BufferPool::create(&dir.join("pages.db"), opts.pool_frames)?;
        let mut index = BTree::create(pool)?;
        // The scan callback is infallible by design; stash the first
        // index-build error and surface it after the walk.
        let mut failed = None;
        wal.for_each(|k, v| {
            if failed.is_none() {
                if let Err(e) = index.insert(k, v) {
                    failed = Some(e);
                }
            }
        })?;
        if let Some(e) = failed {
            return Err(e);
        }
        metrics().recovered_entries.add(report.entries as u64);
        Ok((
            DiskStore {
                dir: dir.to_path_buf(),
                opts,
                wal,
                index,
            },
            report.entries,
        ))
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Shape/occupancy statistics of the B+tree index
    /// (`shard-trace store --stats`).
    pub fn index_stats(&mut self) -> io::Result<crate::btree::BTreeStats> {
        self.index.stats()
    }
}

impl Store for DiskStore {
    fn append(&mut self, key: StoreKey, value: &[u8]) -> io::Result<()> {
        self.wal.append(key, value)?;
        self.index.insert(key, value)?;
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.wal.sync()
    }

    fn len_bytes(&self) -> u64 {
        self.wal.len()
    }

    fn synced_bytes(&self) -> u64 {
        self.wal.synced()
    }

    fn entries(&self) -> usize {
        self.wal.entries()
    }

    fn scan_arrival(&mut self, f: &mut dyn FnMut(StoreKey, &[u8])) -> io::Result<()> {
        self.wal.for_each(f)
    }

    fn scan_key_order(&mut self, f: &mut dyn FnMut(StoreKey, &[u8])) -> io::Result<()> {
        self.index.scan(f)
    }

    fn scan_key_range(
        &mut self,
        from: StoreKey,
        f: &mut dyn FnMut(StoreKey, &[u8]) -> bool,
    ) -> io::Result<()> {
        self.index.scan_from(from, f)
    }

    fn get(&mut self, key: StoreKey) -> io::Result<Option<Vec<u8>>> {
        self.index.get(key)
    }

    fn crash(&mut self, keep: u64) -> io::Result<CrashReport> {
        // Swap in a throwaway WAL so we can consume the real one (crash
        // takes self by value to close file handles before truncating).
        let tmp_dir = self.dir.join(".crash-tmp");
        let (placeholder, _) = Wal::open(
            &tmp_dir,
            WalOptions {
                segment_bytes: self.opts.segment_bytes,
            },
        )?;
        let wal = std::mem::replace(&mut self.wal, placeholder);
        let requested_end = wal.len().min(keep);
        let dir = wal.crash(keep)?;
        std::fs::remove_dir_all(&tmp_dir)?;
        let (reopened, entries) = DiskStore::open(&dir, self.opts.clone())?;
        let kept_bytes = reopened.wal.len();
        *self = reopened;
        Ok(CrashReport {
            kept_entries: entries,
            kept_bytes,
            torn: kept_bytes < requested_end,
        })
    }
}

/// Chunk size for records larger than one B+tree leaf cell — exactly
/// the tree's inline cap, so a chunk is always insertable.
pub const CHUNK_BYTES: usize = crate::btree::MAX_VALUE;

/// Writes `payload` as one logical record group under `primary`: the
/// payload is length-framed ([`crate::codec::write_frame`]) and split
/// into [`CHUNK_BYTES`]-sized chunks keyed `(primary, chunk_index)`, so
/// a key-order scan from `(primary, 0)` streams the group back
/// contiguously. Returns the chunk count. See `docs/storage.md` for
/// the byte layout.
///
/// # Panics
///
/// Panics if the framed payload needs more than `u16::MAX + 1` chunks
/// (64 MiB — far above any checkpoint state this system spills).
pub fn append_chunked(store: &mut dyn Store, primary: u64, payload: &[u8]) -> io::Result<u32> {
    let mut framed = Vec::with_capacity(4 + payload.len());
    crate::codec::write_frame(payload, &mut framed);
    let chunks = framed.len().div_ceil(CHUNK_BYTES);
    assert!(
        chunks <= u16::MAX as usize + 1,
        "payload too large to chunk"
    );
    for (i, chunk) in framed.chunks(CHUNK_BYTES).enumerate() {
        store.append(StoreKey::new(primary, i as u16), chunk)?;
    }
    Ok(chunks as u32)
}

/// Reads a chunked record group back. `None` when the group is absent,
/// incomplete (e.g. truncated by a crash) or malformed — callers treat
/// all three as "this record is not available" and fall back.
pub fn read_chunked(store: &mut dyn Store, primary: u64) -> io::Result<Option<Vec<u8>>> {
    let mut reader = crate::codec::FrameReader::new();
    let mut expect = 0u32;
    let mut contiguous = true;
    store.scan_key_range(StoreKey::new(primary, 0), &mut |k, v| {
        if k.primary != primary {
            return false;
        }
        if u32::from(k.secondary) != expect {
            contiguous = false;
            return false;
        }
        expect += 1;
        reader.push(v);
        true
    })?;
    if !contiguous {
        return Ok(None);
    }
    Ok(reader.next_frame().map(|b| b.to_vec()))
}

/// A pull-style cursor over a store's key order: batches of records are
/// fetched through [`Store::scan_key_range`] and handed out one at a
/// time, so a caller can interleave cursor reads with other store
/// access (the callback API borrows the store for the whole scan; the
/// cursor only borrows it per refill).
#[derive(Debug)]
pub struct KeyCursor {
    /// Resume key for the next refill; `None` once the scan is done.
    next_from: Option<StoreKey>,
    batch: std::collections::VecDeque<(StoreKey, Vec<u8>)>,
    batch_size: usize,
}

impl KeyCursor {
    /// A cursor over the whole key range, fetching `batch_size` records
    /// per refill.
    pub fn new(batch_size: usize) -> Self {
        KeyCursor::starting_at(StoreKey::new(0, 0), batch_size)
    }

    /// A cursor over `[from, ..)`.
    pub fn starting_at(from: StoreKey, batch_size: usize) -> Self {
        KeyCursor {
            next_from: Some(from),
            batch: std::collections::VecDeque::new(),
            batch_size: batch_size.max(1),
        }
    }

    /// The next record in key order, or `None` at the end.
    pub fn next(&mut self, store: &mut dyn Store) -> io::Result<Option<(StoreKey, Vec<u8>)>> {
        if self.batch.is_empty() {
            let Some(from) = self.next_from else {
                return Ok(None);
            };
            let batch = &mut self.batch;
            let cap = self.batch_size;
            store.scan_key_range(from, &mut |k, v| {
                batch.push_back((k, v.to_vec()));
                batch.len() < cap
            })?;
            self.next_from = if self.batch.len() < cap {
                None // the store had no more records
            } else {
                self.batch.back().and_then(|(k, _)| key_successor(*k))
            };
        }
        Ok(self.batch.pop_front())
    }
}

/// The smallest key strictly greater than `k`, or `None` at the top of
/// the key space.
fn key_successor(k: StoreKey) -> Option<StoreKey> {
    if k.secondary < u16::MAX {
        Some(StoreKey::new(k.primary, k.secondary + 1))
    } else if k.primary < u64::MAX {
        Some(StoreKey::new(k.primary + 1, 0))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("shard-store-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fill(store: &mut dyn Store, n: u64, sync_every: u64) {
        for i in 0..n {
            store
                .append(StoreKey::new(i / 3, (i % 3) as u16), &i.to_be_bytes())
                .unwrap();
            if (i + 1) % sync_every == 0 {
                store.sync().unwrap();
            }
        }
    }

    fn arrival(store: &mut dyn Store) -> Vec<(StoreKey, Vec<u8>)> {
        let mut out = Vec::new();
        store
            .scan_arrival(&mut |k, v| out.push((k, v.to_vec())))
            .unwrap();
        out
    }

    #[test]
    fn mem_and_disk_agree_byte_for_byte() {
        let dir = tmp("agree");
        let mut mem = MemStore::new();
        let (mut disk, _) = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        fill(&mut mem, 200, 7);
        fill(&mut disk, 200, 7);
        assert_eq!(mem.len_bytes(), disk.len_bytes());
        assert_eq!(mem.synced_bytes(), disk.synced_bytes());
        assert_eq!(mem.entries(), disk.entries());
        assert_eq!(arrival(&mut mem), arrival(&mut disk));
        let mut mk = Vec::new();
        let mut dk = Vec::new();
        mem.scan_key_order(&mut |k, v| mk.push((k, v.to_vec())))
            .unwrap();
        disk.scan_key_order(&mut |k, v| dk.push((k, v.to_vec())))
            .unwrap();
        assert_eq!(mk, dk);
        // Crash both at the same mid-record offset: identical outcomes.
        let keep = mem.len_bytes() - 13;
        let mr = mem.crash(keep).unwrap();
        let dr = disk.crash(keep).unwrap();
        assert_eq!(mr, dr);
        assert_eq!(arrival(&mut mem), arrival(&mut disk));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_keeps_synced_prefix() {
        let dir = tmp("synced");
        let (mut disk, _) = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        fill(&mut disk, 100, 10);
        let synced = disk.synced_bytes();
        let len = disk.len_bytes();
        assert_eq!(synced, len, "100 divides by 10: all synced");
        fill(&mut disk, 5, u64::MAX); // 5 unsynced appends
        assert!(disk.synced_bytes() < disk.len_bytes());
        let r = disk.crash(disk.synced_bytes()).unwrap();
        assert_eq!(r.kept_entries, 100);
        assert!(!r.torn, "cut exactly at a barrier is clean");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn key_range_scans_agree_and_stop_early() {
        let dir = tmp("range");
        let mut mem = MemStore::new();
        let (mut disk, _) = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        fill(&mut mem, 300, 11);
        fill(&mut disk, 300, 11);
        for from in [
            StoreKey::new(0, 0),
            StoreKey::new(17, 1),
            StoreKey::new(50, 2),
            StoreKey::new(99, 2),
            StoreKey::new(101, 0),
        ] {
            let range = |s: &mut dyn Store| {
                let mut out = Vec::new();
                s.scan_key_range(from, &mut |k, v| {
                    out.push((k, v.to_vec()));
                    out.len() < 20
                })
                .unwrap();
                out
            };
            let m = range(&mut mem);
            let d = range(&mut disk);
            assert_eq!(m, d, "from {from:?}");
            assert!(m.len() <= 20, "early stop honoured");
            assert!(m.windows(2).all(|w| w[0].0 < w[1].0), "key order");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chunked_records_round_trip_on_both_stores() {
        let dir = tmp("chunked");
        let mut mem = MemStore::new();
        let (mut disk, _) = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        // Sizes straddling the chunk boundary, plus a multi-chunk blob.
        let payloads: Vec<Vec<u8>> = [0usize, 1, CHUNK_BYTES - 4, CHUNK_BYTES, 3 * CHUNK_BYTES + 7]
            .iter()
            .map(|&n| (0..n).map(|i| (i % 251) as u8).collect())
            .collect();
        for store in [&mut mem as &mut dyn Store, &mut disk] {
            for (g, p) in payloads.iter().enumerate() {
                let chunks = append_chunked(store, g as u64, p).unwrap();
                assert_eq!(chunks as usize, (p.len() + 4).div_ceil(CHUNK_BYTES));
            }
            for (g, p) in payloads.iter().enumerate() {
                assert_eq!(
                    read_chunked(store, g as u64).unwrap().as_ref(),
                    Some(p),
                    "group {g}"
                );
            }
            assert_eq!(read_chunked(store, 999).unwrap(), None, "absent group");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_chunk_group_reads_as_absent() {
        let mut mem = MemStore::new();
        let blob = vec![7u8; 3 * CHUNK_BYTES];
        append_chunked(&mut mem, 5, &blob).unwrap();
        // Crash off the tail chunk: the group must read as None, not
        // as a short payload.
        let keep = mem.len_bytes() - 1;
        mem.crash(keep).unwrap();
        assert_eq!(read_chunked(&mut mem, 5).unwrap(), None);
    }

    #[test]
    fn cursor_matches_full_scan() {
        let dir = tmp("cursor");
        let (mut disk, _) = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        fill(&mut disk, 257, 50); // not a multiple of the batch size
        let mut expect = Vec::new();
        disk.scan_key_order(&mut |k, v| expect.push((k, v.to_vec())))
            .unwrap();
        for batch_size in [1, 7, 64, 1000] {
            let mut cur = KeyCursor::new(batch_size);
            let mut got = Vec::new();
            while let Some(rec) = cur.next(&mut disk).unwrap() {
                got.push(rec);
            }
            assert_eq!(got, expect, "batch size {batch_size}");
        }
        // Interleaving appends with an open cursor: records past the
        // resume point become visible, matching the range contract.
        let mut cur = KeyCursor::starting_at(StoreKey::new(80, 0), 10);
        let first = cur.next(&mut disk).unwrap().unwrap();
        assert_eq!(first.0, StoreKey::new(80, 0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_store_survives_reopen() {
        let dir = tmp("reopen");
        {
            let (mut disk, recovered) = DiskStore::open(&dir, StoreOptions::default()).unwrap();
            assert_eq!(recovered, 0);
            fill(&mut disk, 50, 1);
        }
        let (mut disk, recovered) = DiskStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(recovered, 50);
        assert_eq!(disk.entries(), 50);
        assert!(disk.get(StoreKey::new(0, 1)).unwrap().is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
