//! Byte-level encoding: the order-preserving [`StoreKey`], the
//! [`ByteReader`] cursor, and the [`Codec`] trait application updates
//! implement to become persistable.
//!
//! Everything here is deliberately boring: fixed-width big-endian
//! integers, explicit field order, no self-description. The WAL record
//! framing (length + CRC) lives in [`crate::wal`]; this module only
//! defines payload bytes. Payload compatibility is *within one run* —
//! a store directory is owned by a single build of the system, so no
//! versioning machinery is carried.

/// A 10-byte, order-preserving key: `(primary, secondary)` encoded
/// big-endian so **byte order equals logical order**. The simulator maps
/// its Lamport timestamps here (`primary` = Lamport counter,
/// `secondary` = node id tiebreak), which makes a key-order scan of the
/// B+tree exactly the paper's serial order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StoreKey {
    /// High-order component (the Lamport counter, for the simulator).
    pub primary: u64,
    /// Low-order tiebreak (the node id, for the simulator).
    pub secondary: u16,
}

/// Encoded width of a [`StoreKey`] in bytes.
pub const KEY_BYTES: usize = 10;

impl StoreKey {
    /// A key from its two components.
    pub fn new(primary: u64, secondary: u16) -> Self {
        StoreKey { primary, secondary }
    }

    /// The 10-byte big-endian encoding; `a < b` iff `a.bytes() <
    /// b.bytes()` lexicographically.
    pub fn to_bytes(self) -> [u8; KEY_BYTES] {
        let mut out = [0u8; KEY_BYTES];
        out[..8].copy_from_slice(&self.primary.to_be_bytes());
        out[8..].copy_from_slice(&self.secondary.to_be_bytes());
        out
    }

    /// Decodes the 10-byte encoding.
    pub fn from_bytes(b: &[u8; KEY_BYTES]) -> Self {
        let mut hi = [0u8; 8];
        hi.copy_from_slice(&b[..8]);
        let mut lo = [0u8; 2];
        lo.copy_from_slice(&b[8..]);
        StoreKey {
            primary: u64::from_be_bytes(hi),
            secondary: u16::from_be_bytes(lo),
        }
    }
}

/// A bounds-checked cursor over a byte slice. All reads return
/// `None` past the end instead of panicking, so decoding a corrupt or
/// truncated payload degrades to a decode failure the caller reports.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor consumed the whole slice.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.bytes(1).map(|b| b[0])
    }

    /// Reads a big-endian `u16`.
    pub fn u16(&mut self) -> Option<u16> {
        self.bytes(2).map(|b| u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.bytes(4)
            .map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.bytes(8)
            .map(|b| u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
}

/// What a type must provide to live in a [`crate::store::Store`]:
/// write itself to bytes, read itself back. Implementations must
/// round-trip (`decode(encode(x)) == Some(x)`) and fail cleanly
/// (`None`) on any input they did not produce.
///
/// The five SHARD applications implement this for their update enums in
/// `shard-apps`; the simulator's durable layer requires
/// `A::Update: Codec` only on the durable entry points, so apps without
/// an implementation keep working in-memory.
pub trait Codec: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the cursor, advancing it past the bytes
    /// consumed. `None` on malformed input.
    fn decode(r: &mut ByteReader<'_>) -> Option<Self>;

    /// Convenience: the encoding as a fresh vector.
    fn to_vec(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Convenience: decodes a value that must occupy `buf` exactly.
    fn from_slice(buf: &[u8]) -> Option<Self> {
        let mut r = ByteReader::new(buf);
        let v = Self::decode(&mut r)?;
        if r.is_done() {
            Some(v)
        } else {
            None
        }
    }
}

/// Appends one length-prefixed frame (`len: u32` big-endian, then the
/// payload) to `out` — the inverse of what [`FrameReader`] consumes.
/// Spilled checkpoint records and streaming execution rows use this
/// framing so a value larger than one store record can be chunked and
/// reassembled without ambiguity.
pub fn write_frame(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
}

/// A batched reader of length-prefixed frames (see [`write_frame`]).
///
/// Bytes arrive in arbitrary slices — store-record chunks, cursor
/// batches — via [`FrameReader::push`]; complete frames come back out
/// via [`FrameReader::next_frame`] (raw payload) or
/// [`FrameReader::drain_into`] (decoded through a [`Codec`]). A frame
/// whose tail has not arrived yet simply stays pending, so the reader
/// can sit directly on a chunked scan without buffering the whole log.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Feeds more bytes in. Consumed prefix bytes are compacted away
    /// once they dominate the buffer, so long-running readers stay at
    /// O(largest frame) memory.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The next complete frame's payload, or `None` while the frame is
    /// still partial (push more bytes and retry).
    pub fn next_frame(&mut self) -> Option<&[u8]> {
        let rest = &self.buf[self.pos..];
        if rest.len() < 4 {
            return None;
        }
        let len = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if rest.len() < 4 + len {
            return None;
        }
        let start = self.pos + 4;
        self.pos = start + len;
        Some(&self.buf[start..start + len])
    }

    /// Decodes every complete frame currently buffered, appending to
    /// `out`; returns the number decoded, or `None` on the first frame
    /// that is not a valid `T` encoding (the reader stops there).
    pub fn drain_into<T: Codec>(&mut self, out: &mut Vec<T>) -> Option<usize> {
        let mut n = 0;
        loop {
            let rest = &self.buf[self.pos..];
            if rest.len() < 4 {
                return Some(n);
            }
            let len = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
            if rest.len() < 4 + len {
                return Some(n);
            }
            let start = self.pos + 4;
            let v = T::from_slice(&self.buf[start..start + len])?;
            self.pos = start + len;
            out.push(v);
            n += 1;
        }
    }
}

macro_rules! int_codec {
    ($($t:ty => $get:ident),*) => {$(
        impl Codec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_be_bytes());
            }
            fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
                r.$get()
            }
        }
    )*};
}

int_codec!(u8 => u8, u16 => u16, u32 => u32, u64 => u64);

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for item in self {
            item.encode(out);
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        let n = r.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_order_matches_byte_order() {
        let keys = [
            StoreKey::new(0, 0),
            StoreKey::new(0, 1),
            StoreKey::new(1, 0),
            StoreKey::new(1, 65535),
            StoreKey::new(2, 3),
            StoreKey::new(u64::MAX, 7),
        ];
        for a in &keys {
            for b in &keys {
                assert_eq!(a.cmp(b), a.to_bytes().cmp(&b.to_bytes()), "{a:?} vs {b:?}");
                assert_eq!(StoreKey::from_bytes(&a.to_bytes()), *a);
            }
        }
    }

    #[test]
    fn reader_refuses_overrun() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.u16(), Some(0x0102));
        assert_eq!(r.u32(), None);
        assert_eq!(r.u8(), Some(3));
        assert!(r.is_done());
    }

    #[test]
    fn frame_reader_reassembles_split_frames() {
        let mut encoded = Vec::new();
        for v in [7u64, 0, u64::MAX, 42] {
            write_frame(&v.to_vec(), &mut encoded);
        }
        // Feed in awkward 5-byte chunks: frames straddle every push.
        let mut r = FrameReader::new();
        let mut out: Vec<u64> = Vec::new();
        for chunk in encoded.chunks(5) {
            r.push(chunk);
            assert!(r.drain_into(&mut out).is_some());
        }
        assert_eq!(out, vec![7, 0, u64::MAX, 42]);
        assert_eq!(r.pending(), 0);
        assert!(r.next_frame().is_none(), "nothing buffered");
    }

    #[test]
    fn frame_reader_holds_partial_frames() {
        let mut encoded = Vec::new();
        write_frame(b"hello", &mut encoded);
        let mut r = FrameReader::new();
        r.push(&encoded[..6]); // header + 2 payload bytes
        assert!(r.next_frame().is_none(), "incomplete frame stays pending");
        assert_eq!(r.pending(), 6);
        r.push(&encoded[6..]);
        assert_eq!(r.next_frame(), Some(&b"hello"[..]));
    }

    #[test]
    fn frame_reader_rejects_corrupt_payload() {
        let mut encoded = Vec::new();
        write_frame(&[1, 2, 3], &mut encoded); // 3 bytes: not a u32
        let mut r = FrameReader::new();
        r.push(&encoded);
        let mut out: Vec<u32> = Vec::new();
        assert_eq!(r.drain_into(&mut out), None, "malformed frame reported");
        assert!(out.is_empty());
    }

    #[test]
    fn frame_reader_compacts_consumed_prefix() {
        let mut r = FrameReader::new();
        let mut frame = Vec::new();
        write_frame(&vec![9u8; 100], &mut frame);
        for _ in 0..200 {
            r.push(&frame);
            assert!(r.next_frame().is_some());
        }
        assert_eq!(r.pending(), 0);
        assert!(
            r.buf.len() <= 4096 + 2 * frame.len(),
            "buffer stays bounded by the compaction threshold"
        );
    }

    #[test]
    fn int_codecs_round_trip() {
        for v in [0u64, 1, 0xdead_beef_0102_0304, u64::MAX] {
            assert_eq!(u64::from_slice(&v.to_vec()), Some(v));
        }
        assert_eq!(u32::from_slice(&7u32.to_vec()), Some(7));
        assert_eq!(
            u32::from_slice(&7u64.to_vec()),
            None,
            "trailing bytes rejected"
        );
    }
}
