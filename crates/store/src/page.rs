//! Fixed-size pages — the unit the buffer pool caches and the B+tree
//! lays its slotted nodes out in.

/// Page size in bytes. Fixed at the classic 4 KiB: the B+tree layout
/// code and the pool's byte accounting both assume it, and every
/// page-file offset is `id * PAGE_SIZE`.
pub const PAGE_SIZE: usize = 4096;

/// Identifies a page in the backing file (offset `id * PAGE_SIZE`).
pub type PageId = u64;

/// One page's bytes, heap-allocated so frames move cheaply.
pub struct Page {
    bytes: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// An all-zero page.
    pub fn zeroed() -> Self {
        Page {
            bytes: Box::new([0u8; PAGE_SIZE]),
        }
    }

    /// The raw bytes.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.bytes
    }

    /// The raw bytes, mutably. (Dirty tracking lives in the pool — use
    /// [`crate::pool::BufferPool::page_mut`] so the write is recorded.)
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.bytes
    }

    /// Reads a little-endian `u16` at `off`.
    pub fn u16_at(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.bytes[off], self.bytes[off + 1]])
    }

    /// Writes a little-endian `u16` at `off`.
    pub fn put_u16(&mut self, off: usize, v: u16) {
        self.bytes[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a little-endian `u64` at `off`.
    pub fn u64_at(&self, off: usize) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.bytes[off..off + 8]);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `off`.
    pub fn put_u64(&mut self, off: usize, v: u64) {
        self.bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// A byte slice `[off, off + len)`.
    pub fn slice(&self, off: usize, len: usize) -> &[u8] {
        &self.bytes[off..off + len]
    }

    /// Writes `src` at `off`.
    pub fn write(&mut self, off: usize, src: &[u8]) {
        self.bytes[off..off + src.len()].copy_from_slice(src);
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page({} bytes)", PAGE_SIZE)
    }
}
