//! The append-only write-ahead segment log.
//!
//! The WAL is the **authoritative** copy of a node's merge log, in
//! arrival order. Everything else in the engine (the B+tree index, the
//! in-memory `MergeLog` it recovers into) is derived from it.
//!
//! # On-disk format
//!
//! A log is a directory of segment files `wal-<index>.seg` (8-digit
//! zero-padded decimal index, strictly increasing). Bytes are addressed
//! by one **global offset**: the concatenation of all segments in index
//! order. A segment is a sequence of records:
//!
//! ```text
//! record   := len:u32le  crc:u32le  payload
//! payload  := key:10 bytes (StoreKey, big-endian)  value bytes
//! ```
//!
//! `len` is the payload length; `crc` is CRC-32 (IEEE) over the
//! payload. A record is valid iff its full `8 + len` bytes are present
//! and the checksum matches.
//!
//! # Torn tails
//!
//! Appends can be cut anywhere by a crash, so [`Wal::open`] scans
//! every segment in order and **truncates at the first invalid
//! record**: the file is cut back to the last valid record boundary,
//! later segments are deleted, and `store.wal_torn_truncations` is
//! incremented. Because records are only ever appended and `sync` is a
//! barrier, everything before the torn point is exactly the prefix of
//! appends that reached the disk — which is what makes recovery produce
//! a *prefix* of the node's arrival order (see `docs/storage.md`).

use crate::codec::{StoreKey, KEY_BYTES};
use crate::metrics;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Per-record framing overhead in bytes (`len` + `crc`).
pub const RECORD_HEADER: u64 = 8;

/// CRC-32 (IEEE 802.3, reflected) over `data` — the standard `crc32`
/// polynomial, computed with a lazily built 256-entry table. Zero
/// dependencies is a crate invariant, so the table lives here.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in data {
        crc = table[((crc ^ u32::from(b)) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Tuning knobs for a [`Wal`].
#[derive(Clone, Copy, Debug)]
pub struct WalOptions {
    /// Rotate to a fresh segment once the active one reaches this many
    /// bytes. Small values exercise rotation; production-ish values
    /// amortise file-table overhead.
    pub segment_bytes: u64,
}

impl Default for WalOptions {
    /// 1 MiB segments.
    fn default() -> Self {
        WalOptions {
            segment_bytes: 1 << 20,
        }
    }
}

/// What [`Wal::open`] found on disk.
#[derive(Clone, Copy, Debug, Default)]
pub struct OpenReport {
    /// Valid records recovered.
    pub entries: usize,
    /// Whether a torn tail was truncated away.
    pub torn: bool,
    /// Bytes dropped by the truncation.
    pub truncated_bytes: u64,
}

struct Segment {
    index: u64,
    /// Global offset of this segment's first byte.
    start: u64,
    /// Bytes of valid records in this segment.
    len: u64,
}

/// An open write-ahead log. See the module docs for the format.
pub struct Wal {
    dir: PathBuf,
    opts: WalOptions,
    segments: Vec<Segment>,
    active: File,
    /// Global end offset (sum of segment lengths).
    len: u64,
    /// Global offset up to which data is known durable (fsync barrier).
    synced: u64,
    entries: usize,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:08}.seg"))
}

fn list_segments(dir: &Path) -> io::Result<Vec<u64>> {
    let mut indices = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(num) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".seg"))
        {
            if let Ok(i) = num.parse::<u64>() {
                indices.push(i);
            }
        }
    }
    indices.sort_unstable();
    Ok(indices)
}

/// Scans one segment file, calling `f` for each valid record, and
/// returns `(valid_bytes, records, file_bytes)` — `valid_bytes <
/// file_bytes` means the tail is torn.
fn scan_segment(path: &Path, mut f: impl FnMut(StoreKey, &[u8])) -> io::Result<(u64, usize, u64)> {
    let file = File::open(path)?;
    let file_bytes = file.metadata()?.len();
    let mut r = BufReader::new(file);
    let mut good = 0u64;
    let mut records = 0usize;
    let mut header = [0u8; 8];
    let mut payload = Vec::new();
    loop {
        match r.read_exact(&mut header) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if len < KEY_BYTES || good + RECORD_HEADER + len as u64 > file_bytes {
            break;
        }
        payload.resize(len, 0);
        if r.read_exact(&mut payload).is_err() || crc32(&payload) != crc {
            break;
        }
        let mut key = [0u8; KEY_BYTES];
        key.copy_from_slice(&payload[..KEY_BYTES]);
        f(StoreKey::from_bytes(&key), &payload[KEY_BYTES..]);
        good += RECORD_HEADER + len as u64;
        records += 1;
    }
    Ok((good, records, file_bytes))
}

impl Wal {
    /// Opens (creating if absent) the log in `dir`, validating every
    /// record and truncating the first torn tail found. Everything the
    /// open scan accepted is treated as durable (`synced == len`).
    pub fn open(dir: &Path, opts: WalOptions) -> io::Result<(Wal, OpenReport)> {
        fs::create_dir_all(dir)?;
        let mut indices = list_segments(dir)?;
        if indices.is_empty() {
            File::create(segment_path(dir, 0))?;
            indices.push(0);
        }
        let mut report = OpenReport::default();
        let mut segments = Vec::new();
        let mut offset = 0u64;
        let mut keep = indices.len();
        for (i, &index) in indices.iter().enumerate() {
            let path = segment_path(dir, index);
            let (good, records, file_bytes) = scan_segment(&path, |_, _| {})?;
            report.entries += records;
            segments.push(Segment {
                index,
                start: offset,
                len: good,
            });
            offset += good;
            if good < file_bytes {
                // Torn tail: cut this segment back and drop the rest.
                report.torn = true;
                report.truncated_bytes += file_bytes - good;
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(good)?;
                f.sync_data()?;
                keep = i + 1;
                break;
            }
        }
        for &index in &indices[keep..] {
            let path = segment_path(dir, index);
            report.torn = true;
            report.truncated_bytes += fs::metadata(&path)?.len();
            fs::remove_file(&path)?;
        }
        if report.torn {
            metrics().wal_torn_truncations.inc();
        }
        let active_path = segment_path(dir, segments.last().expect("at least one segment").index);
        let mut active = OpenOptions::new().append(true).open(&active_path)?;
        active.seek(SeekFrom::End(0))?;
        Ok((
            Wal {
                dir: dir.to_path_buf(),
                opts,
                segments,
                active,
                len: offset,
                synced: offset,
                entries: report.entries,
            },
            report,
        ))
    }

    /// Global end offset in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Global offset up to which appends are known durable.
    pub fn synced(&self) -> u64 {
        self.synced
    }

    /// Valid records in the log.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// The log's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one record and returns the global offset *after* it.
    /// The bytes are in the OS page cache, **not durable**, until the
    /// next [`Wal::sync`].
    pub fn append(&mut self, key: StoreKey, value: &[u8]) -> io::Result<u64> {
        let tail = self.segments.last().expect("at least one segment");
        if tail.len >= self.opts.segment_bytes {
            self.rotate()?;
        }
        let len = KEY_BYTES + value.len();
        let mut payload = Vec::with_capacity(len);
        payload.extend_from_slice(&key.to_bytes());
        payload.extend_from_slice(value);
        let mut rec = Vec::with_capacity(8 + len);
        rec.extend_from_slice(&(len as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(&payload).to_le_bytes());
        rec.extend_from_slice(&payload);
        self.active.write_all(&rec)?;
        let tail = self.segments.last_mut().expect("at least one segment");
        tail.len += rec.len() as u64;
        self.len += rec.len() as u64;
        self.entries += 1;
        metrics().wal_appends.inc();
        Ok(self.len)
    }

    /// Fsync barrier: after this returns, every appended byte survives
    /// a crash. No-op (and not counted) when nothing is outstanding.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.synced < self.len {
            self.active.sync_data()?;
            self.synced = self.len;
            metrics().wal_fsyncs.inc();
        }
        Ok(())
    }

    fn rotate(&mut self) -> io::Result<()> {
        // The outgoing segment is made durable before it is closed, so
        // `synced` never points into a closed, unsynced file.
        self.active.sync_data()?;
        let closed = self.segments.last().expect("at least one segment");
        self.synced = self.synced.max(closed.start + closed.len);
        metrics().wal_fsyncs.inc();
        let index = closed.index + 1;
        let start = closed.start + closed.len;
        let path = segment_path(&self.dir, index);
        self.active = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)?;
        self.segments.push(Segment {
            index,
            start,
            len: 0,
        });
        Ok(())
    }

    /// Streams every record in append (arrival) order.
    pub fn for_each(&self, mut f: impl FnMut(StoreKey, &[u8])) -> io::Result<()> {
        for seg in &self.segments {
            scan_segment(&segment_path(&self.dir, seg.index), &mut f)?;
        }
        Ok(())
    }

    /// Simulates a crash that preserved exactly the first `keep` bytes
    /// of the global stream: consumes the log, truncates the files to
    /// `keep` (deleting later segments), and returns the directory for
    /// reopening. `keep` may fall mid-record — [`Wal::open`] will drop
    /// the torn record. Callers model honest hardware by passing
    /// `keep >= synced()`; nothing enforces it here.
    pub fn crash(self, keep: u64) -> io::Result<PathBuf> {
        let Wal {
            dir,
            segments,
            active,
            ..
        } = self;
        drop(active);
        for seg in &segments {
            let path = segment_path(&dir, seg.index);
            if seg.start >= keep {
                fs::remove_file(&path)?;
            } else {
                let within = (keep - seg.start).min(seg.len);
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(within)?;
                f.sync_data()?;
            }
        }
        Ok(dir)
    }

    /// Read-only inspection of the log in `dir` — what `shard-trace
    /// store` prints. Unlike [`Wal::open`] this never modifies files:
    /// a torn tail is *reported*, not truncated.
    pub fn inspect(dir: &Path) -> io::Result<WalInspection> {
        let mut info = WalInspection::default();
        let mut offset = 0u64;
        for index in list_segments(dir)? {
            let path = segment_path(dir, index);
            let mut first_last = None::<(StoreKey, StoreKey)>;
            let (good, records, file_bytes) = scan_segment(&path, |key, _| {
                first_last = Some(match first_last {
                    None => (key, key),
                    Some((f, _)) => (f, key),
                });
            })?;
            if let Some((f, l)) = first_last {
                info.first_key = Some(info.first_key.unwrap_or(f).min(f));
                info.last_key = Some(info.last_key.unwrap_or(l).max(l));
            }
            info.segments.push(SegmentInfo {
                index,
                records,
                valid_bytes: good,
                file_bytes,
            });
            info.entries += records;
            info.bytes += good;
            if good < file_bytes && info.torn_at.is_none() {
                info.torn_at = Some(offset + good);
            }
            offset += file_bytes;
        }
        Ok(info)
    }
}

/// One segment's inspection row.
#[derive(Clone, Copy, Debug)]
pub struct SegmentInfo {
    /// Segment file index.
    pub index: u64,
    /// Valid records found.
    pub records: usize,
    /// Bytes of valid records.
    pub valid_bytes: u64,
    /// Bytes in the file (`> valid_bytes` means a torn tail).
    pub file_bytes: u64,
}

/// What [`Wal::inspect`] reports about a log directory.
#[derive(Clone, Debug, Default)]
pub struct WalInspection {
    /// Per-segment detail, in index order.
    pub segments: Vec<SegmentInfo>,
    /// Valid records across all segments.
    pub entries: usize,
    /// Valid bytes across all segments.
    pub bytes: u64,
    /// Global offset of the first invalid byte, if any tail is torn.
    pub torn_at: Option<u64>,
    /// Smallest key present.
    pub first_key: Option<StoreKey>,
    /// Largest key present.
    pub last_key: Option<StoreKey>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("shard-store-wal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn keys(wal: &Wal) -> Vec<u64> {
        let mut out = Vec::new();
        wal.for_each(|k, _| out.push(k.primary)).unwrap();
        out
    }

    #[test]
    fn crc_known_vector() {
        // The standard check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn append_reopen_round_trip() {
        let dir = tmp("roundtrip");
        let (mut wal, r) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(r.entries, 0);
        for i in 0..100u64 {
            wal.append(StoreKey::new(i, 0), &i.to_be_bytes()).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let (wal, r) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(r.entries, 100);
        assert!(!r.torn);
        assert_eq!(keys(&wal), (0..100).collect::<Vec<_>>());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_spans_segments() {
        let dir = tmp("rotate");
        let opts = WalOptions { segment_bytes: 64 };
        let (mut wal, _) = Wal::open(&dir, opts).unwrap();
        for i in 0..50u64 {
            wal.append(StoreKey::new(i, 1), b"payload-bytes").unwrap();
        }
        wal.sync().unwrap();
        assert!(wal.segments.len() > 1, "rotation must have happened");
        drop(wal);
        let (wal, r) = Wal::open(&dir, opts).unwrap();
        assert_eq!(r.entries, 50);
        assert_eq!(keys(&wal), (0..50).collect::<Vec<_>>());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_to_record_boundary() {
        let dir = tmp("torn");
        let (mut wal, _) = Wal::open(&dir, WalOptions::default()).unwrap();
        let mut boundary = 0;
        for i in 0..10u64 {
            let after = wal.append(StoreKey::new(i, 0), &[7u8; 21]).unwrap();
            if i == 6 {
                boundary = after;
            }
        }
        wal.sync().unwrap();
        // Crash mid-way through record 7.
        let dir = wal.crash(boundary + 5).unwrap();
        let (wal, r) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert!(r.torn);
        assert_eq!(r.entries, 7);
        assert_eq!(keys(&wal), (0..7).collect::<Vec<_>>());
        assert_eq!(wal.len(), boundary);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_crc_drops_tail() {
        let dir = tmp("crc");
        let (mut wal, _) = Wal::open(&dir, WalOptions::default()).unwrap();
        let mut start_of_2 = 0;
        for i in 0..4u64 {
            let after = wal.append(StoreKey::new(i, 0), b"abc").unwrap();
            if i == 1 {
                start_of_2 = after;
            }
        }
        wal.sync().unwrap();
        drop(wal);
        // Flip a payload byte of record 2.
        let path = segment_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        let idx = start_of_2 as usize + 8 + 3;
        bytes[idx] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let (wal, r) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert!(r.torn);
        assert_eq!(r.entries, 2, "records 2 and 3 dropped");
        assert_eq!(keys(&wal), vec![0, 1]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inspect_reports_without_mutating() {
        let dir = tmp("inspect");
        let (mut wal, _) = Wal::open(&dir, WalOptions { segment_bytes: 80 }).unwrap();
        for i in 0..20u64 {
            wal.append(StoreKey::new(i, 2), b"xyzw").unwrap();
        }
        wal.sync().unwrap();
        let dir = wal.crash(u64::MAX).unwrap();
        let before = Wal::inspect(&dir).unwrap();
        assert_eq!(before.entries, 20);
        assert!(before.torn_at.is_none());
        assert_eq!(before.first_key.unwrap().primary, 0);
        assert_eq!(before.last_key.unwrap().primary, 19);
        assert!(before.segments.len() > 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
