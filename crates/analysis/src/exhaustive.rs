//! Small-scope exhaustive verification.
//!
//! For a fixed decision sequence of length `n`, the prefix-subsequence
//! condition allows `2^(n·(n−1)/2)` distinct executions (each
//! transaction independently sees any subset of its predecessors). For
//! small `n` we can enumerate **all** of them and check a theorem on
//! every one — a model-checking-style complement to the randomized
//! experiments: within the scope, the theorem is *verified*, not
//! sampled. `n ≤ 7` keeps the space under 2²¹ executions.

use shard_core::{Application, Execution, ExecutionBuilder, TxnIndex};

/// Visits every execution of `decisions` (every combination of prefix
/// subsequences), in a deterministic order.
///
/// # Panics
///
/// Panics if `decisions.len() > 7` (the space would exceed 2²¹
/// executions; use the randomized harness instead).
pub fn for_each_execution<A: Application>(
    app: &A,
    decisions: &[A::Decision],
    mut visit: impl FnMut(&Execution<A>),
) {
    let n = decisions.len();
    assert!(n <= 7, "exhaustive enumeration is for small scopes (n ≤ 7)");
    // Odometer over per-transaction prefix bitmasks: txn i has 2^i
    // subsets of {0..i}.
    let mut masks: Vec<u32> = vec![0; n];
    loop {
        let mut b = ExecutionBuilder::new(app);
        for (i, d) in decisions.iter().enumerate() {
            let prefix: Vec<TxnIndex> = (0..i).filter(|j| masks[i] & (1 << j) != 0).collect();
            b.push(d.clone(), prefix)
                .expect("valid prefix by construction");
        }
        let e = b.finish();
        visit(&e);
        // Increment the odometer.
        let mut i = 0;
        loop {
            if i == n {
                return;
            }
            masks[i] += 1;
            if masks[i] < (1u32 << i) {
                break;
            }
            masks[i] = 0;
            i += 1;
        }
    }
}

/// The number of executions [`for_each_execution`] visits for `n`
/// transactions: `2^(n(n−1)/2)`.
pub fn execution_count(n: usize) -> u64 {
    1u64 << (n * n.saturating_sub(1) / 2)
}

/// Checks `property` on every execution of `decisions`; returns
/// `(executions_checked, violations)`.
pub fn check_all_executions<A: Application>(
    app: &A,
    decisions: &[A::Decision],
    mut property: impl FnMut(&Execution<A>) -> bool,
) -> (u64, u64) {
    let mut checked = 0;
    let mut violations = 0;
    for_each_execution(app, decisions, |e| {
        checked += 1;
        if !property(e) {
            violations += 1;
        }
    });
    (checked, violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::claims::check_theorem5;
    use crate::trace;
    use shard_apps::airline::{AirlineTxn, FlyByNight, OVERBOOKING, UNDERBOOKING};
    use shard_apps::Person;
    use shard_core::conditions;
    use shard_core::costs::BoundFn;

    fn p(n: u32) -> Person {
        Person(n)
    }

    #[test]
    fn counts_match_formula() {
        let app = FlyByNight::new(1);
        let decisions = vec![AirlineTxn::Request(p(1)); 5];
        let mut seen = 0u64;
        for_each_execution(&app, &decisions, |_| seen += 1);
        assert_eq!(seen, execution_count(5));
        assert_eq!(execution_count(5), 1024);
        assert_eq!(execution_count(0), 1);
        assert_eq!(execution_count(1), 1);
    }

    #[test]
    fn all_enumerated_executions_verify() {
        let app = FlyByNight::new(1);
        let decisions = vec![
            AirlineTxn::Request(p(1)),
            AirlineTxn::Request(p(2)),
            AirlineTxn::MoveUp,
            AirlineTxn::MoveUp,
            AirlineTxn::MoveDown,
        ];
        let (checked, violations) =
            check_all_executions(&app, &decisions, |e| e.verify(&app).is_ok());
        assert_eq!(checked, 1024);
        assert_eq!(violations, 0);
    }

    /// Theorem 5, *verified* (not sampled) at small scope: over every
    /// execution of a contention-heavy workload, the per-step cost bound
    /// holds for both constraints.
    #[test]
    fn theorem5_verified_exhaustively() {
        let app = FlyByNight::new(1);
        let decisions = vec![
            AirlineTxn::Request(p(1)),
            AirlineTxn::Request(p(2)),
            AirlineTxn::MoveUp,
            AirlineTxn::MoveUp,
            AirlineTxn::MoveDown,
            AirlineTxn::Cancel(p(1)),
        ];
        let f900 = BoundFn::linear(900);
        let f300 = BoundFn::linear(300);
        let (checked, violations) = check_all_executions(&app, &decisions, |e| {
            check_theorem5(&app, e, OVERBOOKING, &f900, |_| true).holds()
                && check_theorem5(&app, e, UNDERBOOKING, &f300, |d| {
                    matches!(d, AirlineTxn::MoveUp | AirlineTxn::MoveDown)
                })
                .holds()
        });
        assert_eq!(checked, 32768);
        assert_eq!(violations, 0);
    }

    /// Theorem 22, verified at small scope: every execution of the §5.4
    /// block workload that satisfies *all three* hypotheses (transitive,
    /// movers centralized, per-person transactions centralized) has zero
    /// overbooking in every reachable state — and executions violating
    /// only the per-person hypothesis can overbook (the counterexample
    /// exists within the scope).
    #[test]
    fn theorem22_verified_exhaustively() {
        let app = FlyByNight::new(1);
        let decisions = vec![
            AirlineTxn::Request(p(1)),
            AirlineTxn::Cancel(p(1)),
            AirlineTxn::Request(p(1)),
            AirlineTxn::MoveUp,
            AirlineTxn::Request(p(2)),
            AirlineTxn::MoveUp,
        ];
        let movers = [3usize, 5];
        // Transactions generating updates involving P1: 0,1,2,3 (the
        // first MOVE-UP can select P1); involving P2: 4,5.
        let mut hypothesis_met = 0u64;
        let mut counterexamples_without_hypothesis = 0u64;
        let (checked, violations) = check_all_executions(&app, &decisions, |e| {
            let transitive = conditions::is_transitive(e);
            let movers_central = conditions::is_centralized(e, &movers);
            // Per-person centralization, computed from the updates the
            // decisions actually generated.
            let person_central = [p(1), p(2)].iter().all(|person| {
                let group: Vec<usize> = (0..e.len())
                    .filter(|&i| e.record(i).update.person() == Some(*person))
                    .collect();
                conditions::is_centralized(e, &group)
            });
            let zero_over = trace::max_cost(&app, e, OVERBOOKING) == 0;
            if transitive && movers_central && person_central {
                hypothesis_met += 1;
                zero_over // Theorem 22's conclusion must hold
            } else {
                if transitive && movers_central && !zero_over {
                    counterexamples_without_hypothesis += 1;
                }
                true // out of scope for the theorem
            }
        });
        assert_eq!(checked, 32768);
        assert_eq!(
            violations, 0,
            "Theorem 22 holds on every in-scope execution"
        );
        assert!(
            hypothesis_met >= 50,
            "the scope is non-trivial: {hypothesis_met}"
        );
        assert!(
            counterexamples_without_hypothesis > 0,
            "dropping per-person centralization admits overbooking (§5.4)"
        );
    }

    /// The §4.2 priority-preservation claim, verified over every
    /// execution: each transaction's step from its *own apparent state*
    /// never inverts priorities.
    #[test]
    fn priority_preservation_verified_exhaustively() {
        use shard_core::PriorityModel;
        let app = FlyByNight::new(1);
        let decisions = vec![
            AirlineTxn::Request(p(1)),
            AirlineTxn::Request(p(2)),
            AirlineTxn::MoveUp,
            AirlineTxn::MoveDown,
            AirlineTxn::Cancel(p(2)),
        ];
        let (checked, violations) = check_all_executions(&app, &decisions, |e| {
            (0..e.len()).all(|i| {
                let t = e.apparent_state_before(&app, i);
                let t2 = e.apparent_state_after(&app, i);
                let known_before = app.known(&t);
                known_before.iter().all(|a| {
                    known_before.iter().all(|b| {
                        if a == b || !app.precedes(&t, a, b) {
                            return true;
                        }
                        // If both survive, order must persist.
                        !(t2.is_known(*a) && t2.is_known(*b)) || app.precedes(&t2, a, b)
                    })
                })
            })
        });
        assert_eq!(checked, 1024);
        assert_eq!(violations, 0);
    }

    #[test]
    #[should_panic(expected = "small scopes")]
    fn oversized_scope_panics() {
        let app = FlyByNight::new(1);
        let decisions = vec![AirlineTxn::MoveUp; 8];
        for_each_execution(&app, &decisions, |_| {});
    }
}
