//! Small-scope exhaustive verification.
//!
//! For a fixed decision sequence of length `n`, the prefix-subsequence
//! condition allows `2^(n·(n−1)/2)` distinct executions (each
//! transaction independently sees any subset of its predecessors). For
//! small `n` we can enumerate **all** of them and check a theorem on
//! every one — a model-checking-style complement to the randomized
//! experiments: within the scope, the theorem is *verified*, not
//! sampled. `n ≤ 7` keeps the space under 2²¹ executions.

use shard_core::{Application, Execution, ExecutionBuilder, TxnIndex};
use shard_pool::PoolConfig;

/// Visits every execution of `decisions` (every combination of prefix
/// subsequences), in a deterministic order.
///
/// # Panics
///
/// Panics if `decisions.len() > 7` (the space would exceed 2²¹
/// executions; use the randomized harness instead).
pub fn for_each_execution<A: Application>(
    app: &A,
    decisions: &[A::Decision],
    visit: impl FnMut(&Execution<A>),
) {
    for_each_execution_in(app, decisions, 0..execution_count(decisions.len()), visit);
}

/// The odometer state of the execution with global index `g` in the
/// order [`for_each_execution`] visits: transaction `i`'s prefix
/// bitmask occupies the `i` bits of `g` starting at bit `i(i−1)/2`
/// (transaction 0 has no predecessors and contributes no bits). The
/// closed form is what lets an index range of the space be enumerated
/// without stepping through its predecessors.
pub fn masks_for_index(n: usize, g: u64) -> Vec<u32> {
    (0..n)
        .map(|i| ((g >> (i * i.saturating_sub(1) / 2)) as u32) & ((1u32 << i) - 1))
        .collect()
}

/// Visits the executions with global indices in `range`, in index
/// order — the contiguous sub-block of [`for_each_execution`]'s
/// sequence that parallel sweeps hand to one worker.
///
/// # Panics
///
/// Panics if `decisions.len() > 7` or `range` extends past
/// [`execution_count`].
pub fn for_each_execution_in<A: Application>(
    app: &A,
    decisions: &[A::Decision],
    range: std::ops::Range<u64>,
    mut visit: impl FnMut(&Execution<A>),
) {
    let n = decisions.len();
    assert!(n <= 7, "exhaustive enumeration is for small scopes (n ≤ 7)");
    assert!(
        range.end <= execution_count(n),
        "range extends past the execution space"
    );
    if range.is_empty() {
        return;
    }
    // Odometer over per-transaction prefix bitmasks: txn i has 2^i
    // subsets of {0..i}. Seeded from the closed form, then stepped.
    let mut masks = masks_for_index(n, range.start);
    for _ in range {
        let mut b = ExecutionBuilder::new(app);
        for (i, d) in decisions.iter().enumerate() {
            let prefix: Vec<TxnIndex> = (0..i).filter(|j| masks[i] & (1 << j) != 0).collect();
            b.push(d.clone(), prefix)
                .expect("valid prefix by construction");
        }
        let e = b.finish();
        visit(&e);
        // Increment the odometer.
        let mut i = 0;
        while i < n {
            masks[i] += 1;
            if masks[i] < (1u32 << i) {
                break;
            }
            masks[i] = 0;
            i += 1;
        }
    }
}

/// The number of executions [`for_each_execution`] visits for `n`
/// transactions: `2^(n(n−1)/2)`.
pub fn execution_count(n: usize) -> u64 {
    1u64 << (n * n.saturating_sub(1) / 2)
}

/// Checks `property` on every execution of `decisions`; returns
/// `(executions_checked, violations)`.
pub fn check_all_executions<A: Application>(
    app: &A,
    decisions: &[A::Decision],
    mut property: impl FnMut(&Execution<A>) -> bool,
) -> (u64, u64) {
    let mut checked = 0;
    let mut violations = 0;
    for_each_execution(app, decisions, |e| {
        checked += 1;
        if !property(e) {
            violations += 1;
        }
    });
    (checked, violations)
}

/// Parallel [`check_all_executions`]: splits the `2^(n(n−1)/2)` index
/// space into contiguous ranges across the pool, each worker running
/// the same odometer over its block. The decomposition depends on the
/// space size alone, so the tally equals the sequential one at every
/// thread count.
pub fn par_check_all_executions<A>(
    pool: &PoolConfig,
    app: &A,
    decisions: &[A::Decision],
    property: impl Fn(&Execution<A>) -> bool + Sync,
) -> (u64, u64)
where
    A: Application + Sync,
    A::Decision: Sync,
{
    let total = execution_count(decisions.len());
    shard_pool::par_ranges(pool, total as usize, |r| {
        let mut checked = 0u64;
        let mut violations = 0u64;
        for_each_execution_in(app, decisions, r.start as u64..r.end as u64, |e| {
            checked += 1;
            if !property(e) {
                violations += 1;
            }
        });
        (checked, violations)
    })
    .into_iter()
    .fold((0, 0), |(c, v), (pc, pv)| (c + pc, v + pv))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::claims::check_theorem5;
    use crate::trace;
    use shard_apps::airline::{AirlineTxn, FlyByNight, OVERBOOKING, UNDERBOOKING};
    use shard_apps::Person;
    use shard_core::conditions;
    use shard_core::costs::BoundFn;

    fn p(n: u32) -> Person {
        Person(n)
    }

    #[test]
    fn masks_closed_form_matches_odometer_order() {
        let app = FlyByNight::new(1);
        let decisions = vec![AirlineTxn::Request(p(1)); 5];
        let mut g = 0u64;
        for_each_execution(&app, &decisions, |e| {
            let masks = masks_for_index(decisions.len(), g);
            for (i, &m) in masks.iter().enumerate() {
                let prefix: Vec<usize> = (0..i).filter(|j| m & (1 << j) != 0).collect();
                assert_eq!(e.record(i).prefix, prefix, "g = {g}, txn {i}");
            }
            g += 1;
        });
        assert_eq!(g, execution_count(5));
    }

    #[test]
    fn range_blocks_concatenate_to_the_full_enumeration() {
        let app = FlyByNight::new(1);
        let decisions = vec![
            AirlineTxn::Request(p(1)),
            AirlineTxn::MoveUp,
            AirlineTxn::Request(p(2)),
            AirlineTxn::MoveDown,
        ];
        let mut full: Vec<Vec<Vec<usize>>> = Vec::new();
        for_each_execution(&app, &decisions, |e| {
            full.push((0..e.len()).map(|i| e.record(i).prefix.clone()).collect())
        });
        let total = execution_count(decisions.len());
        let mut blocks: Vec<Vec<Vec<usize>>> = Vec::new();
        for bounds in [vec![0, total], vec![0, 1, 7, 13, 64], vec![0, 63, 64]] {
            blocks.clear();
            for w in bounds.windows(2) {
                for_each_execution_in(&app, &decisions, w[0]..w[1], |e| {
                    blocks.push((0..e.len()).map(|i| e.record(i).prefix.clone()).collect())
                });
            }
            assert_eq!(blocks, full, "bounds {bounds:?}");
        }
    }

    #[test]
    fn parallel_check_matches_sequential() {
        use shard_core::conditions;
        let app = FlyByNight::new(1);
        let decisions = vec![
            AirlineTxn::Request(p(1)),
            AirlineTxn::Request(p(2)),
            AirlineTxn::MoveUp,
            AirlineTxn::MoveUp,
            AirlineTxn::MoveDown,
        ];
        // A property with a non-trivial violation count, so the oracle
        // is not vacuous.
        let seq = check_all_executions(&app, &decisions, conditions::is_transitive);
        assert!(seq.1 > 0, "some enumerated executions are intransitive");
        for threads in [1, 2, 4, 7] {
            let par = par_check_all_executions(
                &PoolConfig::with_threads(threads),
                &app,
                &decisions,
                conditions::is_transitive,
            );
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn counts_match_formula() {
        let app = FlyByNight::new(1);
        let decisions = vec![AirlineTxn::Request(p(1)); 5];
        let mut seen = 0u64;
        for_each_execution(&app, &decisions, |_| seen += 1);
        assert_eq!(seen, execution_count(5));
        assert_eq!(execution_count(5), 1024);
        assert_eq!(execution_count(0), 1);
        assert_eq!(execution_count(1), 1);
    }

    #[test]
    fn all_enumerated_executions_verify() {
        let app = FlyByNight::new(1);
        let decisions = vec![
            AirlineTxn::Request(p(1)),
            AirlineTxn::Request(p(2)),
            AirlineTxn::MoveUp,
            AirlineTxn::MoveUp,
            AirlineTxn::MoveDown,
        ];
        let (checked, violations) =
            check_all_executions(&app, &decisions, |e| e.verify(&app).is_ok());
        assert_eq!(checked, 1024);
        assert_eq!(violations, 0);
    }

    /// Theorem 5, *verified* (not sampled) at small scope: over every
    /// execution of a contention-heavy workload, the per-step cost bound
    /// holds for both constraints.
    #[test]
    fn theorem5_verified_exhaustively() {
        let app = FlyByNight::new(1);
        let decisions = vec![
            AirlineTxn::Request(p(1)),
            AirlineTxn::Request(p(2)),
            AirlineTxn::MoveUp,
            AirlineTxn::MoveUp,
            AirlineTxn::MoveDown,
            AirlineTxn::Cancel(p(1)),
        ];
        let f900 = BoundFn::linear(900);
        let f300 = BoundFn::linear(300);
        let (checked, violations) = check_all_executions(&app, &decisions, |e| {
            check_theorem5(&app, e, OVERBOOKING, &f900, |_| true).holds()
                && check_theorem5(&app, e, UNDERBOOKING, &f300, |d| {
                    matches!(d, AirlineTxn::MoveUp | AirlineTxn::MoveDown)
                })
                .holds()
        });
        assert_eq!(checked, 32768);
        assert_eq!(violations, 0);
    }

    /// Theorem 22, verified at small scope: every execution of the §5.4
    /// block workload that satisfies *all three* hypotheses (transitive,
    /// movers centralized, per-person transactions centralized) has zero
    /// overbooking in every reachable state — and executions violating
    /// only the per-person hypothesis can overbook (the counterexample
    /// exists within the scope).
    #[test]
    fn theorem22_verified_exhaustively() {
        let app = FlyByNight::new(1);
        let decisions = vec![
            AirlineTxn::Request(p(1)),
            AirlineTxn::Cancel(p(1)),
            AirlineTxn::Request(p(1)),
            AirlineTxn::MoveUp,
            AirlineTxn::Request(p(2)),
            AirlineTxn::MoveUp,
        ];
        let movers = [3usize, 5];
        // Transactions generating updates involving P1: 0,1,2,3 (the
        // first MOVE-UP can select P1); involving P2: 4,5.
        let mut hypothesis_met = 0u64;
        let mut counterexamples_without_hypothesis = 0u64;
        let (checked, violations) = check_all_executions(&app, &decisions, |e| {
            let transitive = conditions::is_transitive(e);
            let movers_central = conditions::is_centralized(e, &movers);
            // Per-person centralization, computed from the updates the
            // decisions actually generated.
            let person_central = [p(1), p(2)].iter().all(|person| {
                let group: Vec<usize> = (0..e.len())
                    .filter(|&i| e.record(i).update.person() == Some(*person))
                    .collect();
                conditions::is_centralized(e, &group)
            });
            let zero_over = trace::max_cost(&app, e, OVERBOOKING) == 0;
            if transitive && movers_central && person_central {
                hypothesis_met += 1;
                zero_over // Theorem 22's conclusion must hold
            } else {
                if transitive && movers_central && !zero_over {
                    counterexamples_without_hypothesis += 1;
                }
                true // out of scope for the theorem
            }
        });
        assert_eq!(checked, 32768);
        assert_eq!(
            violations, 0,
            "Theorem 22 holds on every in-scope execution"
        );
        assert!(
            hypothesis_met >= 50,
            "the scope is non-trivial: {hypothesis_met}"
        );
        assert!(
            counterexamples_without_hypothesis > 0,
            "dropping per-person centralization admits overbooking (§5.4)"
        );
    }

    /// The §4.2 priority-preservation claim, verified over every
    /// execution: each transaction's step from its *own apparent state*
    /// never inverts priorities.
    #[test]
    fn priority_preservation_verified_exhaustively() {
        use shard_core::PriorityModel;
        let app = FlyByNight::new(1);
        let decisions = vec![
            AirlineTxn::Request(p(1)),
            AirlineTxn::Request(p(2)),
            AirlineTxn::MoveUp,
            AirlineTxn::MoveDown,
            AirlineTxn::Cancel(p(2)),
        ];
        let (checked, violations) = check_all_executions(&app, &decisions, |e| {
            (0..e.len()).all(|i| {
                let t = e.apparent_state_before(&app, i);
                let t2 = e.apparent_state_after(&app, i);
                let known_before = app.known(&t);
                known_before.iter().all(|a| {
                    known_before.iter().all(|b| {
                        if a == b || !app.precedes(&t, a, b) {
                            return true;
                        }
                        // If both survive, order must persist.
                        !(t2.is_known(*a) && t2.is_known(*b)) || app.precedes(&t2, a, b)
                    })
                })
            })
        });
        assert_eq!(checked, 1024);
        assert_eq!(violations, 0);
    }

    #[test]
    #[should_panic(expected = "small scopes")]
    fn oversized_scope_panics() {
        let app = FlyByNight::new(1);
        let decisions = vec![AirlineTxn::MoveUp; 8];
        for_each_execution(&app, &decisions, |_| {});
    }
}
