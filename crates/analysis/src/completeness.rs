//! Measured k-completeness of executions.
//!
//! §3.2 remarks that a reliable a-priori `k` is hard to guarantee, but
//! that "it might be possible to obtain an estimate of this value by
//! considering known characteristics of the message system together with
//! the expected rate of transaction processing". Experiment E10 does
//! exactly that: run the simulator under a delay/partition model and
//! *measure* the distribution of `k` — which then instantiates all the
//! conditional cost bounds.

use crate::stats::Summary;
use shard_core::conditions::missed_count;
use shard_core::{Application, Execution, TxnIndex};

/// The number of missed predecessors for every transaction.
pub fn missed_counts<A: Application>(exec: &Execution<A>) -> Vec<usize> {
    (0..exec.len()).map(|i| missed_count(exec, i)).collect()
}

/// Summary of the missed-predecessor distribution.
pub fn missed_summary<A: Application>(exec: &Execution<A>) -> Summary {
    let counts: Vec<u64> = missed_counts(exec).into_iter().map(|c| c as u64).collect();
    Summary::of(&counts)
}

/// The missed counts restricted to transactions selected by `pred` —
/// the refined theorems only constrain particular kinds (e.g. only
/// MOVE-UPs matter for the overbooking bound).
pub fn missed_counts_where<A: Application>(
    exec: &Execution<A>,
    mut pred: impl FnMut(TxnIndex, &A::Decision) -> bool,
) -> Vec<usize> {
    (0..exec.len())
        .filter(|&i| pred(i, &exec.record(i).decision))
        .map(|i| missed_count(exec, i))
        .collect()
}

/// The smallest `k` such that every transaction selected by `pred` is
/// k-complete (0 if none selected).
pub fn max_missed_where<A: Application>(
    exec: &Execution<A>,
    pred: impl FnMut(TxnIndex, &A::Decision) -> bool,
) -> usize {
    missed_counts_where(exec, pred)
        .into_iter()
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shard_apps::airline::{AirlineTxn, FlyByNight};
    use shard_apps::Person;
    use shard_core::ExecutionBuilder;

    fn sample_exec() -> (FlyByNight, Execution<FlyByNight>) {
        let app = FlyByNight::new(2);
        let mut b = ExecutionBuilder::new(&app);
        b.push_complete(AirlineTxn::Request(Person(1))).unwrap(); // missed 0
        b.push(AirlineTxn::Request(Person(2)), vec![]).unwrap(); // missed 1
        b.push(AirlineTxn::MoveUp, vec![0]).unwrap(); // missed 1
        b.push(AirlineTxn::MoveUp, vec![0, 1, 2]).unwrap(); // missed 0
        let e = b.finish();
        (app, e)
    }

    #[test]
    fn missed_counts_per_txn() {
        let (_, e) = sample_exec();
        assert_eq!(missed_counts(&e), vec![0, 1, 1, 0]);
    }

    #[test]
    fn summary_reflects_distribution() {
        let (_, e) = sample_exec();
        let s = missed_summary(&e);
        assert_eq!(s.n, 4);
        assert_eq!(s.max, 1);
        assert!((s.mean - 0.5).abs() < 1e-9);
    }

    #[test]
    fn filtered_counts_select_move_ups() {
        let (_, e) = sample_exec();
        let counts = missed_counts_where(&e, |_, d| matches!(d, AirlineTxn::MoveUp));
        assert_eq!(counts, vec![1, 0]);
        assert_eq!(
            max_missed_where(&e, |_, d| matches!(d, AirlineTxn::MoveUp)),
            1
        );
        assert_eq!(
            max_missed_where(&e, |_, d| matches!(d, AirlineTxn::MoveDown)),
            0
        );
    }
}
