//! Plain-text tables for the experiment harness.
//!
//! Every experiment binary prints one or more of these; EXPERIMENTS.md
//! embeds their markdown renderings.

use std::fmt;

/// A titled table with a header row and string cells.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a row of displayable cells.
    pub fn row<T: fmt::Display>(&mut self, cells: &[T]) {
        self.push_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The title.
    pub fn title(&self) -> &str {
        &self.title
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }

    /// Renders an aligned plain-text table.
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                out.push_str(&format!("{:>width$}  ", c, width = w[i]));
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let total: usize = w.iter().sum::<usize>() + 2 * w.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-style quoting for cells
    /// containing commas or quotes), for feeding plots or spreadsheets.
    pub fn render_csv(&self) -> String {
        let quote = |c: &str| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders a GitHub-flavoured markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("**{}**\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["k", "bound", "measured"]);
        t.row(&[0, 0, 0]);
        t.row(&[16, 14400, 900]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("k"));
        assert!(s.contains("14400"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "demo");
    }

    #[test]
    fn csv_rendering_quotes_when_needed() {
        let mut t = Table::new("c", &["a", "b,with comma"]);
        t.push_row(vec!["plain".into(), "has \"quote\"".into()]);
        let csv = t.render_csv();
        assert_eq!(csv, "a,\"b,with comma\"\nplain,\"has \"\"quote\"\"\"\n");
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("m", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.render_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        let mut t = Table::new("x", &["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn display_equals_render() {
        let mut t = Table::new("d", &["c"]);
        t.row(&["v"]);
        assert_eq!(t.to_string(), t.render());
    }
}
