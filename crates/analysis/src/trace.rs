//! Cost traces over the reachable states of an execution.
//!
//! The paper's invariant bounds quantify over "any state reachable in
//! e" — the actual states `s₀ … sₙ`. These helpers evaluate the cost
//! functions along that trajectory in one streaming pass each: no
//! `Vec<State>` of all reachable states is ever materialized.

use shard_core::{Application, Cost, Execution};

/// `cost(sᵢ, constraint)` for every reachable state (`s₀` first).
pub fn cost_trace<A: Application>(app: &A, exec: &Execution<A>, constraint: usize) -> Vec<Cost> {
    exec.fold_actual_states(app, Vec::with_capacity(exec.len() + 1), |mut out, _, s| {
        out.push(app.cost(s, constraint));
        out
    })
}

/// Maximum of [`cost_trace`] — the worst violation over the whole run.
pub fn max_cost<A: Application>(app: &A, exec: &Execution<A>, constraint: usize) -> Cost {
    exec.fold_actual_states(app, 0, |worst, _, s| worst.max(app.cost(s, constraint)))
}

/// `Σᵢ cost(s, i)` traced over reachable states.
pub fn total_cost_trace<A: Application>(app: &A, exec: &Execution<A>) -> Vec<Cost> {
    exec.fold_actual_states(app, Vec::with_capacity(exec.len() + 1), |mut out, _, s| {
        out.push(app.total_cost(s));
        out
    })
}

/// Maximum total cost over reachable states.
pub fn max_total_cost<A: Application>(app: &A, exec: &Execution<A>) -> Cost {
    exec.fold_actual_states(app, 0, |worst, _, s| worst.max(app.total_cost(s)))
}

/// Costs at a selected set of reachable states (e.g. the *normal*
/// states of a grouping — indices are positions in the
/// `actual_states` vector, i.e. `0` is the initial state and `i + 1`
/// is the state after transaction `i`). Answered from the execution's
/// full-order replay checkpoints, so scattered indices cost a bounded
/// replay each instead of a full `actual_states` materialization.
///
/// # Panics
///
/// Panics if an index exceeds `exec.len()`.
pub fn costs_at<A: Application>(
    app: &A,
    exec: &Execution<A>,
    constraint: usize,
    state_indices: &[usize],
) -> Vec<Cost> {
    state_indices
        .iter()
        .map(|&i| {
            let s = if i == 0 {
                app.initial_state()
            } else {
                exec.actual_state_after(app, i - 1)
            };
            app.cost(&s, constraint)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shard_apps::airline::{AirlineTxn, FlyByNight, OVERBOOKING, UNDERBOOKING};
    use shard_apps::Person;
    use shard_core::ExecutionBuilder;

    fn overbooked_exec(app: &FlyByNight) -> Execution<FlyByNight> {
        let mut b = ExecutionBuilder::new(app);
        let r1 = b.push_complete(AirlineTxn::Request(Person(1))).unwrap();
        let r2 = b.push_complete(AirlineTxn::Request(Person(2))).unwrap();
        b.push(AirlineTxn::MoveUp, vec![r1]).unwrap();
        b.push(AirlineTxn::MoveUp, vec![r2]).unwrap();
        b.finish()
    }

    #[test]
    fn traces_follow_the_story() {
        let app = FlyByNight::new(1);
        let e = overbooked_exec(&app);
        let over = cost_trace(&app, &e, OVERBOOKING);
        // s0, after R1, after R2, after first MoveUp, after second.
        assert_eq!(over, vec![0, 0, 0, 0, 900]);
        let under = cost_trace(&app, &e, UNDERBOOKING);
        assert_eq!(under, vec![0, 300, 300, 0, 0]);
        assert_eq!(max_cost(&app, &e, OVERBOOKING), 900);
        assert_eq!(max_cost(&app, &e, UNDERBOOKING), 300);
    }

    #[test]
    fn total_cost_trace_sums() {
        let app = FlyByNight::new(1);
        let e = overbooked_exec(&app);
        let totals = total_cost_trace(&app, &e);
        assert_eq!(totals, vec![0, 300, 300, 0, 900]);
        assert_eq!(max_total_cost(&app, &e), 900);
    }

    #[test]
    fn costs_at_selected_states() {
        let app = FlyByNight::new(1);
        let e = overbooked_exec(&app);
        assert_eq!(costs_at(&app, &e, OVERBOOKING, &[0, 4]), vec![0, 900]);
    }

    #[test]
    fn empty_execution_has_zero_max() {
        let app = FlyByNight::new(1);
        let e: Execution<FlyByNight> = Execution::new();
        assert_eq!(max_cost(&app, &e, OVERBOOKING), 0);
        assert_eq!(cost_trace(&app, &e, OVERBOOKING), vec![0]);
    }
}
