//! Combining the conditional bounds with measured k-distributions —
//! the step §1.3 describes but leaves out of the paper.
//!
//! §1.3: results should take the form "With probability p, the cost
//! remains at most c", proved in two parts: (1) conditional claims
//! "if each transaction sees all but at most k …, the cost remains at
//! most c(k)" — the theorems — and (2) "probability distribution
//! information describing the probability that the conditions hold",
//! from delay characteristics and transaction rates. "It should be
//! relatively easy to combine the information in (1) and (2) to get
//! probabilistic statements of the kind we want."
//!
//! This module performs the combination: given an empirical sample of
//! per-transaction `k` values (from simulator runs under a concrete
//! delay/rate model) and a bound function `f`, it produces the
//! probabilistic cost statements.

use shard_core::costs::BoundFn;
use shard_core::Cost;

/// One row of a probabilistic cost table: with probability at least
/// `probability`, a transaction runs with `k ≤ k_bound`, so (by the
/// conditional theorem with bound `f`) the cost it can be responsible
/// for is at most `cost_bound = f(k_bound)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbabilisticBound {
    /// Empirical probability that a transaction's `k` is within
    /// `k_bound`.
    pub probability: f64,
    /// The k-quantile.
    pub k_bound: usize,
    /// `f(k_bound)` — the §1.3 cost statement's `c`.
    pub cost_bound: Cost,
}

/// Combines an empirical k-sample with a conditional bound `f`,
/// producing "with probability p, cost ≤ c" rows at the requested
/// probability levels (e.g. `[0.5, 0.9, 0.99, 1.0]`).
///
/// Returns an empty vector for an empty sample.
///
/// # Panics
///
/// Panics if a probability level is outside `[0, 1]`.
pub fn probabilistic_bounds(
    k_samples: &[usize],
    f: &BoundFn,
    levels: &[f64],
) -> Vec<ProbabilisticBound> {
    if k_samples.is_empty() {
        return Vec::new();
    }
    let mut sorted = k_samples.to_vec();
    sorted.sort_unstable();
    levels
        .iter()
        .map(|&p| {
            assert!(
                (0.0..=1.0).contains(&p),
                "probability level {p} outside [0,1]"
            );
            let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
            let k = sorted[idx];
            ProbabilisticBound {
                probability: p,
                k_bound: k,
                cost_bound: f.at(k),
            }
        })
        .collect()
}

/// The empirical probability that `k ≤ threshold` in the sample
/// (1.0 for an empty sample — the condition holds vacuously).
pub fn probability_k_at_most(k_samples: &[usize], threshold: usize) -> f64 {
    if k_samples.is_empty() {
        return 1.0;
    }
    k_samples.iter().filter(|&&k| k <= threshold).count() as f64 / k_samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_translate_to_cost_statements() {
        // 100 samples: k = 0..100 uniform-ish.
        let ks: Vec<usize> = (0..100).collect();
        let f = BoundFn::linear(900);
        let rows = probabilistic_bounds(&ks, &f, &[0.5, 0.9, 1.0]);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].k_bound, 49);
        assert_eq!(rows[0].cost_bound, 49 * 900);
        assert_eq!(rows[1].k_bound, 89);
        assert_eq!(rows[2].k_bound, 99);
        assert!((rows[0].probability - 0.5).abs() < 1e-9);
    }

    #[test]
    fn constant_sample_gives_constant_bounds() {
        let ks = vec![3usize; 50];
        let f = BoundFn::linear(300);
        let rows = probabilistic_bounds(&ks, &f, &[0.1, 0.99]);
        assert!(rows.iter().all(|r| r.k_bound == 3 && r.cost_bound == 900));
    }

    #[test]
    fn empty_sample_yields_nothing() {
        let f = BoundFn::linear(900);
        assert!(probabilistic_bounds(&[], &f, &[0.9]).is_empty());
        assert!((probability_k_at_most(&[], 5) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probability_at_most_counts_correctly() {
        let ks = [0usize, 1, 2, 3, 4, 5, 6, 7, 8, 9];
        assert!((probability_k_at_most(&ks, 4) - 0.5).abs() < 1e-9);
        assert!((probability_k_at_most(&ks, 9) - 1.0).abs() < 1e-9);
        assert!((probability_k_at_most(&ks, 100) - 1.0).abs() < 1e-9);
        assert!(probability_k_at_most(&ks, 0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn bad_level_panics() {
        let f = BoundFn::linear(900);
        let _ = probabilistic_bounds(&[1, 2], &f, &[1.5]);
    }

    /// The consistency link between the two APIs: the bound at level p
    /// is the smallest k with empirical `P(k ≤ k̂) ≥ p`.
    #[test]
    fn quantile_and_cdf_agree() {
        let ks = [0usize, 0, 1, 1, 2, 5, 5, 9, 14, 30];
        let f = BoundFn::linear(1);
        for level in [0.1, 0.3, 0.5, 0.8, 0.95, 1.0] {
            let row = probabilistic_bounds(&ks, &f, &[level])[0];
            assert!(probability_k_at_most(&ks, row.k_bound) >= level - 1e-9);
            if row.k_bound > 0 {
                assert!(probability_k_at_most(&ks, row.k_bound - 1) < level + 1e-9);
            }
        }
    }
}
