//! Mechanical checkers for the paper's conditional theorems.
//!
//! Each checker takes a concrete execution, *measures* the hypothesis
//! parameters (the relevant `k` is taken from the execution itself, so
//! the hypotheses hold by construction), and then verifies the
//! conclusion, reporting every violation. A sound theorem therefore
//! yields zero violations on every execution — which is exactly what the
//! experiment harness demonstrates over randomized simulator runs.

use crate::completeness::max_missed_where;
use shard_core::conditions::missed_count;
use shard_core::costs::BoundFn;
use shard_core::{Application, Cost, Execution, Grouping};

/// The result of checking one claim on one execution.
#[derive(Clone, Debug)]
pub struct ClaimCheck {
    /// Which claim was checked.
    pub name: String,
    /// How many instances (transactions / states) the conclusion was
    /// evaluated on.
    pub instances: usize,
    /// Human-readable description of each violation (empty for a pass).
    pub violations: Vec<String>,
}

impl ClaimCheck {
    /// Whether the claim held on every instance.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }

    /// Convenience constructor.
    pub fn new(name: impl Into<String>) -> Self {
        ClaimCheck {
            name: name.into(),
            instances: 0,
            violations: Vec::new(),
        }
    }

    /// Records one checked instance, with an optional violation message.
    pub fn record(&mut self, violation: Option<String>) {
        self.instances += 1;
        if let Some(v) = violation {
            self.violations.push(v);
        }
    }
}

impl std::fmt::Display for ClaimCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.holds() {
            write!(f, "{}: HOLDS ({} instances)", self.name, self.instances)
        } else {
            write!(
                f,
                "{}: {} VIOLATIONS / {} instances (first: {})",
                self.name,
                self.violations.len(),
                self.instances,
                self.violations[0]
            )
        }
    }
}

/// **Theorem 5.** For each transaction `T` whose kind preserves the cost
/// of `constraint` (per `is_preserving`), with `s`/`s′` the actual states
/// around `T` and `k` its measured missed count:
/// `cost(s′) ≤ cost(s)` or `cost(s′) ≤ f(k)`.
pub fn check_theorem5<A: Application>(
    app: &A,
    exec: &Execution<A>,
    constraint: usize,
    f: &BoundFn,
    mut is_preserving: impl FnMut(&A::Decision) -> bool,
) -> ClaimCheck {
    let _span = shard_obs::span!("claims.check_theorem5");
    let mut check = ClaimCheck::new(format!(
        "Theorem 5 [{} / f={}]",
        app.constraint_name(constraint),
        f.description()
    ));
    // One streaming pass: the cost of sᵢ is remembered from the previous
    // callback, so no Vec of all reachable states is materialized.
    let mut before = 0;
    exec.for_each_actual_state(app, |m, s| {
        let after = app.cost(s, constraint);
        if m > 0 {
            let i = m - 1;
            if is_preserving(&exec.record(i).decision) {
                let k = missed_count(exec, i);
                let ok = after <= before || after <= f.at(k);
                check.record((!ok).then(|| {
                    format!(
                        "txn {i}: cost {before} -> {after}, k={k}, bound {}",
                        f.at(k)
                    )
                }));
            }
        }
        before = after;
    });
    check
}

/// **Theorem 7 / Corollary 8.** When every transaction preserves the
/// cost of `constraint` (the caller asserts this of the application) and
/// the unsafe transactions are k-complete, every reachable state has
/// cost ≤ `f(k)`. The `k` is *measured*: the largest missed count over
/// transactions selected by `is_unsafe`. Returns `(k, check)`.
pub fn check_invariant_bound<A: Application>(
    app: &A,
    exec: &Execution<A>,
    constraint: usize,
    f: &BoundFn,
    mut is_unsafe: impl FnMut(&A::Decision) -> bool,
) -> (usize, ClaimCheck) {
    let _span = shard_obs::span!("claims.check_invariant_bound");
    let k = max_missed_where(exec, |_, d| is_unsafe(d));
    let bound = f.at(k);
    let mut check = ClaimCheck::new(format!(
        "Corollary 8 invariant [{} ≤ {}(k={k})={bound}]",
        app.constraint_name(constraint),
        f.description()
    ));
    exec.for_each_actual_state(app, |i, s| {
        let c = app.cost(s, constraint);
        check.record((c > bound).then(|| format!("state {i}: cost {c} > bound {bound}")));
    });
    (k, check)
}

/// **Theorem 9 / Corollary 10.** Under a grouping for `constraint`, the
/// *normal* states (after each group) have cost ≤ `f(k)` where `k` is
/// the measured missed count over the cost-preserving transactions and
/// the group-end transactions. Returns `None` when no grouping of the
/// greedy shape exists (then the theorem's hypothesis is unmet);
/// otherwise `(k, check)`.
pub fn check_grouped_bound<A: Application>(
    app: &A,
    exec: &Execution<A>,
    constraint: usize,
    f: &BoundFn,
    is_preserving: impl Fn(&A::Decision) -> bool,
) -> Option<(usize, ClaimCheck)> {
    let _span = shard_obs::span!("claims.check_grouped_bound");
    let grouping = Grouping::discover(app, exec, constraint, &is_preserving)?;
    let group_ends: Vec<usize> = grouping.groups().map(|g| g.end - 1).collect();
    let k = max_missed_where(exec, |i, d| {
        is_preserving(d) || group_ends.binary_search(&i).is_ok()
    });
    let bound = f.at(k);
    let mut check = ClaimCheck::new(format!(
        "Corollary 10 normal-state bound [{} ≤ {}(k={k})={bound}]",
        app.constraint_name(constraint),
        f.description()
    ));
    grouping.for_each_normal_state(app, exec, |after, state| {
        let c = app.cost(state, constraint);
        check.record((c > bound).then(|| format!("normal state after {after:?}: {c} > {bound}")));
    });
    Some((k, check))
}

/// **Corollary 11.** Combines the invariant overbooking-style bound with
/// the grouped bound: at normal states the *total* cost is ≤ `f(k)`,
/// using the same measured `k` as [`check_grouped_bound`] joined with the
/// unsafe-transaction `k` of the invariant constraint. The caller passes
/// the two constraint indices and the dominating bound function.
pub fn check_total_bound_at_normal_states<A: Application>(
    app: &A,
    exec: &Execution<A>,
    grouping_constraint: usize,
    f: &BoundFn,
    is_preserving: impl Fn(&A::Decision) -> bool,
    mut is_unsafe_any: impl FnMut(&A::Decision) -> bool,
) -> Option<(usize, ClaimCheck)> {
    let _span = shard_obs::span!("claims.check_total_bound_at_normal_states");
    let grouping = Grouping::discover(app, exec, grouping_constraint, &is_preserving)?;
    let group_ends: Vec<usize> = grouping.groups().map(|g| g.end - 1).collect();
    let k = max_missed_where(exec, |i, d| {
        is_preserving(d) || group_ends.binary_search(&i).is_ok() || is_unsafe_any(d)
    });
    let bound = f.at(k);
    let mut check = ClaimCheck::new(format!(
        "Corollary 11 total cost at normal states ≤ {}(k={k})={bound}",
        f.description()
    ));
    grouping.for_each_normal_state(app, exec, |after, state| {
        let c: Cost = app.total_cost(state);
        check.record(
            (c > bound).then(|| format!("normal state after {after:?}: total {c} > {bound}")),
        );
    });
    Some((k, check))
}

#[cfg(test)]
mod tests {
    use super::*;
    use shard_apps::airline::{AirlineTxn, FlyByNight, OVERBOOKING, UNDERBOOKING};
    use shard_apps::Person;
    use shard_core::ExecutionBuilder;

    /// 1-seat plane, two blind MOVE-UPs: k=1 for the second mover.
    fn blind_overbooking() -> (FlyByNight, Execution<FlyByNight>) {
        let app = FlyByNight::new(1);
        let mut b = ExecutionBuilder::new(&app);
        let r1 = b.push_complete(AirlineTxn::Request(Person(1))).unwrap();
        let r2 = b.push_complete(AirlineTxn::Request(Person(2))).unwrap();
        // Each MOVE-UP sees only "its" request (k = 1 and 2): they pick
        // different people and the 1-seat plane ends up with two.
        b.push(AirlineTxn::MoveUp, vec![r1]).unwrap();
        b.push(AirlineTxn::MoveUp, vec![r2]).unwrap();
        let e = b.finish();
        (app, e)
    }

    #[test]
    fn theorem5_holds_on_blind_overbooking() {
        let (app, e) = blind_overbooking();
        let f = BoundFn::linear(900);
        let check = check_theorem5(&app, &e, OVERBOOKING, &f, |_| true);
        assert!(check.holds(), "{check}");
        assert_eq!(check.instances, 4);
    }

    #[test]
    fn corollary8_invariant_bound_measured_k() {
        let (app, e) = blind_overbooking();
        let f = BoundFn::linear(900);
        let (k, check) = check_invariant_bound(&app, &e, OVERBOOKING, &f, |d| {
            matches!(d, AirlineTxn::MoveUp)
        });
        // The second MOVE-UP misses two predecessors (REQUEST(P1) and
        // the first MOVE-UP).
        assert_eq!(k, 2);
        assert!(check.holds(), "{check}");
    }

    #[test]
    fn corollary8_detects_a_false_bound() {
        // Sanity: with a bound function that is too small, the checker
        // must report violations (it is not vacuous).
        let (app, e) = blind_overbooking();
        let f = BoundFn::linear(1); // absurd: $1 per missed txn
        let (_, check) = check_invariant_bound(&app, &e, OVERBOOKING, &f, |d| {
            matches!(d, AirlineTxn::MoveUp)
        });
        assert!(!check.holds());
        assert!(check.to_string().contains("VIOLATIONS"));
    }

    #[test]
    fn grouped_bound_for_underbooking() {
        let app = FlyByNight::new(1);
        let mut b = ExecutionBuilder::new(&app);
        // Request | MoveUp (closes group), Request | MoveUp…
        for i in 1..=2 {
            b.push_complete(AirlineTxn::Request(Person(i))).unwrap();
            b.push_complete(AirlineTxn::MoveUp).unwrap();
        }
        let e = b.finish();
        let f = BoundFn::linear(300);
        let result = check_grouped_bound(&app, &e, UNDERBOOKING, &f, |d| {
            matches!(d, AirlineTxn::MoveUp | AirlineTxn::MoveDown)
        });
        let (k, check) = result.expect("grouping exists");
        assert_eq!(k, 0);
        assert!(check.holds(), "{check}");
    }

    #[test]
    fn grouped_bound_absent_without_compensation() {
        // Requests with no MOVE-UPs: the greedy grouping never closes.
        let app = FlyByNight::new(1);
        let mut b = ExecutionBuilder::new(&app);
        b.push_complete(AirlineTxn::Request(Person(1))).unwrap();
        let e = b.finish();
        let f = BoundFn::linear(300);
        assert!(
            check_grouped_bound(&app, &e, UNDERBOOKING, &f, |d| matches!(
                d,
                AirlineTxn::MoveUp | AirlineTxn::MoveDown
            ))
            .is_none()
        );
    }

    #[test]
    fn total_bound_at_normal_states() {
        let app = FlyByNight::new(1);
        let mut b = ExecutionBuilder::new(&app);
        for i in 1..=3 {
            b.push_complete(AirlineTxn::Request(Person(i))).unwrap();
            b.push_complete(AirlineTxn::MoveUp).unwrap();
        }
        let e = b.finish();
        let f = BoundFn::linear(900);
        let (k, check) = check_total_bound_at_normal_states(
            &app,
            &e,
            UNDERBOOKING,
            &f,
            |d| matches!(d, AirlineTxn::MoveUp | AirlineTxn::MoveDown),
            |d| matches!(d, AirlineTxn::MoveUp),
        )
        .expect("grouping exists");
        assert_eq!(k, 0);
        assert!(check.holds(), "{check}");
    }

    #[test]
    fn claim_check_display() {
        let mut c = ClaimCheck::new("demo");
        c.record(None);
        assert!(c.to_string().contains("HOLDS"));
        c.record(Some("boom".into()));
        assert!(c.to_string().contains("boom"));
        assert!(!c.holds());
        assert_eq!(c.instances, 2);
    }
}
