//! Airline-specific analysis: witness accounting for the refined bounds
//! (§5.3), fairness audits (§5.5) and the thrashing metric (§3.1).

use crate::claims::ClaimCheck;
use shard_apps::airline::witness::UpdateHistory;
use shard_apps::airline::{AirlineTxn, AirlineUpdate, FlyByNight, OVERBOOKING, UNDERBOOKING};
use shard_apps::Person;
#[allow(unused_imports)]
use shard_core::Application as _;
use shard_core::{Application, Execution, ExternalAction, PriorityModel, TxnIndex};
use std::collections::BTreeMap;

/// The update sequence preceding transaction `i`, plus the seen-index
/// set, packaged for witness queries.
fn history_before(exec: &Execution<FlyByNight>, i: TxnIndex) -> (Vec<AirlineUpdate>, Vec<bool>) {
    let updates: Vec<AirlineUpdate> = exec.records()[..i].iter().map(|r| r.update).collect();
    let mut seen = vec![false; i];
    for &p in &exec.record(i).prefix {
        seen[p] = true;
    }
    (updates, seen)
}

/// Theorem 20's hypothesis parameter for a MOVE-UP at index `i`: the
/// number of persons on the **actual** assigned list before `i` for whom
/// the prefix subsequence fails to include an assignment witness.
pub fn assignment_witness_misses(
    app: &FlyByNight,
    exec: &Execution<FlyByNight>,
    i: TxnIndex,
) -> usize {
    let (updates, seen) = history_before(exec, i);
    let h = UpdateHistory::new(&updates);
    let actual = exec.actual_state_before(app, i);
    actual
        .assigned()
        .iter()
        .filter(|p| h.assignment_witness_within(**p, |j| seen[j]).is_none())
        .count()
}

/// Theorem 20 part 2's parameter for a MOVE-DOWN at index `i`: the
/// number of persons **not** on the actual assigned list before `i` for
/// whom the prefix misses the last `cancel(P)` or last `move-down(P)`.
/// Persons never mentioned in the history are skipped (they cannot
/// confuse the mover).
pub fn negative_info_misses(app: &FlyByNight, exec: &Execution<FlyByNight>, i: TxnIndex) -> usize {
    let (updates, seen) = history_before(exec, i);
    let h = UpdateHistory::new(&updates);
    let actual = exec.actual_state_before(app, i);
    let mut people: Vec<Person> = updates.iter().filter_map(|u| u.person()).collect();
    people.sort_unstable();
    people.dedup();
    people
        .iter()
        .filter(|p| !actual.is_assigned(**p))
        .filter(|p| {
            let cancel_missed = h.last_cancel(**p).is_some_and(|c| !seen[c]);
            let down_missed = h.last_move_down(**p).is_some_and(|d| !seen[d]);
            cancel_missed || down_missed
        })
        .count()
}

/// **Theorem 20.** For every MOVE-UP (resp. MOVE-DOWN) in the execution,
/// with `m` the witness-miss count measured above: either the
/// overbooking (resp. underbooking) cost does not increase, or it is at
/// most `900·m` (resp. `300·m`).
pub fn check_theorem20(app: &FlyByNight, exec: &Execution<FlyByNight>) -> ClaimCheck {
    let mut check = ClaimCheck::new("Theorem 20 witness-refined step bounds");
    let states = exec.actual_states(app);
    for i in 0..exec.len() {
        match exec.record(i).decision {
            AirlineTxn::MoveUp => {
                let m = assignment_witness_misses(app, exec, i) as u64;
                let before = app.cost(&states[i], OVERBOOKING);
                let after = app.cost(&states[i + 1], OVERBOOKING);
                let ok = after <= before || after <= app.overbook_rate() * m;
                check.record((!ok).then(|| format!("MOVE-UP {i}: over {before}->{after}, m={m}")));
            }
            AirlineTxn::MoveDown => {
                let m = negative_info_misses(app, exec, i) as u64;
                let before = app.cost(&states[i], UNDERBOOKING);
                let after = app.cost(&states[i + 1], UNDERBOOKING);
                let ok = after <= before || after <= app.underbook_rate() * m;
                check.record(
                    (!ok).then(|| format!("MOVE-DOWN {i}: under {before}->{after}, m={m}")),
                );
            }
            _ => {}
        }
    }
    check
}

/// **Theorem 22/23 conclusion.** Centralized movers + transitivity +
/// per-person request discipline imply the overbooking cost is zero in
/// every reachable state. (The *hypotheses* are checked by the caller
/// with [`shard_core::conditions`]; this checks the conclusion.)
pub fn check_zero_overbooking(app: &FlyByNight, exec: &Execution<FlyByNight>) -> ClaimCheck {
    let mut check = ClaimCheck::new("Theorem 22/23 zero overbooking");
    for (i, s) in exec.actual_states(app).iter().enumerate() {
        let c = app.cost(s, OVERBOOKING);
        check.record((c > 0).then(|| format!("state {i}: overbooking cost {c}")));
    }
    check
}

/// The result of checking Theorem 21 on one `(execution, subsequence)`
/// pair: measured hypothesis parameters and the claim outcome.
#[derive(Clone, Debug)]
pub struct Theorem21Outcome {
    /// Part 1's parameter: persons assigned in the final actual state
    /// for whom the subsequence lacks an assignment witness.
    pub assigned_misses: usize,
    /// Part 2's parameter: the larger of (waiting persons without a
    /// waiting witness in the subsequence) and (non-assigned persons
    /// whose last cancel / last move-down the subsequence misses).
    pub waiting_misses: usize,
    /// The two parts' checks.
    pub part1: ClaimCheck,
    /// Part 2's check.
    pub part2: ClaimCheck,
    /// Suffix lengths appended for parts 1 and 2.
    pub suffix_lens: (usize, usize),
}

impl Theorem21Outcome {
    /// Whether both parts held.
    pub fn holds(&self) -> bool {
        self.part1.holds() && self.part2.holds()
    }
}

/// **Theorem 21.** Let `e` be a finite execution, `𝒰` a subsequence of
/// its indices, and `s` the final actual state.
///
/// 1. If at most `m₁` assigned persons lack an assignment witness in
///    `𝒰`, then either `cost(s, 1) ≤ 900·m₁` or extending `e` by an
///    atomic suffix of MOVE-DOWNs (each seeing `𝒰` plus the earlier
///    suffix) reaches an actual state with overbooking cost ≤ 900·m₁.
/// 2. Symmetrically for the wait list, waiting witnesses, and an atomic
///    MOVE-UP suffix with bound `300·m₂`.
///
/// The hypothesis parameters are *measured* from `(e, 𝒰)` via the
/// witness machinery of §5.3 (using the corrected exact semantics — see
/// the erratum on [`UpdateHistory::waiting_witness`]); the conclusion is
/// then executed and verified. `base` must be strictly increasing.
pub fn check_theorem21(
    app: &FlyByNight,
    exec: &Execution<FlyByNight>,
    base: &[TxnIndex],
) -> Theorem21Outcome {
    use crate::compensation::run_atomic_suffix;

    let updates: Vec<AirlineUpdate> = exec.records().iter().map(|r| r.update).collect();
    let mut seen = vec![false; exec.len()];
    for &i in base {
        seen[i] = true;
    }
    let h = UpdateHistory::new(&updates);
    let final_state = exec.final_state(app);

    // Part 1 parameter: assigned persons without a witness in 𝒰.
    let m1 = final_state
        .assigned()
        .iter()
        .filter(|p| h.assignment_witness_within(**p, |j| seen[j]).is_none())
        .count();
    // Part 2 parameters: waiting persons without a waiting witness in 𝒰
    // (evaluated on the restricted history — the exact semantics), and
    // non-assigned persons whose negative information 𝒰 misses.
    let restricted = h.restricted(|j| seen[j]);
    let rh = UpdateHistory::new(&restricted);
    let w1 = final_state
        .waiting()
        .iter()
        .filter(|p| rh.waiting_witness(**p).is_none())
        .count();
    let mut people: Vec<Person> = updates.iter().filter_map(|u| u.person()).collect();
    people.sort_unstable();
    people.dedup();
    let w2 = people
        .iter()
        .filter(|p| !final_state.is_assigned(**p))
        .filter(|p| {
            h.last_cancel(**p).is_some_and(|c| !seen[c])
                || h.last_move_down(**p).is_some_and(|d| !seen[d])
        })
        .count();
    let m2 = w1.max(w2);

    // Part 1: MOVE-DOWN suffix.
    let bound1 = app.overbook_rate() * m1 as u64;
    let mut part1 = ClaimCheck::new(format!("Theorem 21(1) overbooking ≤ 900·{m1}"));
    let mut e1 = exec.clone();
    let out1 = run_atomic_suffix(app, &mut e1, base, &AirlineTxn::MoveDown, OVERBOOKING, 500);
    let c1 = app.cost(&e1.final_state(app), OVERBOOKING);
    part1.record(
        (!(out1.converged && c1 <= bound1))
            .then(|| format!("final overbooking {c1} > bound {bound1}")),
    );

    // Part 2: MOVE-UP suffix.
    let bound2 = app.underbook_rate() * m2 as u64;
    let mut part2 = ClaimCheck::new(format!("Theorem 21(2) underbooking ≤ 300·{m2}"));
    let mut e2 = exec.clone();
    let out2 = run_atomic_suffix(app, &mut e2, base, &AirlineTxn::MoveUp, UNDERBOOKING, 500);
    let c2 = app.cost(&e2.final_state(app), UNDERBOOKING);
    part2.record(
        (!(out2.converged && c2 <= bound2))
            .then(|| format!("final underbooking {c2} > bound {bound2}")),
    );

    Theorem21Outcome {
        assigned_misses: m1,
        waiting_misses: m2,
        part1,
        part2,
        suffix_lens: (out1.appended, out2.appended),
    }
}

/// Index of the first `REQUEST(p)` transaction, if any.
pub fn first_request_of(exec: &Execution<FlyByNight>, p: Person) -> Option<TxnIndex> {
    exec.iter().find_map(|(i, r)| match r.decision {
        AirlineTxn::Request(q) if q == p => Some(i),
        _ => None,
    })
}

/// Whether `p` has exactly one REQUEST and no CANCEL in the execution —
/// the hypothesis on people in Theorems 25–27.
pub fn single_uncancelled_request(exec: &Execution<FlyByNight>, p: Person) -> bool {
    let mut requests = 0;
    for (_, r) in exec.iter() {
        match r.decision {
            AirlineTxn::Request(q) if q == p => requests += 1,
            AirlineTxn::Cancel(q) if q == p => return false,
            _ => {}
        }
    }
    requests == 1
}

/// **Theorem 25.** Let `T` be the first MOVE-UP/MOVE-DOWN with both
/// `REQUEST(p)` and `REQUEST(q)` in its prefix subsequence (the moment
/// the "agent" learns of both). If `p < q` in `T`'s apparent state, then
/// `p < q` in the actual state before `T` and in every later actual
/// state (whenever both are known). Returns `None` if no mover ever sees
/// both requests (hypothesis unmet).
pub fn check_theorem25(
    app: &FlyByNight,
    exec: &Execution<FlyByNight>,
    p: Person,
    q: Person,
) -> Option<ClaimCheck> {
    let rp = first_request_of(exec, p)?;
    let rq = first_request_of(exec, q)?;
    if !single_uncancelled_request(exec, p) || !single_uncancelled_request(exec, q) {
        return None;
    }
    let mover = (0..exec.len()).find(|&i| {
        matches!(
            exec.record(i).decision,
            AirlineTxn::MoveUp | AirlineTxn::MoveDown
        ) && exec.record(i).prefix.contains(&rp)
            && exec.record(i).prefix.contains(&rq)
    })?;
    let apparent = exec.apparent_state_before(app, mover);
    // Normalize so that `p < q` in the apparent state.
    let (p, q) = if app.precedes(&apparent, &p, &q) {
        (p, q)
    } else if app.precedes(&apparent, &q, &p) {
        (q, p)
    } else {
        return None; // not both known apparently — hypothesis unmet
    };
    let mut check = ClaimCheck::new(format!(
        "Theorem 25 priority {p} < {q} fixed from txn {mover}"
    ));
    let states = exec.actual_states(app);
    for (si, s) in states.iter().enumerate().skip(mover) {
        if s.is_known(p) && s.is_known(q) {
            let ok = app.precedes(s, &p, &q);
            check.record((!ok).then(|| format!("actual state {si}: {q} ahead of {p}")));
        }
    }
    Some(check)
}

/// **Lemma 26 / Theorem 27 conclusion.** If `REQUEST(p)` precedes
/// `REQUEST(q)` in the serial order and every mover that saw `q`'s
/// request also saw `p`'s, then `p < q` in every actual state where both
/// are known.
pub fn check_request_order_priority(
    app: &FlyByNight,
    exec: &Execution<FlyByNight>,
    p: Person,
    q: Person,
) -> Option<ClaimCheck> {
    let rp = first_request_of(exec, p)?;
    let rq = first_request_of(exec, q)?;
    if rp >= rq || !single_uncancelled_request(exec, p) || !single_uncancelled_request(exec, q) {
        return None;
    }
    // Hypothesis: movers seeing REQUEST(q) also see REQUEST(p).
    for i in 0..exec.len() {
        if matches!(
            exec.record(i).decision,
            AirlineTxn::MoveUp | AirlineTxn::MoveDown
        ) {
            let pre = &exec.record(i).prefix;
            if pre.contains(&rq) && !pre.contains(&rp) {
                return None;
            }
        }
    }
    let mut check = ClaimCheck::new(format!("Lemma 26 request-order priority {p} < {q}"));
    for (si, s) in exec.actual_states(app).iter().enumerate() {
        if s.is_known(p) && s.is_known(q) {
            let ok = app.precedes(s, &p, &q);
            check.record((!ok).then(|| format!("actual state {si}: {q} ahead of {p}")));
        }
    }
    Some(check)
}

/// All pairs `(p, q)` of single-request, never-cancelled people whose
/// requests are ordered `p` before `q` in the serial order but whose
/// final priority is inverted (`q < p`). The §5.5 anomaly counter.
pub fn final_priority_inversions(
    app: &FlyByNight,
    exec: &Execution<FlyByNight>,
) -> Vec<(Person, Person)> {
    let final_state = exec.final_state(app);
    let mut firsts: Vec<(TxnIndex, Person)> = Vec::new();
    for (i, r) in exec.iter() {
        if let AirlineTxn::Request(p) = r.decision {
            if single_uncancelled_request(exec, p) && first_request_of(exec, p) == Some(i) {
                firsts.push((i, p));
            }
        }
    }
    firsts.sort_unstable_by_key(|(i, _)| *i);
    let mut out = Vec::new();
    for (a, &(_, p)) in firsts.iter().enumerate() {
        for &(_, q) in &firsts[a + 1..] {
            if final_state.is_known(p)
                && final_state.is_known(q)
                && app.precedes(&final_state, &q, &p)
            {
                out.push((p, q));
            }
        }
    }
    out
}

/// Notification churn — the thrashing metric of §3.1's closing remark.
/// Each passenger should ideally be notified once; every additional
/// assign/rescind notification is churn. Returns
/// `Σ_subject max(0, notifications − 1)`.
pub fn notification_churn(actions: &[ExternalAction]) -> usize {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for a in actions {
        *counts.entry(a.subject.as_str()).or_insert(0) += 1;
    }
    counts.values().map(|c| c.saturating_sub(1)).sum()
}

/// Collects every external action of an execution in serial order.
pub fn all_external_actions<A: Application>(exec: &Execution<A>) -> Vec<ExternalAction> {
    exec.records()
        .iter()
        .flat_map(|r| r.external_actions.iter().cloned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shard_core::ExecutionBuilder;

    fn p(n: u32) -> Person {
        Person(n)
    }

    /// The §5.5 anomaly: REQUEST(P1) precedes REQUEST(P2), but the agent
    /// sees P2 first, moves P2 up, then (after learning of P1) the
    /// overbooked plane forces P2 down — landing P2 *ahead* of P1.
    fn anomaly_exec() -> (FlyByNight, Execution<FlyByNight>) {
        let app = FlyByNight::new(0); // zero seats: any move-up overbooks
        let mut b = ExecutionBuilder::new(&app);
        let r1 = b.push_complete(AirlineTxn::Request(p(1))).unwrap();
        let r2 = b.push_complete(AirlineTxn::Request(p(2))).unwrap();
        let _ = r1;
        // Mover sees only REQUEST(P2)… but capacity 0 means MOVE-UP
        // no-ops; use capacity 1 instead.
        let _ = r2;
        drop(b);
        let app = FlyByNight::new(1);
        let mut b = ExecutionBuilder::new(&app);
        let r1 = b.push_complete(AirlineTxn::Request(p(1))).unwrap();
        let r2 = b.push_complete(AirlineTxn::Request(p(2))).unwrap();
        // Agent sees only P2's request: assigns P2.
        let up = b.push(AirlineTxn::MoveUp, vec![r2]).unwrap();
        // Agent now also learns of P1: assigns P1 too (it saw one seat
        // free? no — it sees P2 assigned; plane full). To force the
        // §5.5 shape we overbook via a second blind MOVE-UP that sees
        // only P1's request, then a fully informed MOVE-DOWN.
        let up2 = b.push(AirlineTxn::MoveUp, vec![r1]).unwrap();
        b.push(AirlineTxn::MoveDown, vec![r1, r2, up, up2]).unwrap();
        let e = b.finish();
        (app, e)
    }

    #[test]
    fn anomaly_inverts_final_priority() {
        let (app, e) = anomaly_exec();
        e.verify(&app).unwrap();
        let f = e.final_state(&app);
        // The fully informed MOVE-DOWN demotes the *last* assigned — P1
        // (assigned second) — leaving P2 seated although P1 asked first.
        assert!(f.is_assigned(p(2)));
        assert!(f.is_waiting(p(1)));
        let inv = final_priority_inversions(&app, &e);
        assert_eq!(inv, vec![(p(1), p(2))]);
    }

    #[test]
    fn theorem25_pins_priority_after_agent_sees_both() {
        let (app, e) = anomaly_exec();
        // The MOVE-DOWN (index 4) is the first mover seeing both
        // requests; in its apparent state P2 < P1, and indeed P2 stays
        // ahead of P1 ever after.
        let check = check_theorem25(&app, &e, p(1), p(2)).expect("hypotheses met");
        assert!(check.holds(), "{check}");
        assert!(check.instances > 0);
    }

    #[test]
    fn theorem20_holds_on_anomaly() {
        let (app, e) = anomaly_exec();
        let check = check_theorem20(&app, &e);
        assert!(check.holds(), "{check}");
        assert_eq!(check.instances, 3); // two MOVE-UPs + one MOVE-DOWN
    }

    #[test]
    fn witness_miss_counts() {
        let (app, e) = anomaly_exec();
        // The second MOVE-UP (index 3) saw only REQUEST(P1): P2 is
        // actually assigned but the mover has no witness for P2.
        assert_eq!(assignment_witness_misses(&app, &e, 3), 1);
        // The first MOVE-UP (index 2) ran when nobody was assigned.
        assert_eq!(assignment_witness_misses(&app, &e, 2), 0);
        // The informed MOVE-DOWN misses nothing.
        assert_eq!(negative_info_misses(&app, &e, 4), 0);
    }

    #[test]
    fn zero_overbooking_checker_detects_violations() {
        let (app, e) = anomaly_exec();
        // This execution *does* overbook transiently, so the Theorem 22
        // conclusion checker must flag it (its hypotheses don't hold).
        let check = check_zero_overbooking(&app, &e);
        assert!(!check.holds());
    }

    #[test]
    fn request_order_priority_on_disciplined_execution() {
        let app = FlyByNight::new(1);
        let mut b = ExecutionBuilder::new(&app);
        b.push_complete(AirlineTxn::Request(p(1))).unwrap();
        b.push_complete(AirlineTxn::Request(p(2))).unwrap();
        b.push_complete(AirlineTxn::MoveUp).unwrap();
        b.push_complete(AirlineTxn::MoveUp).unwrap();
        let e = b.finish();
        let check = check_request_order_priority(&app, &e, p(1), p(2)).expect("hypotheses met");
        assert!(check.holds(), "{check}");
        // The anomaly execution violates the hypothesis (a mover saw Q's
        // request without P's), so the check is N/A there.
        let (app2, e2) = anomaly_exec();
        assert!(check_request_order_priority(&app2, &e2, p(1), p(2)).is_none());
    }

    #[test]
    fn churn_counts_repeat_notifications() {
        let (_, e) = anomaly_exec();
        let actions = all_external_actions(&e);
        // P2 notified once (assign); P1 notified twice (assign, rescind).
        assert_eq!(actions.len(), 3);
        assert_eq!(notification_churn(&actions), 1);
        assert_eq!(notification_churn(&[]), 0);
    }

    #[test]
    fn theorem21_with_complete_base_repairs_fully() {
        let (app, e) = anomaly_exec();
        let base: Vec<usize> = (0..e.len()).collect();
        let out = check_theorem21(&app, &e, &base);
        assert_eq!(out.assigned_misses, 0);
        assert!(out.holds(), "{:?} {:?}", out.part1, out.part2);
    }

    #[test]
    fn theorem21_with_missing_information() {
        // Overbook a 1-seat plane with three blind MOVE-UPs, then hand
        // the repair agent a base missing the last request+move-up pair.
        let app = FlyByNight::new(1);
        let mut b = ExecutionBuilder::new(&app);
        for i in 1..=3u32 {
            let r = b.push_complete(AirlineTxn::Request(p(i))).unwrap();
            b.push(AirlineTxn::MoveUp, vec![r]).unwrap();
        }
        let e = b.finish();
        let base: Vec<usize> = (0..e.len() - 2).collect();
        let out = check_theorem21(&app, &e, &base);
        // P3 is assigned but the base has no witness for them.
        assert_eq!(out.assigned_misses, 1);
        assert!(out.part1.holds(), "{}", out.part1);
        assert!(out.part2.holds(), "{}", out.part2);
        assert!(out.suffix_lens.0 > 0, "repair actually ran");
    }

    #[test]
    fn theorem21_counts_waiting_misses() {
        let app = FlyByNight::new(0); // nobody can board: requests wait
        let mut b = ExecutionBuilder::new(&app);
        for i in 1..=3u32 {
            b.push_complete(AirlineTxn::Request(p(i))).unwrap();
        }
        let e = b.finish();
        // Base missing the last two requests: two waiting misses.
        let out = check_theorem21(&app, &e, &[0]);
        assert_eq!(out.waiting_misses, 2);
        assert!(out.holds());
    }

    #[test]
    fn single_request_hypothesis_helpers() {
        let app = FlyByNight::new(1);
        let mut b = ExecutionBuilder::new(&app);
        b.push_complete(AirlineTxn::Request(p(1))).unwrap();
        b.push_complete(AirlineTxn::Request(p(1))).unwrap(); // duplicate
        b.push_complete(AirlineTxn::Request(p(2))).unwrap();
        b.push_complete(AirlineTxn::Cancel(p(2))).unwrap();
        let e = b.finish();
        assert!(!single_uncancelled_request(&e, p(1)), "two requests");
        assert!(!single_uncancelled_request(&e, p(2)), "cancelled");
        assert_eq!(first_request_of(&e, p(1)), Some(0));
        assert_eq!(first_request_of(&e, p(9)), None);
    }
}
