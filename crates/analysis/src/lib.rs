//! # shard-analysis — measuring executions against the paper's claims
//!
//! The theorems of Lynch/Blaustein/Siegel 1986 are conditional: *if* the
//! system ran the transactions with certain prefix properties, *then*
//! costs and priorities obey certain bounds. This crate measures both
//! sides on concrete executions (hand-built or emitted by `shard-sim`):
//!
//! * [`stats`] — summary statistics used by every experiment table;
//! * [`table`] — plain-text / markdown tables for the harness output;
//! * [`trace`] — cost traces over the reachable (actual) states;
//! * [`completeness`] — the measured `k` of each transaction (how many
//!   predecessors it missed), closing the probabilistic loop §1.3 leaves
//!   open;
//! * [`compensation`] — atomic compensating suffixes (Corollary 2 /
//!   Lemma 12 machinery);
//! * [`claims`] — the theorem checkers: each returns a [`ClaimCheck`]
//!   with instance and violation counts;
//! * [`airline`] — airline-specific accounting: witness misses for the
//!   refined bounds (Thm 20/21), priority inversions (§5.5) and the
//!   notification-churn ("thrashing") metric (§3.1);
//! * [`exhaustive`] — small-scope model checking: enumerate *every*
//!   execution of a short decision sequence and verify a theorem on all
//!   of them;
//! * [`probabilistic`] — the §1.3 combination: conditional bounds ×
//!   measured k-distributions = "with probability p, cost ≤ c".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod airline;
pub mod claims;
pub mod compensation;
pub mod completeness;
pub mod exhaustive;
pub mod probabilistic;
pub mod stats;
pub mod table;
pub mod trace;

pub use claims::ClaimCheck;
pub use stats::Summary;
pub use table::Table;
