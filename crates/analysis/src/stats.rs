//! Summary statistics for experiment tables.

/// Five-number-plus summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: u64,
    /// Median (lower interpolation).
    pub p50: u64,
    /// 95th percentile (lower interpolation).
    pub p95: u64,
    /// 99th percentile (lower interpolation).
    pub p99: u64,
    /// Maximum.
    pub max: u64,
}

impl Summary {
    /// Summarizes a sample. Returns the zero summary for empty input.
    pub fn of(values: &[u64]) -> Summary {
        if values.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                min: 0,
                p50: 0,
                p95: 0,
                p99: 0,
                max: 0,
            };
        }
        let mut v = values.to_vec();
        v.sort_unstable();
        let pct = |p: f64| -> u64 {
            let idx = ((v.len() as f64 - 1.0) * p).floor() as usize;
            v[idx]
        };
        Summary {
            n: v.len(),
            mean: v.iter().sum::<u64>() as f64 / v.len() as f64,
            min: v[0],
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            max: *v.last().expect("non-empty"),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.1} min={} p50={} p95={} p99={} max={}",
            self.n, self.mean, self.min, self.p50, self.p95, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[42]);
        assert_eq!(s.n, 1);
        assert_eq!(s.min, 42);
        assert_eq!(s.p50, 42);
        assert_eq!(s.max, 42);
        assert!((s.mean - 42.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_on_known_data() {
        let values: Vec<u64> = (1..=100).collect();
        let s = Summary::of(&values);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.p99, 99);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let s = Summary::of(&[5, 1, 9, 3]);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 9);
    }

    #[test]
    fn display_is_compact() {
        let s = Summary::of(&[1, 2, 3]);
        let text = s.to_string();
        assert!(text.contains("n=3"));
        assert!(text.contains("max=3"));
    }
}
