//! Atomic compensating suffixes (Corollary 2, Lemma 12, Corollary 13).
//!
//! Corollary 2: if `T` compensates for constraint `i`, any finite
//! execution can be extended by an *atomic* suffix of `T`s — each seeing
//! the same base subsequence plus the earlier suffix members — whose last
//! apparent state has cost 0. Lemma 12 adds: if the base subsequence
//! misses at most `k` of the execution's updates, the *actual* state
//! after the suffix has cost at most `f(k)`.

use shard_core::{Application, Execution, TxnIndex, TxnRecord};

/// The result of running a compensating suffix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuffixOutcome {
    /// How many compensating transactions were appended.
    pub appended: usize,
    /// Whether the apparent cost reached 0 within the step budget.
    pub converged: bool,
}

/// Extends `exec` with an atomic suffix of `decision` transactions for
/// `constraint`: the first sees exactly `base` (a strictly increasing
/// subsequence of the existing indices), each later one additionally
/// sees the previously appended suffix transactions. Stops when the
/// apparent state after the last appended transaction has cost 0 for
/// `constraint`, or after `max_steps` appends.
///
/// Returns what happened; `exec` is left extended either way.
///
/// # Panics
///
/// Panics if `base` is not strictly increasing within range.
pub fn run_atomic_suffix<A: Application>(
    app: &A,
    exec: &mut Execution<A>,
    base: &[TxnIndex],
    decision: &A::Decision,
    constraint: usize,
    max_steps: usize,
) -> SuffixOutcome {
    assert!(
        base.windows(2).all(|w| w[0] < w[1]) && base.iter().all(|&i| i < exec.len()),
        "base must be a strictly increasing subsequence of existing indices"
    );
    // Track the apparent state incrementally: base state, then each
    // appended update applied in turn (atomicity means nothing else
    // intervenes).
    let mut apparent = exec.subsequence_state(app, base);
    let mut prefix: Vec<TxnIndex> = base.to_vec();
    let mut appended = 0;
    while appended < max_steps {
        if app.cost(&apparent, constraint) == 0 {
            return SuffixOutcome {
                appended,
                converged: true,
            };
        }
        let outcome = app.decide(decision, &apparent);
        apparent = app.apply(&apparent, &outcome.update);
        let idx = exec.push_record(TxnRecord {
            decision: decision.clone(),
            prefix: prefix.clone(),
            update: outcome.update,
            external_actions: outcome.external_actions,
        });
        prefix.push(idx);
        appended += 1;
    }
    SuffixOutcome {
        appended,
        converged: app.cost(&apparent, constraint) == 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shard_apps::airline::{AirlineTxn, FlyByNight, OVERBOOKING, UNDERBOOKING};
    use shard_apps::Person;
    use shard_core::{conditions, ExecutionBuilder};

    /// Build an overbooked execution on a 1-seat plane: three passengers
    /// all moved up by mutually blind MOVE-UPs.
    fn overbooked() -> (FlyByNight, Execution<FlyByNight>) {
        let app = FlyByNight::new(1);
        let mut b = ExecutionBuilder::new(&app);
        let mut ups = Vec::new();
        for i in 1..=3 {
            let r = b.push_complete(AirlineTxn::Request(Person(i))).unwrap();
            ups.push(b.push(AirlineTxn::MoveUp, vec![r]).unwrap());
        }
        let e = b.finish();
        (app, e)
    }

    #[test]
    fn move_down_suffix_repairs_overbooking() {
        let (app, mut e) = overbooked();
        assert_eq!(app.cost(&e.final_state(&app), OVERBOOKING), 1800);
        let base: Vec<usize> = (0..e.len()).collect(); // complete info
        let out = run_atomic_suffix(&app, &mut e, &base, &AirlineTxn::MoveDown, OVERBOOKING, 10);
        assert!(out.converged);
        assert_eq!(out.appended, 2, "two bumps repair a 2-over plane");
        // With a complete base, apparent = actual: the real cost is 0.
        assert_eq!(app.cost(&e.final_state(&app), OVERBOOKING), 0);
        e.verify(&app).unwrap();
        // The suffix is atomic in the §3.1 sense.
        assert!(conditions::is_atomic(&e, 6..8));
    }

    #[test]
    fn lemma_12_bound_with_missing_information() {
        let (app, mut e) = overbooked();
        // The suffix agent misses the last MOVE-UP (k = 1): it believes
        // only 2 are assigned, so it moves down once and believes cost 0;
        // the actual cost is ≤ 900·k = 900.
        let base: Vec<usize> = (0..e.len() - 1).collect();
        let out = run_atomic_suffix(&app, &mut e, &base, &AirlineTxn::MoveDown, OVERBOOKING, 10);
        assert!(out.converged);
        let actual = app.cost(&e.final_state(&app), OVERBOOKING);
        assert!(actual <= 900, "Lemma 12: actual {actual} ≤ f(1) = 900");
        assert!(actual > 0, "missing info leaves residual cost here");
        e.verify(&app).unwrap();
    }

    #[test]
    fn already_clean_state_appends_nothing() {
        let app = FlyByNight::new(2);
        let mut b = ExecutionBuilder::new(&app);
        b.push_complete(AirlineTxn::Request(Person(1))).unwrap();
        let mut e = b.finish();
        let out = run_atomic_suffix(&app, &mut e, &[0], &AirlineTxn::MoveDown, OVERBOOKING, 5);
        assert_eq!(
            out,
            SuffixOutcome {
                appended: 0,
                converged: true
            }
        );
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn step_budget_limits_work() {
        let (app, mut e) = overbooked();
        let base: Vec<usize> = (0..e.len()).collect();
        let out = run_atomic_suffix(&app, &mut e, &base, &AirlineTxn::MoveDown, OVERBOOKING, 1);
        assert_eq!(out.appended, 1);
        assert!(!out.converged, "one bump is not enough for 2-over");
    }

    #[test]
    fn move_up_suffix_repairs_underbooking() {
        let app = FlyByNight::new(2);
        let mut b = ExecutionBuilder::new(&app);
        for i in 1..=2 {
            b.push_complete(AirlineTxn::Request(Person(i))).unwrap();
        }
        let mut e = b.finish();
        assert_eq!(app.cost(&e.final_state(&app), UNDERBOOKING), 600);
        let base: Vec<usize> = (0..e.len()).collect();
        let out = run_atomic_suffix(&app, &mut e, &base, &AirlineTxn::MoveUp, UNDERBOOKING, 10);
        assert!(out.converged);
        assert_eq!(out.appended, 2);
        assert_eq!(app.cost(&e.final_state(&app), UNDERBOOKING), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_base_panics() {
        let (app, mut e) = overbooked();
        let _ = run_atomic_suffix(&app, &mut e, &[2, 1], &AirlineTxn::MoveDown, OVERBOOKING, 5);
    }
}
