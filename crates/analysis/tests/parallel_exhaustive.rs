//! Parallel-vs-sequential oracles for the exhaustive sweeps.
//!
//! The in-module unit tests cover small spaces; here the parallel
//! entry points are held against their sequential references at the
//! larger sizes the experiments actually sweep — `2^15` executions for
//! the §3 checkers, the full `2^n` subsequence lattice for the §4 cost
//! bounds — at several pool sizes including ones above the host's core
//! count. Any scheduling sensitivity in the range decomposition or the
//! first-missing-index partition shows up here as a tally mismatch.

use shard_analysis::exhaustive::{check_all_executions, execution_count, par_check_all_executions};
use shard_apps::airline::{AirlineTxn, AirlineUpdate, FlyByNight, OVERBOOKING};
use shard_apps::Person;
use shard_core::conditions;
use shard_core::costs::{count_bound_violations, par_count_bound_violations, BoundFn};
use shard_pool::PoolConfig;

fn p(n: u32) -> Person {
    Person(n)
}

#[test]
fn transitivity_sweep_matches_sequential_at_n6() {
    let app = FlyByNight::new(2);
    let decisions = vec![
        AirlineTxn::Request(p(1)),
        AirlineTxn::Request(p(2)),
        AirlineTxn::Request(p(3)),
        AirlineTxn::MoveUp,
        AirlineTxn::Cancel(p(1)),
        AirlineTxn::MoveDown,
    ];
    let seq = check_all_executions(&app, &decisions, conditions::is_transitive);
    assert_eq!(seq.0, execution_count(6), "full space visited");
    assert!(seq.1 > 0, "the space contains intransitive executions");
    assert!(seq.1 < seq.0, "the space contains transitive executions");
    for threads in [1, 2, 4, 7] {
        let par = par_check_all_executions(
            &PoolConfig::with_threads(threads),
            &app,
            &decisions,
            conditions::is_transitive,
        );
        assert_eq!(par, seq, "threads = {threads}");
    }
}

#[test]
fn k_completeness_sweep_matches_sequential() {
    let app = FlyByNight::new(1);
    let decisions = vec![AirlineTxn::Request(p(1)); 6];
    for k in [0, 2, 4] {
        let seq = check_all_executions(&app, &decisions, |e| conditions::max_missed(e) <= k);
        for threads in [1, 4] {
            let par = par_check_all_executions(
                &PoolConfig::with_threads(threads),
                &app,
                &decisions,
                |e| conditions::max_missed(e) <= k,
            );
            assert_eq!(par, seq, "k = {k}, threads = {threads}");
        }
    }
}

#[test]
fn bound_violation_sweep_matches_sequential() {
    // One seat and two blind move-ups: the full final state is
    // overbooked, subsequences missing a move-up are cheaper, so small
    // slopes leave genuine violations for the sweep to count.
    let app = FlyByNight::new(1);
    let seq_updates = vec![
        AirlineUpdate::Request(p(1)),
        AirlineUpdate::Request(p(2)),
        AirlineUpdate::MoveUp(p(2)),
        AirlineUpdate::Request(p(3)),
        AirlineUpdate::MoveUp(p(3)),
        AirlineUpdate::Cancel(p(1)),
        AirlineUpdate::Request(p(4)),
    ];
    let n = seq_updates.len();
    let mut nonzero_seen = false;
    for slope in [0, 200, 2000] {
        let f = BoundFn::linear(slope);
        for max_missing in [0, 1, 3, n] {
            let seq = count_bound_violations(&app, &f, OVERBOOKING, &seq_updates, max_missing);
            nonzero_seen |= seq.violations > 0;
            for threads in [1, 2, 4, 7] {
                let par = par_count_bound_violations(
                    &PoolConfig::with_threads(threads),
                    &app,
                    &f,
                    OVERBOOKING,
                    &seq_updates,
                    max_missing,
                );
                assert_eq!(
                    par, seq,
                    "slope = {slope}, max_missing = {max_missing}, threads = {threads}"
                );
            }
        }
    }
    assert!(nonzero_seen, "at least one configuration must violate");
}
