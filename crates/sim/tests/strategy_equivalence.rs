//! Cross-strategy equivalence: with gossip cranked to its fastest
//! setting (`interval: 1`, full fanout) and partial replication
//! degenerated to full placement, all three propagation strategies are
//! *the same protocol* — every update reaches every peer one sampled
//! delay after it becomes shippable. Under a fixed delay model (which
//! consumes no RNG), invocation times ≥ 1 (so a gossip tick coincides
//! with every execution instant) and partitions that only ever isolate
//! node 0 (so relays cannot beat direct delivery), the kernel must
//! produce identical serial orders, identical decision-time knowledge —
//! hence identical timed executions — and identical final per-node
//! states, whichever strategy drives it. Exercised on the airline,
//! banking and inventory applications; banking's `Audit` also covers
//! the empty-write-set path (pure serial-order information goes to
//! every node under partial placement too).

use proptest::prelude::*;
use shard_apps::airline::{AirlineTxn, FlyByNight};
use shard_apps::banking::{AccountId, Bank, BankTxn};
use shard_apps::inventory::{InvTxn, ItemId, Order, OrderId, Warehouse};
use shard_apps::Person;
use shard_core::{Application, ObjectModel};
use shard_sim::partition::{PartitionSchedule, PartitionWindow};
use shard_sim::{
    ClusterConfig, DelayModel, EagerBroadcast, Gossip, Invocation, NodeId, PartialPlacement,
    RunReport, Runner, Timestamp,
};

/// Per-transaction fingerprint: everything the timed execution is built
/// from (serial position, real time, origin, decision-time knowledge)
/// plus the chosen update. Two reports with equal fingerprints have
/// equal `timed_execution()`s by construction.
type Fingerprint<A> = (
    Timestamp,
    u64,
    NodeId,
    <A as Application>::Update,
    shard_sim::KnownSet,
);

fn fingerprints<A: Application>(report: &RunReport<A>) -> Vec<Fingerprint<A>> {
    report
        .transactions
        .iter()
        .map(|t| (t.ts, t.time, t.node, t.update.clone(), t.known.clone()))
        .collect()
}

/// Non-overlapping partition windows, every one isolating node 0 —
/// the restriction under which gossip relays cannot outrun eager
/// broadcast's direct (partition-waiting) sends.
fn isolate_node0(specs: &[(u64, u64)]) -> PartitionSchedule {
    let mut windows = Vec::new();
    let mut t = 0;
    for &(gap, len) in specs {
        let start = t + gap;
        windows.push(PartitionWindow::isolate(
            start,
            start + len,
            vec![NodeId(0)],
        ));
        t = start + len + 1;
    }
    PartitionSchedule::new(windows)
}

/// Runs the same workload through all three strategies at their
/// equivalence settings and checks the reports agree.
fn assert_strategies_agree<A>(app: &A, cfg: &ClusterConfig, invs: &[Invocation<A::Decision>])
where
    A: Application + ObjectModel,
{
    let eager =
        Runner::new(app, cfg.clone(), EagerBroadcast { piggyback: false }).run(invs.to_vec());
    let gossip = Runner::new(
        app,
        cfg.clone(),
        Gossip {
            interval: 1,
            fanout: cfg.nodes,
        },
    )
    .run(invs.to_vec());
    let partial = Runner::new(
        app,
        cfg.clone(),
        PartialPlacement::full(cfg.nodes, &app.objects()),
    )
    .run(invs.to_vec());

    assert_eq!(&eager.final_states, &gossip.final_states);
    assert_eq!(&eager.final_states, &partial.final_states);
    let reference = fingerprints(&eager);
    assert_eq!(&reference, &fingerprints(&gossip));
    assert_eq!(&reference, &fingerprints(&partial));
    // And the shared execution is a valid one.
    let te = eager.timed_execution();
    te.execution
        .verify(app)
        .expect("the strategies' shared execution must satisfy §3.1");
}

/// Raw workloads: `(txn, time, node)` triples with times ≥ 1 (so every
/// execution instant coincides with a gossip tick); node indices are
/// folded mod the generated cluster size by [`build`].
fn workload<D: std::fmt::Debug>(
    txn: impl Strategy<Value = D>,
) -> impl Strategy<Value = Vec<(D, u64, u16)>> {
    proptest::collection::vec((txn, 1u64..250, 0u16..8), 0..40)
}

/// `(gap, len)` specs for the node-0 partition windows.
fn windows() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..120, 1u64..90), 0..3)
}

fn build<D>(raw: Vec<(D, u64, u16)>, nodes: u16) -> Vec<Invocation<D>> {
    let mut invs: Vec<_> = raw
        .into_iter()
        .map(|(d, t, n)| Invocation::new(t, NodeId(n % nodes), d))
        .collect();
    invs.sort_by_key(|i| i.time);
    invs
}

fn config(nodes: u16, seed: u64, delay: u64, windows: &[(u64, u64)]) -> ClusterConfig {
    ClusterConfig {
        nodes,
        seed,
        delay: DelayModel::Fixed(delay),
        partitions: isolate_node0(windows),
        ..Default::default()
    }
}

fn airline_txn() -> impl Strategy<Value = AirlineTxn> {
    prop_oneof![
        (1u32..10).prop_map(|p| AirlineTxn::Request(Person(p))),
        (1u32..10).prop_map(|p| AirlineTxn::Cancel(Person(p))),
        Just(AirlineTxn::MoveUp),
        Just(AirlineTxn::MoveDown),
    ]
}

fn bank_txn() -> impl Strategy<Value = BankTxn> {
    prop_oneof![
        (1u32..=3, 1u32..40).prop_map(|(a, x)| BankTxn::Deposit(AccountId(a), x)),
        (1u32..=3, 1u32..40).prop_map(|(a, x)| BankTxn::Withdraw(AccountId(a), x)),
        (1u32..=3, 1u32..=3, 1u32..40).prop_map(|(a, b, x)| BankTxn::Transfer(
            AccountId(a),
            AccountId(b),
            x
        )),
        (1u32..=3).prop_map(|a| BankTxn::Reconcile(AccountId(a))),
        Just(BankTxn::Audit),
    ]
}

fn inventory_txn() -> impl Strategy<Value = InvTxn> {
    prop_oneof![
        (0u32..3, 0u32..12, 1u64..8).prop_map(|(i, id, qty)| InvTxn::PlaceOrder {
            item: ItemId(i),
            order: Order {
                id: OrderId(id),
                qty,
            },
        }),
        (0u32..3, 0u32..12).prop_map(|(i, id)| InvTxn::CancelOrder {
            item: ItemId(i),
            id: OrderId(id),
        }),
        (0u32..3).prop_map(|i| InvTxn::Promote { item: ItemId(i) }),
        (0u32..3).prop_map(|i| InvTxn::Unship { item: ItemId(i) }),
        (0u32..3, 1u64..10).prop_map(|(i, qty)| InvTxn::Restock {
            item: ItemId(i),
            qty
        }),
        (0u32..3, 1u64..10).prop_map(|(i, qty)| InvTxn::Shrink {
            item: ItemId(i),
            qty
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Airline: fastest gossip ≡ full partial ≡ eager broadcast.
    #[test]
    fn airline_strategies_agree(
        raw in workload(airline_txn()),
        nodes in 2u16..5,
        seed in 0u64..1000,
        delay in 1u64..25,
        specs in windows(),
    ) {
        let app = FlyByNight::new(4);
        let invs = build(raw, nodes);
        assert_strategies_agree(&app, &config(nodes, seed, delay, &specs), &invs);
    }

    /// Banking — including read-only `Audit`s, whose empty write sets
    /// must still reach every node as serial-order information.
    #[test]
    fn banking_strategies_agree(
        raw in workload(bank_txn()),
        nodes in 2u16..5,
        seed in 0u64..1000,
        delay in 1u64..25,
        specs in windows(),
    ) {
        let app = Bank::new(3, 50);
        let invs = build(raw, nodes);
        assert_strategies_agree(&app, &config(nodes, seed, delay, &specs), &invs);
    }

    /// Inventory control with per-item objects under full placement.
    #[test]
    fn inventory_strategies_agree(
        mut raw in workload(inventory_txn()),
        nodes in 2u16..5,
        seed in 0u64..1000,
        delay in 1u64..25,
        specs in windows(),
    ) {
        let app = Warehouse::new(3, 40, 2, 1);
        // Order ids are globally unique by client discipline (the
        // warehouse's well-formedness condition), so renumber.
        for (k, (txn, _, _)) in raw.iter_mut().enumerate() {
            if let InvTxn::PlaceOrder { order, .. } = txn {
                order.id = OrderId(k as u32 + 100);
            }
        }
        let invs = build(raw, nodes);
        assert_strategies_agree(&app, &config(nodes, seed, delay, &specs), &invs);
    }
}
