//! Crash-recovery properties of the durable mirror layer
//! ([`shard_sim::durable`]): a kill at an arbitrary WAL offset followed
//! by recovery yields a **prefix** of the pre-crash arrival order (and
//! hence a prefix subsequence of the serial order, §3/Cor 8), the
//! recovered state equals replaying exactly that prefix, and whole
//! kernel runs under [`CrashRecoverInjector`] still satisfy the §3
//! checkers and converge to the canonical serial replay.
//!
//! Plus the out-of-core tier's kill points: a merge log whose cold
//! checkpoint anchors spill through a [`Store`](shard_store::Store)
//! must produce byte-identical merge outcomes and states when that
//! store is crashed at arbitrary moments mid-run — spilled anchors are
//! a rebuildable cache, never authority.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shard_apps::airline::{AirlineTxn, AirlineUpdate, FlyByNight};
use shard_apps::banking::{AccountId, Bank, BankUpdate};
use shard_apps::dictionary::{DictTxn, DictUpdate, Dictionary};
use shard_apps::inventory::{InvUpdate, ItemId, Order, OrderId, Warehouse};
use shard_apps::nameserver::{GroupId, Name, NameServer, NsUpdate};
use shard_apps::Person;
use shard_core::Application;
use shard_sim::{
    ClusterConfig, CrashRecoverInjector, DelayModel, DurabilityConfig, DurableFleet, GossipConfig,
    Invocation, LamportClock, MergeLog, NodeId, Runner, Timestamp,
};
use shard_store::{Codec, DiskStore, MemStore, StoreOptions};
use std::sync::Arc;

/// Drives one durable node (id 0) through a mixed own/foreign workload,
/// kills its store at a fleet-chosen WAL offset, recovers, and checks
/// the §3-shaped invariants that make recovery sound:
///
/// 1. the recovered arrival order is a *prefix* of the pre-crash one;
/// 2. the recovered state equals replaying exactly that prefix;
/// 3. every own update survived (they were fsynced before propagation),
///    so the recovered clock dominates every timestamp the node issued.
fn kill_recover_prefix<A: Application>(
    app: &A,
    mut gen_update: impl FnMut(&mut StdRng) -> A::Update,
    workload_seed: u64,
    kill_seed: u64,
    n: usize,
) where
    A::Update: Codec,
{
    let origin_count = 3u16;
    let me = NodeId(0);
    let mut rng = StdRng::seed_from_u64(workload_seed);
    let mut fleet: DurableFleet<A> =
        DurableFleet::new(origin_count, &DurabilityConfig::mem(kill_seed)).unwrap();
    let mut clocks: Vec<LamportClock> = (0..origin_count)
        .map(|i| LamportClock::new(NodeId(i)))
        .collect();
    let mut log: MergeLog<A> = MergeLog::new(app, 8);
    let mut in_flight: Vec<(Timestamp, A::Update)> = Vec::new();
    let mut own_max = 0u64;
    for _ in 0..n {
        let origin = rng.random_range(0..origin_count);
        let ts = clocks[origin as usize].tick();
        let update = gen_update(&mut rng);
        if origin == me.0 {
            // Own execution: merge, then append + fsync before any peer
            // could see it (the kernel's write-ahead discipline).
            own_max = own_max.max(ts.lamport);
            log.merge(app, ts, Arc::new(update));
            fleet.persist(me, &log, true);
        } else {
            in_flight.push((ts, update));
        }
        // Sometimes a delivery burst arrives: shuffle the in-flight
        // foreign updates (out-of-order merges exercise undo/redo),
        // merge them, and mirror without a barrier.
        if !in_flight.is_empty() && rng.random_range(0u32..4) == 0 {
            for i in (1..in_flight.len()).rev() {
                in_flight.swap(i, rng.random_range(0..i + 1));
            }
            for (ts, update) in in_flight.drain(..) {
                clocks[me.0 as usize].observe(ts);
                log.merge(app, ts, Arc::new(update));
            }
            fleet.persist(me, &log, false);
        }
    }
    for (ts, update) in in_flight.drain(..) {
        log.merge(app, ts, Arc::new(update));
    }
    fleet.persist(me, &log, false);

    let pre_crash: Vec<Timestamp> = log.arrivals().to_vec();
    let report = fleet.kill(me);
    let (recovered, entries) = fleet.recover(app, me, 8);

    // (1) Prefix of the arrival order.
    assert_eq!(entries, report.kept_entries, "recovery reads what survived");
    assert!(entries <= pre_crash.len(), "nothing invented");
    assert_eq!(
        recovered.log.arrivals(),
        &pre_crash[..entries],
        "recovered log is a prefix of the pre-crash arrival order"
    );

    // (2) State equals replaying exactly that prefix.
    let mut reference: MergeLog<A> = MergeLog::new(app, 8);
    let index: std::collections::BTreeMap<Timestamp, &A::Update> = log
        .entries()
        .iter()
        .map(|(ts, u)| (*ts, u.as_ref()))
        .collect();
    for ts in &pre_crash[..entries] {
        reference.merge(app, *ts, Arc::new(index[ts].clone()));
    }
    assert_eq!(
        recovered.log.state(),
        reference.state(),
        "recovered state is the prefix replay"
    );

    // (3) Own updates all survived; the clock never reuses a timestamp.
    let own_recovered = recovered
        .log
        .entries()
        .iter()
        .filter(|(ts, _)| ts.node == me)
        .count() as u64;
    let own_pre = pre_crash.iter().filter(|ts| ts.node == me).count() as u64;
    assert_eq!(own_recovered, own_pre, "fsynced own updates survive kills");
    assert_eq!(recovered.own_sent, own_pre, "§3.3 promise count recovered");
    assert!(
        recovered.clock.current() >= own_max,
        "recovered clock dominates every own-issued timestamp"
    );
}

fn airline_update(rng: &mut StdRng) -> AirlineUpdate {
    match rng.random_range(0u32..4) {
        0 => AirlineUpdate::Request(Person(rng.random_range(1u32..10))),
        1 => AirlineUpdate::Cancel(Person(rng.random_range(1u32..10))),
        2 => AirlineUpdate::MoveUp(Person(rng.random_range(1u32..10))),
        _ => AirlineUpdate::MoveDown(Person(rng.random_range(1u32..10))),
    }
}

fn bank_update(rng: &mut StdRng) -> BankUpdate {
    match rng.random_range(0u32..3) {
        0 => BankUpdate::Credit(
            AccountId(rng.random_range(0u32..4)),
            rng.random_range(1u32..100),
        ),
        1 => BankUpdate::Debit(
            AccountId(rng.random_range(0u32..4)),
            rng.random_range(1u32..100),
        ),
        _ => BankUpdate::Move(
            AccountId(rng.random_range(0u32..4)),
            AccountId(rng.random_range(0u32..4)),
            rng.random_range(1u32..50),
        ),
    }
}

fn dict_update(rng: &mut StdRng) -> DictUpdate {
    match rng.random_range(0u32..2) {
        0 => DictUpdate::Insert(rng.random_range(0u32..8), rng.random_range(0u64..1000)),
        _ => DictUpdate::Delete(rng.random_range(0u32..8)),
    }
}

fn inv_update(rng: &mut StdRng) -> InvUpdate {
    let item = ItemId(rng.random_range(0u32..3));
    match rng.random_range(0u32..4) {
        0 => InvUpdate::Commit(
            item,
            Order {
                id: OrderId(rng.random_range(0u32..50)),
                qty: rng.random_range(1u64..5),
            },
        ),
        1 => InvUpdate::Backlog(
            item,
            Order {
                id: OrderId(rng.random_range(0u32..50)),
                qty: rng.random_range(1u64..5),
            },
        ),
        2 => InvUpdate::AddStock(item, rng.random_range(1u64..10)),
        _ => InvUpdate::SubStock(item, rng.random_range(1u64..10)),
    }
}

fn ns_update(rng: &mut StdRng) -> NsUpdate {
    match rng.random_range(0u32..4) {
        0 => NsUpdate::SetAddress(Name(rng.random_range(0u32..6)), rng.random_range(0u64..100)),
        1 => NsUpdate::RemoveName(Name(rng.random_range(0u32..6))),
        2 => NsUpdate::AddMember(
            GroupId(rng.random_range(0u32..3)),
            Name(rng.random_range(0u32..6)),
        ),
        _ => NsUpdate::RemoveMember(
            GroupId(rng.random_range(0u32..3)),
            Name(rng.random_range(0u32..6)),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kill at an arbitrary WAL offset + reopen yields a log that is a
    /// prefix (subsequence) of the uncrashed run — for all five apps.
    #[test]
    fn kill_at_arbitrary_offset_recovers_a_prefix(
        workload_seed in 0u64..10_000,
        kill_seed in 0u64..10_000,
        n in 10usize..120,
    ) {
        kill_recover_prefix(&FlyByNight::new(3), airline_update, workload_seed, kill_seed, n);
        kill_recover_prefix(&Bank::new(4, 100), bank_update, workload_seed, kill_seed, n);
        kill_recover_prefix(&Dictionary, dict_update, workload_seed, kill_seed, n);
        kill_recover_prefix(
            &Warehouse::new(3, 20, 1, 1),
            inv_update,
            workload_seed,
            kill_seed,
            n,
        );
        kill_recover_prefix(&NameServer::new(3, 1), ns_update, workload_seed, kill_seed, n);
    }

    /// Spilled-checkpoint kill points: crashing the anchor store under
    /// a live merge log — at random byte offsets, including 0 — never
    /// changes a merge outcome or a state, for all five apps.
    #[test]
    fn spilled_anchor_crashes_never_change_merge_results(
        seed in 0u64..10_000,
        n in 10usize..90,
    ) {
        spilled_anchor_kill_points(&FlyByNight::new(3), airline_update, seed, n);
        spilled_anchor_kill_points(&Bank::new(4, 100), bank_update, seed, n);
        spilled_anchor_kill_points(&Dictionary, dict_update, seed, n);
        spilled_anchor_kill_points(&Warehouse::new(3, 20, 1, 1), inv_update, seed, n);
        spilled_anchor_kill_points(&NameServer::new(3, 1), ns_update, seed, n);
    }
}

/// Drives two identical merge logs — one all-RAM, one with its cold
/// checkpoint anchors spilled through a store — over the same
/// adversarially shuffled delivery order, crashing the spill store at
/// random kill points mid-run. Spilled anchors are a cache, never
/// authority: every merge outcome and every intermediate state must
/// stay identical to the in-memory log's, whatever the crashes
/// destroyed; a lost anchor only deepens the next replay.
fn spilled_anchor_kill_points<A: Application>(
    app: &A,
    mut gen_update: impl FnMut(&mut StdRng) -> A::Update,
    seed: u64,
    n: usize,
) where
    A::State: Codec,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let origin_count = 3u16;
    let mut clocks: Vec<LamportClock> = (0..origin_count)
        .map(|i| LamportClock::new(NodeId(i)))
        .collect();
    let mut pending: Vec<(Timestamp, A::Update)> = (0..n)
        .map(|_| {
            let origin = rng.random_range(0..origin_count) as usize;
            (clocks[origin].tick(), gen_update(&mut rng))
        })
        .collect();
    // Adversarial delivery: a full shuffle of the serial order — the
    // undo/redo path must cope with arbitrary displacement, so the
    // checkpoint tier sees deep truncates, not just tip appends.
    for i in (1..pending.len()).rev() {
        pending.swap(i, rng.random_range(0..i + 1));
    }

    let hot = rng.random_range(1usize..4);
    let spacing = rng.random_range(1usize..4);
    let mut plain: MergeLog<A> = MergeLog::new(app, 4);
    let mut spilling: MergeLog<A> = MergeLog::new(app, 4);
    spilling.enable_spilling(app, Box::new(MemStore::new()), hot, spacing);

    for (k, (ts, update)) in pending.into_iter().enumerate() {
        let update = Arc::new(update);
        let a = plain.merge_with_outcome(app, ts, update.clone());
        let b = spilling.merge_with_outcome(app, ts, update);
        assert_eq!(
            std::mem::discriminant(&a),
            std::mem::discriminant(&b),
            "merge outcome diverged at delivery {k} (hot {hot}, spacing {spacing})"
        );
        assert_eq!(
            plain.state(),
            spilling.state(),
            "state diverged at delivery {k} (hot {hot}, spacing {spacing})"
        );
        // Kill point: crash the anchor store to a random byte prefix —
        // 0 loses every spilled anchor at once, mid-record offsets tear
        // the newest one.
        if rng.random_range(0u32..5) == 0 {
            let store = spilling.spill_store_mut().expect("spilling enabled");
            let keep = rng.random_range(0..=store.len_bytes());
            store.crash(keep).expect("mem store crash is infallible");
        }
    }
    assert_eq!(
        plain.entries().len(),
        spilling.entries().len(),
        "same log length"
    );
    assert_eq!(plain.state(), spilling.state(), "same final state");
}

/// The disk-backed flavor of the same kill point, on the exact store
/// the out-of-core experiment spills through: anchors land in a
/// [`DiskStore`], the store is crashed with a torn tail mid-run (and
/// again, to empty, near the end), and the log still converges to the
/// in-memory reference.
#[test]
fn disk_spilled_anchors_survive_torn_crashes() {
    let dir = std::env::temp_dir().join(format!("shard-sim-spill-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let app = Bank::new(4, 100);
    let mut rng = StdRng::seed_from_u64(11);
    let mut clock = LamportClock::new(NodeId(0));
    let serial: Vec<(Timestamp, BankUpdate)> = (0..60)
        .map(|_| (clock.tick(), bank_update(&mut rng)))
        .collect();
    let mut order: Vec<usize> = (0..serial.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.random_range(0..i + 1));
    }

    let mut plain: MergeLog<Bank> = MergeLog::new(&app, 2);
    let mut spilling: MergeLog<Bank> = MergeLog::new(&app, 2);
    let (store, recovered) = DiskStore::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(recovered, 0, "fresh directory");
    spilling.enable_spilling(&app, Box::new(store), 1, 1);

    for (k, &i) in order.iter().enumerate() {
        let (ts, u) = serial[i].clone();
        plain.merge(&app, ts, Arc::new(u.clone()));
        spilling.merge(&app, ts, Arc::new(u));
        assert_eq!(plain.state(), spilling.state(), "delivery {k}");
        if k == serial.len() / 2 {
            // Torn tail: keep everything but the last few bytes.
            let store = spilling.spill_store_mut().unwrap();
            let keep = store.len_bytes().saturating_sub(7);
            store.crash(keep).unwrap();
        }
        if k == serial.len() - 3 {
            // Total anchor loss just before the end.
            spilling.spill_store_mut().unwrap().crash(0).unwrap();
        }
    }
    assert_eq!(plain.state(), spilling.state(), "final state");
    let _ = std::fs::remove_dir_all(&dir);
}

fn airline_invocations(n: u32, nodes: u16) -> Vec<Invocation<AirlineTxn>> {
    (0..n)
        .map(|i| {
            let txn = match i % 4 {
                0 => AirlineTxn::Request(Person(i % 7 + 1)),
                1 => AirlineTxn::Cancel(Person(i % 5 + 1)),
                2 => AirlineTxn::Request(Person(i % 11 + 1)),
                _ => AirlineTxn::Request(Person(i % 3 + 1)),
            };
            Invocation::new(
                u64::from(i) * 17 + 3,
                NodeId((i % u32::from(nodes)) as u16),
                txn,
            )
        })
        .collect()
}

/// Without crash windows the durable mirror is a pure observer: the
/// run's transactions and final states are identical with and without
/// it attached.
#[test]
fn durability_never_perturbs_fault_free_runs() {
    let app = FlyByNight::new(4);
    let cfg = ClusterConfig {
        nodes: 4,
        seed: 9,
        delay: DelayModel::Exponential { mean: 15 },
        ..Default::default()
    };
    let invs = airline_invocations(24, 4);
    let plain = Runner::gossip(&app, cfg.clone(), GossipConfig { interval: 25 }).run(invs.clone());
    let fleet = DurableFleet::new(4, &DurabilityConfig::mem(1)).unwrap();
    let durable = Runner::gossip(&app, cfg, GossipConfig { interval: 25 })
        .with_durability(fleet)
        .run(invs);
    let ts = |r: &shard_sim::RunReport<FlyByNight>| {
        r.transactions.iter().map(|t| t.ts).collect::<Vec<_>>()
    };
    assert_eq!(ts(&plain), ts(&durable), "same serial order");
    assert_eq!(plain.final_states, durable.final_states, "same states");
}

/// A full kernel run under [`CrashRecoverInjector`]: nodes lose their
/// unsynced tails mid-run and are rebuilt from their WALs, yet the §3
/// oracles hold — the execution verifies, gossip re-converges every
/// replica, and the final state equals the canonical serial replay of
/// the executed updates.
#[test]
fn gossip_crash_recovery_holds_section3_oracles() {
    let app = FlyByNight::new(4);
    for seed in [3u64, 17, 88] {
        let cfg = ClusterConfig {
            nodes: 4,
            seed,
            delay: DelayModel::Exponential { mean: 12 },
            ..Default::default()
        };
        let fleet = DurableFleet::new(4, &DurabilityConfig::mem(seed + 1)).unwrap();
        let report = Runner::gossip(&app, cfg, GossipConfig { interval: 20 })
            .with_durability(fleet)
            .with_nemesis(Box::new(CrashRecoverInjector::new(2, 40, 160, seed)))
            .run(airline_invocations(30, 4));
        assert_eq!(report.faults.crashes_injected, 2, "windows injected");
        let te = report.timed_execution();
        te.execution.verify(&app).unwrap();
        assert!(
            shard_core::conditions::is_transitive(&te.execution),
            "gossip ships whole logs: prefixes stay transitively closed \
             across kill/recover (seed {seed})"
        );
        assert!(report.mutually_consistent(), "re-converged (seed {seed})");
        // Canonical serial replay of exactly the executed updates.
        let mut state = app.initial_state();
        for t in &report.transactions {
            state = app.apply(&state, &t.update);
        }
        assert_eq!(
            report.final_states[0], state,
            "states are the serial replay"
        );
    }
}

/// Eager broadcast with piggybacking under kill/recover: piggybacked
/// whole-log packets keep recovered prefixes transitively closed, so
/// the §3 transitivity checker must still pass.
#[test]
fn eager_piggyback_crash_recovery_stays_transitive() {
    let app = FlyByNight::new(4);
    for seed in [5u64, 23] {
        let cfg = ClusterConfig {
            nodes: 3,
            seed,
            delay: DelayModel::Fixed(8),
            piggyback: true,
            ..Default::default()
        };
        let fleet = DurableFleet::new(3, &DurabilityConfig::mem(seed)).unwrap();
        let report = Runner::eager(&app, cfg)
            .with_durability(fleet)
            .with_nemesis(Box::new(CrashRecoverInjector::new(2, 30, 120, seed)))
            .run(airline_invocations(24, 3));
        let te = report.timed_execution();
        te.execution.verify(&app).unwrap();
        assert!(
            shard_core::conditions::is_transitive(&te.execution),
            "piggybacked logs keep recovered prefixes transitive (seed {seed})"
        );
    }
}

/// Disk-backed restart: a cluster runs, the process "exits" (fleet
/// dropped), a fresh fleet reopens the same directories, and the
/// restarted run begins from the recovered logs — state persists across
/// real process boundaries.
#[test]
fn disk_backed_cluster_survives_a_restart() {
    let dir =
        std::env::temp_dir().join(format!("shard-sim-durable-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let app = Dictionary;
    let cfg = ClusterConfig {
        nodes: 3,
        seed: 4,
        delay: DelayModel::Fixed(5),
        ..Default::default()
    };
    let phase1: Vec<Invocation<DictTxn>> = (0..9u32)
        .map(|i| {
            Invocation::new(
                u64::from(i) * 10,
                NodeId((i % 3) as u16),
                DictTxn::Insert(i, u64::from(i) * 100),
            )
        })
        .collect();
    let fleet = DurableFleet::new(3, &DurabilityConfig::disk(&dir, 0)).unwrap();
    let first = Runner::gossip(&app, cfg.clone(), GossipConfig { interval: 10 })
        .with_durability(fleet)
        .run(phase1);
    assert!(first.mutually_consistent());
    let want = first.final_states[0].clone();

    // "Restart": reopen the same directories in a new fleet. Every
    // mirror holds entries, so the runner rebuilds all three nodes at
    // run start; an empty schedule then just reports their states.
    let fleet = DurableFleet::new(3, &DurabilityConfig::disk(&dir, 1)).unwrap();
    let second = Runner::gossip(&app, cfg, GossipConfig { interval: 10 })
        .with_durability(fleet)
        .run(Vec::new());
    assert_eq!(
        second.final_states,
        vec![want.clone(), want.clone(), want],
        "all replicas recovered their pre-restart state from disk"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
