//! Integration tests of node crash/recovery in the SHARD cluster.

use shard_apps::airline::{AirlineTxn, FlyByNight};
use shard_apps::Person;
use shard_sim::{
    Cluster, ClusterConfig, CrashSchedule, CrashWindow, DelayModel, Invocation, NodeId,
};

fn cfg(crashes: CrashSchedule) -> ClusterConfig {
    ClusterConfig {
        nodes: 3,
        seed: 1,
        delay: DelayModel::Fixed(10),
        crashes,
        ..Default::default()
    }
}

#[test]
fn crashed_nodes_reject_clients() {
    let app = FlyByNight::new(5);
    let crashes = CrashSchedule::new(vec![CrashWindow::new(NodeId(1), 50, 150)]);
    let cluster = Cluster::new(&app, cfg(crashes));
    let invs = vec![
        Invocation::new(10, NodeId(1), AirlineTxn::Request(Person(1))), // before: ok
        Invocation::new(100, NodeId(1), AirlineTxn::Request(Person(2))), // down: rejected
        Invocation::new(100, NodeId(0), AirlineTxn::Request(Person(3))), // other node: ok
        Invocation::new(200, NodeId(1), AirlineTxn::Request(Person(4))), // recovered: ok
    ];
    let report = cluster.run(invs);
    assert_eq!(report.rejected, vec![(100, NodeId(1))]);
    assert_eq!(report.transactions.len(), 3);
    let fin = &report.final_states[0];
    assert!(fin.is_waiting(Person(1)));
    assert!(
        !fin.is_known(Person(2)),
        "rejected transaction never entered"
    );
    assert!(fin.is_waiting(Person(3)));
    assert!(fin.is_waiting(Person(4)));
}

#[test]
fn messages_are_held_until_recovery_and_replicas_converge() {
    let app = FlyByNight::new(5);
    let crashes = CrashSchedule::new(vec![CrashWindow::new(NodeId(2), 0, 500)]);
    let cluster = Cluster::new(&app, cfg(crashes));
    let mut invs = Vec::new();
    for i in 1..=6u32 {
        invs.push(Invocation::new(
            i as u64 * 10,
            NodeId((i % 2) as u16),
            AirlineTxn::Request(Person(i)),
        ));
    }
    let report = cluster.run(invs);
    assert!(report.rejected.is_empty());
    // The crashed node received everything after recovery.
    assert!(report.mutually_consistent());
    let te = report.timed_execution();
    te.execution.verify(&app).unwrap();
}

#[test]
fn crash_during_barrier_defers_promises() {
    let app = FlyByNight::new(5);
    // Node 1 is down while the critical mover at node 0 probes.
    let crashes = CrashSchedule::new(vec![CrashWindow::new(NodeId(1), 0, 400)]);
    let cluster = Cluster::new(&app, cfg(crashes));
    let invs = vec![
        Invocation::new(5, NodeId(0), AirlineTxn::Request(Person(1))),
        Invocation::new(20, NodeId(0), AirlineTxn::MoveUp),
    ];
    let report = cluster.run_with_critical(invs, |d| matches!(d, AirlineTxn::MoveUp));
    assert_eq!(report.barrier_latencies.len(), 1);
    assert!(
        report.barrier_latencies[0] >= 380,
        "the barrier waited for node 1 to recover: {}",
        report.barrier_latencies[0]
    );
    assert!(report.final_states[0].is_assigned(Person(1)));
}

#[test]
fn no_crashes_is_the_default() {
    let app = FlyByNight::new(5);
    let cluster = Cluster::new(
        &app,
        ClusterConfig {
            nodes: 2,
            ..Default::default()
        },
    );
    let report = cluster.run(vec![Invocation::new(
        0,
        NodeId(0),
        AirlineTxn::Request(Person(1)),
    )]);
    assert!(report.rejected.is_empty());
}
