//! Integration tests of node crash/recovery in the SHARD cluster — and,
//! since the kernel refactor, regression tests that *every* propagation
//! strategy applies the same crash gating (the pre-kernel gossip and
//! partial drivers executed client transactions at crashed nodes).

use shard_apps::airline::{AirlineTxn, FlyByNight};
use shard_apps::Person;
use shard_core::ObjectModel;
use shard_sim::{
    ClusterConfig, CrashSchedule, CrashWindow, DelayModel, GossipConfig, Invocation, NodeId,
    Placement, Runner,
};
use std::sync::Arc;

fn cfg(crashes: CrashSchedule) -> ClusterConfig {
    ClusterConfig {
        nodes: 3,
        seed: 1,
        delay: DelayModel::Fixed(10),
        crashes,
        ..Default::default()
    }
}

#[test]
fn crashed_nodes_reject_clients() {
    let app = FlyByNight::new(5);
    let crashes = CrashSchedule::new(vec![CrashWindow::new(NodeId(1), 50, 150)]);
    let cluster = Runner::eager(&app, cfg(crashes));
    let invs = vec![
        Invocation::new(10, NodeId(1), AirlineTxn::Request(Person(1))), // before: ok
        Invocation::new(100, NodeId(1), AirlineTxn::Request(Person(2))), // down: rejected
        Invocation::new(100, NodeId(0), AirlineTxn::Request(Person(3))), // other node: ok
        Invocation::new(200, NodeId(1), AirlineTxn::Request(Person(4))), // recovered: ok
    ];
    let report = cluster.run(invs);
    assert_eq!(report.rejected, vec![(100, NodeId(1))]);
    assert_eq!(report.transactions.len(), 3);
    let fin = &report.final_states[0];
    assert!(fin.is_waiting(Person(1)));
    assert!(
        !fin.is_known(Person(2)),
        "rejected transaction never entered"
    );
    assert!(fin.is_waiting(Person(3)));
    assert!(fin.is_waiting(Person(4)));
}

#[test]
fn messages_are_held_until_recovery_and_replicas_converge() {
    let app = FlyByNight::new(5);
    let crashes = CrashSchedule::new(vec![CrashWindow::new(NodeId(2), 0, 500)]);
    let cluster = Runner::eager(&app, cfg(crashes));
    let mut invs = Vec::new();
    for i in 1..=6u32 {
        invs.push(Invocation::new(
            i as u64 * 10,
            NodeId((i % 2) as u16),
            AirlineTxn::Request(Person(i)),
        ));
    }
    let report = cluster.run(invs);
    assert!(report.rejected.is_empty());
    // The crashed node received everything after recovery.
    assert!(report.mutually_consistent());
    let te = report.timed_execution();
    te.execution.verify(&app).unwrap();
}

#[test]
fn crash_during_barrier_defers_promises() {
    let app = FlyByNight::new(5);
    // Node 1 is down while the critical mover at node 0 probes.
    let crashes = CrashSchedule::new(vec![CrashWindow::new(NodeId(1), 0, 400)]);
    let cluster = Runner::eager(&app, cfg(crashes));
    let invs = vec![
        Invocation::new(5, NodeId(0), AirlineTxn::Request(Person(1))),
        Invocation::new(20, NodeId(0), AirlineTxn::MoveUp),
    ];
    let report = cluster.run_with_critical(invs, |d| matches!(d, AirlineTxn::MoveUp));
    assert_eq!(report.barrier_latencies.len(), 1);
    assert!(
        report.barrier_latencies[0] >= 380,
        "the barrier waited for node 1 to recover: {}",
        report.barrier_latencies[0]
    );
    assert!(report.final_states[0].is_assigned(Person(1)));
}

/// The schedule shared by the per-strategy rejection tests: node 1 is
/// down for `[50, 150)` and gets one invocation before, during, and
/// after the outage.
fn rejection_invocations() -> Vec<Invocation<AirlineTxn>> {
    vec![
        Invocation::new(10, NodeId(1), AirlineTxn::Request(Person(1))), // before: ok
        Invocation::new(100, NodeId(1), AirlineTxn::Request(Person(2))), // down: rejected
        Invocation::new(200, NodeId(1), AirlineTxn::Request(Person(3))), // recovered: ok
    ]
}

fn assert_rejects_like_broadcast(
    report: &shard_sim::RunReport<FlyByNight>,
    sink: &Arc<shard_obs::EventSink>,
) {
    assert_eq!(report.rejected, vec![(100, NodeId(1))]);
    assert_eq!(report.transactions.len(), 2);
    assert!(
        !report.final_states[0].is_known(Person(2)),
        "rejected transaction never entered"
    );
    assert!(report.final_states[0].is_waiting(Person(1)));
    assert!(report.final_states[0].is_waiting(Person(3)));
    let summary = shard_obs::summarize(&sink.drain_to_string());
    assert_eq!(
        summary.event_counts["reject"], 1,
        "the rejection is visible in the trace"
    );
    assert_eq!(summary.event_counts["execute"], 2);
}

#[test]
fn gossip_rejects_clients_at_crashed_nodes() {
    // Regression: the pre-kernel gossip driver executed this schedule's
    // t=100 invocation at the crashed node.
    let app = FlyByNight::new(5);
    let sink = shard_obs::EventSink::in_memory();
    let mut config = cfg(CrashSchedule::new(vec![CrashWindow::new(
        NodeId(1),
        50,
        150,
    )]));
    config.sink = Some(Arc::clone(&sink));
    let cluster = Runner::gossip(&app, config, GossipConfig { interval: 20 });
    let report = cluster.run(rejection_invocations());
    assert_rejects_like_broadcast(&report, &sink);
    assert!(report.mutually_consistent());
}

#[test]
fn partial_rejects_clients_at_crashed_nodes() {
    // Regression: ditto for the pre-kernel partial-replication driver.
    let app = FlyByNight::new(5);
    let sink = shard_obs::EventSink::in_memory();
    let mut config = cfg(CrashSchedule::new(vec![CrashWindow::new(
        NodeId(1),
        50,
        150,
    )]));
    config.sink = Some(Arc::clone(&sink));
    let cluster = Runner::partial(&app, config, Placement::full(3, &app.objects()));
    let report = cluster.run(rejection_invocations());
    assert_rejects_like_broadcast(&report, &sink);
    assert!(report.mutually_consistent());
}

#[test]
fn no_crashes_is_the_default() {
    let app = FlyByNight::new(5);
    let cluster = Runner::eager(
        &app,
        ClusterConfig {
            nodes: 2,
            ..Default::default()
        },
    );
    let report = cluster.run(vec![Invocation::new(
        0,
        NodeId(0),
        AirlineTxn::Request(Person(1)),
    )]);
    assert!(report.rejected.is_empty());
}
