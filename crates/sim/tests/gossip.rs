//! Integration tests of the anti-entropy gossip broadcast.

use shard_apps::airline::{AirlineTxn, FlyByNight};
use shard_apps::Person;
use shard_core::conditions;
use shard_sim::partition::{PartitionSchedule, PartitionWindow};
use shard_sim::{ClusterConfig, DelayModel, GossipConfig, Invocation, NodeId, Runner};

fn booking(n: u32, nodes: u16, gap: u64) -> Vec<Invocation<AirlineTxn>> {
    let mut invs = Vec::new();
    let mut t = 0;
    for i in 1..=n {
        t += gap;
        invs.push(Invocation::new(
            t,
            NodeId((i % nodes as u32) as u16),
            AirlineTxn::Request(Person(i)),
        ));
        t += gap;
        invs.push(Invocation::new(
            t,
            NodeId(((i + 1) % nodes as u32) as u16),
            AirlineTxn::MoveUp,
        ));
    }
    invs
}

#[test]
fn gossip_converges_and_emits_valid_executions() {
    let app = FlyByNight::new(10);
    let cluster = Runner::gossip(
        &app,
        ClusterConfig {
            nodes: 4,
            seed: 1,
            delay: DelayModel::Fixed(5),
            ..Default::default()
        },
        GossipConfig { interval: 25 },
    );
    let report = cluster.run(booking(30, 4, 7));
    assert!(report.mutually_consistent());
    assert!(report.rounds > 0);
    assert!(report.entries_shipped > 0);
    let te = report.timed_execution();
    te.execution
        .verify(&app)
        .expect("gossip runs satisfy §3.1 too");
    assert_eq!(report.final_states[0], te.execution.final_state(&app));
}

#[test]
fn slower_gossip_means_larger_k() {
    let app = FlyByNight::new(10);
    let run = |interval| {
        let cluster = Runner::gossip(
            &app,
            ClusterConfig {
                nodes: 4,
                seed: 2,
                delay: DelayModel::Fixed(5),
                ..Default::default()
            },
            GossipConfig { interval },
        );
        let te = cluster.run(booking(40, 4, 5)).timed_execution();
        let counts: usize = shard_analysis_free_missed(&te.execution);
        counts
    };
    // Helper: total missed predecessors across the execution.
    fn shard_analysis_free_missed(e: &shard_core::Execution<FlyByNight>) -> usize {
        (0..e.len()).map(|i| conditions::missed_count(e, i)).sum()
    }
    let fast = run(10);
    let slow = run(400);
    assert!(
        slow > fast,
        "slow gossip {slow} must miss more than fast {fast}"
    );
}

#[test]
fn gossip_rides_out_partitions() {
    let app = FlyByNight::new(10);
    let partitions =
        PartitionSchedule::new(vec![PartitionWindow::isolate(0, 800, vec![NodeId(0)])]);
    let cluster = Runner::gossip(
        &app,
        ClusterConfig {
            nodes: 3,
            seed: 3,
            delay: DelayModel::Fixed(5),
            partitions,
            ..Default::default()
        },
        GossipConfig { interval: 30 },
    );
    let report = cluster.run(booking(15, 3, 10));
    // Rounds blocked during the partition are skipped, yet everything
    // converges after the heal.
    assert!(report.mutually_consistent());
    let te = report.timed_execution();
    te.execution.verify(&app).unwrap();
}

#[test]
fn single_node_gossips_nothing() {
    let app = FlyByNight::new(10);
    let cluster = Runner::gossip(
        &app,
        ClusterConfig {
            nodes: 1,
            seed: 4,
            ..Default::default()
        },
        GossipConfig { interval: 10 },
    );
    let report = cluster.run(booking(5, 1, 3));
    assert_eq!(report.rounds, 0);
    assert_eq!(report.entries_shipped, 0);
    assert_eq!(report.final_states.len(), 1);
}

#[test]
fn gossip_emits_the_shared_merge_trace_vocabulary() {
    // Gossip runs ride the kernel's traced merge, so their sidecars
    // carry the same merge.append / merge.out_of_order / merge.duplicate
    // events as flooding runs — pinned against the report's own metrics.
    let app = FlyByNight::new(10);
    let sink = shard_obs::EventSink::in_memory();
    let cluster = Runner::gossip(
        &app,
        ClusterConfig {
            nodes: 4,
            seed: 5,
            delay: DelayModel::Fixed(5),
            sink: Some(std::sync::Arc::clone(&sink)),
            ..Default::default()
        },
        GossipConfig { interval: 25 },
    );
    let report = cluster.run(booking(30, 4, 7));
    let summary = shard_obs::summarize(&sink.drain_to_string());
    assert_eq!(summary.malformed, 0);
    assert_eq!(summary.event_counts["execute"], 60);
    assert_eq!(summary.event_counts["deliver"], report.messages_sent);
    // Every delivered entry lands in exactly one merge.* bucket.
    let merges: u64 = ["merge.append", "merge.out_of_order", "merge.duplicate"]
        .iter()
        .map(|k| summary.event_counts.get(*k).copied().unwrap_or(0))
        .sum();
    assert_eq!(merges, report.entries_shipped);
    assert!(
        summary
            .event_counts
            .get("merge.duplicate")
            .copied()
            .unwrap_or(0)
            > 0,
        "whole-log pushes re-deliver known entries"
    );
    let ooo: u64 = report.node_metrics.iter().map(|m| m.out_of_order).sum();
    assert_eq!(
        summary
            .event_counts
            .get("merge.out_of_order")
            .copied()
            .unwrap_or(0),
        ooo
    );
    let traced_replayed: u64 = summary.node_replay.values().map(|r| r.replayed).sum();
    assert_eq!(traced_replayed, report.total_replayed());
    assert!(summary.spans.contains_key("sim.gossip.run"));
}

#[test]
fn deterministic_per_seed() {
    let app = FlyByNight::new(10);
    let run = |seed| {
        Runner::gossip(
            &app,
            ClusterConfig {
                nodes: 3,
                seed,
                delay: DelayModel::Fixed(7),
                ..Default::default()
            },
            GossipConfig { interval: 20 },
        )
        .run(booking(20, 3, 4))
        .final_states
    };
    assert_eq!(run(9), run(9));
}
