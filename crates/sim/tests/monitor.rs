//! Live-monitor integration: the kernel's in-run [`LiveMonitor`] must
//! agree **bit-for-bit** with the offline pipeline it shadows.
//!
//! Three claims are pinned here. (1) A monitored run's
//! [`StreamReport`] — verdicts, certificates, every summary number —
//! equals `shard_core::stream::par_check` over the finished report's
//! timed execution, for eager and gossip propagation, under faults, at
//! several window sizes. (2) The monitor is a pure observer: with
//! `monitor: None` the kernel behaves byte-identically (same
//! transactions, same trace lines), and switching the monitor on only
//! *adds* its own `txn` / `monitor.window` / `monitor.final` lines
//! without disturbing anything else. (3) `abort_on_violation` stops a
//! doomed run early and still hands back the violation certificate.

use shard_apps::airline::workload::AirlineWorkload;
use shard_apps::airline::{AirlineTxn, FlyByNight};
use shard_core::conditions::{is_transitive, max_missed, transitivity_violation};
use shard_core::stream::par_check;
use shard_obs::EventSink;
use shard_pool::PoolConfig;
use shard_sim::partition::{PartitionSchedule, PartitionWindow};
use shard_sim::{
    ClusterConfig, CrashSchedule, CrashWindow, DelayModel, EagerBroadcast, Gossip, Invocation,
    MonitorConfig, NodeId, RunReport, Runner,
};

const NODES: u16 = 5;

fn invocations(seed: u64, n: usize) -> Vec<Invocation<AirlineTxn>> {
    let mut wl = AirlineWorkload::with_seed(seed);
    wl.take_txns(n)
        .into_iter()
        .enumerate()
        .map(|(i, txn)| Invocation::new(1 + 9 * i as u64, NodeId(i as u16 % NODES), txn))
        .collect()
}

/// Faulted config: a partition and a crash so knowledge actually has
/// holes (otherwise every miss set is empty and the checkers are
/// vacuous).
fn faulted_config(seed: u64, monitor: Option<MonitorConfig>) -> ClusterConfig {
    ClusterConfig {
        nodes: NODES,
        seed,
        delay: DelayModel::Exponential { mean: 40 },
        partitions: PartitionSchedule::new(vec![PartitionWindow::isolate(
            200,
            900,
            vec![NodeId(0), NodeId(1)],
        )]),
        crashes: CrashSchedule::new(vec![CrashWindow::new(NodeId(3), 400, 700)]),
        monitor,
        ..ClusterConfig::default()
    }
}

fn run_eager(seed: u64, cfg: ClusterConfig) -> RunReport<FlyByNight> {
    let app = FlyByNight::new(25);
    Runner::new(&app, cfg, EagerBroadcast { piggyback: false }).run(invocations(seed, 120))
}

fn run_gossip(seed: u64, cfg: ClusterConfig) -> RunReport<FlyByNight> {
    let app = FlyByNight::new(25);
    Runner::new(
        &app,
        cfg,
        Gossip {
            interval: 25,
            fanout: 2,
        },
    )
    .run(invocations(seed, 120))
}

/// Claim (1): the online report equals the offline `par_check` on the
/// same window — verdict vectors, certificates, summary numbers, all of
/// it — and both agree with the original whole-execution checkers.
#[test]
fn online_report_equals_offline_par_check() {
    let pool = PoolConfig::with_threads(2);
    for strategy in ["eager", "gossip"] {
        for window in [1usize, 7, 64] {
            let monitor = Some(MonitorConfig {
                window,
                emit_rows: true,
                abort_on_violation: false,
            });
            let report = match strategy {
                "eager" => run_eager(11, faulted_config(11, monitor)),
                _ => run_gossip(11, faulted_config(11, monitor)),
            };
            let online = report
                .monitor
                .as_ref()
                .expect("monitored run reports a StreamReport");
            assert!(!report.aborted, "abort was not requested");
            assert_eq!(online.rows, report.transactions.len());

            let te = report.timed_execution();
            let offline = par_check(&pool, &te, window);
            assert_eq!(
                online, &offline,
                "{strategy}/window {window}: online and offline disagree"
            );
            // …and both match the original §3 checkers.
            assert_eq!(online.transitive, is_transitive(&te.execution));
            assert_eq!(online.max_missed, max_missed(&te.execution));
            assert_eq!(online.min_delay_bound, te.min_delay_bound());
            if !online.transitive {
                let (low, mid, top) =
                    transitivity_violation(&te.execution).expect("offline witness");
                assert_eq!(
                    online.violation(),
                    Some(&shard_core::stream::Certificate::Transitivity { low, mid, top })
                );
            }
        }
    }
}

/// Claim (2): the monitor is a pure observer. The monitored run's
/// transactions are identical to the unmonitored run's, and its trace
/// is the unmonitored trace plus the monitor's own lines (`span` lines
/// carry wall-clock nanoseconds and are excluded from both sides).
#[test]
fn monitor_off_is_byte_identical_and_on_only_adds_lines() {
    let strip = |trace: &str, monitor_lines: bool| -> Vec<String> {
        trace
            .lines()
            .filter(|l| !l.contains("\"event\":\"span\""))
            .filter(|l| {
                monitor_lines
                    || !(l.contains("\"event\":\"txn\"") || l.contains("\"event\":\"monitor."))
            })
            .map(str::to_owned)
            .collect()
    };

    let plain_sink = EventSink::in_memory();
    let plain = run_eager(
        5,
        ClusterConfig {
            sink: Some(plain_sink.clone()),
            ..faulted_config(5, None)
        },
    );
    let watched_sink = EventSink::in_memory();
    let watched = run_eager(
        5,
        ClusterConfig {
            sink: Some(watched_sink.clone()),
            ..faulted_config(5, Some(MonitorConfig::default()))
        },
    );

    // Same behaviour…
    assert_eq!(plain.transactions.len(), watched.transactions.len());
    for (a, b) in plain.transactions.iter().zip(&watched.transactions) {
        assert_eq!(
            (a.ts, a.time, a.node, &a.known),
            (b.ts, b.time, b.node, &b.known)
        );
    }
    assert_eq!(plain.messages_sent, watched.messages_sent);
    assert_eq!(plain.final_states, watched.final_states);

    // …same trace once the monitor's own vocabulary is removed…
    let plain_trace = strip(&plain_sink.drain_to_string(), true);
    let watched_trace = watched_sink.drain_to_string();
    assert_eq!(plain_trace, strip(&watched_trace, false));

    // …and the monitor did add its vocabulary: one `txn` row per
    // transaction and a final verdict.
    let rows = watched_trace
        .lines()
        .filter(|l| l.contains("\"event\":\"txn\""))
        .count();
    assert_eq!(rows, watched.transactions.len());
    assert!(watched_trace.contains("\"event\":\"monitor.final\""));
}

/// Claim (3): with `abort_on_violation`, a run that would violate
/// transitivity stops early — fewer transactions than the full run —
/// and the report still carries the violation certificate.
#[test]
fn abort_on_violation_truncates_the_run_and_keeps_the_certificate() {
    // Find a seed whose full run violates transitivity (eager flooding
    // without piggybacking under random delays loses the condition
    // easily; the partition makes it near-certain).
    let mut violating = None;
    for seed in 0..25 {
        let report = run_eager(seed, faulted_config(seed, None));
        if !is_transitive(&report.timed_execution().execution) {
            violating = Some((seed, report.transactions.len()));
            break;
        }
    }
    let (seed, full_len) = violating.expect("no transitivity violation in 25 seeds");

    let monitor = Some(MonitorConfig {
        window: 1,
        emit_rows: true,
        abort_on_violation: true,
    });
    let report = run_eager(seed, faulted_config(seed, monitor));
    assert!(report.aborted, "the monitor must stop the run");
    let online = report.monitor.as_ref().expect("monitored");
    assert!(!online.transitive);
    let cert = online.violation().expect("violation certificate survives");
    assert!(matches!(
        cert,
        shard_core::stream::Certificate::Transitivity { .. }
    ));
    // The abort saved work: the truncated run executed no more
    // transactions than the full schedule (and the monitor saw them all).
    assert!(report.transactions.len() <= full_len);
    assert_eq!(online.rows, report.transactions.len());
}
