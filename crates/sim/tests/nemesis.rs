//! Nemesis regression tests: faults the merge layer must absorb.
//!
//! The paper's model (§2) assumes a network that may delay and reorder,
//! but the implementation must also shrug off *duplicated* deliveries —
//! [`MergeLog`](shard_sim::MergeLog) ignores an update it already
//! holds. These tests pin that down at both layers: fed the same update
//! set duplicated and adversarially reordered, a merge log converges to
//! a state **bit-identical** to the in-order run; and end-to-end
//! through the kernel, a transport that duplicates messages (but drops
//! and delays nothing, so decision-time knowledge is untouched) leaves
//! every node's final state bit-identical to the fault-free run, with
//! every extra copy accounted for by the duplicate counters and the
//! `merge.duplicate` / `nemesis.*` trace vocabulary.

use shard_apps::airline::workload::AirlineWorkload;
use shard_apps::airline::{AirlineTxn, FlyByNight};
use shard_obs::EventSink;
use shard_sim::{
    ClusterConfig, DelayModel, EagerBroadcast, Invocation, MergeLog, MessageDuplicator,
    MessageReorderer, NemesisStack, NodeId, RunReport, Runner,
};

const NODES: u16 = 5;

fn invocations(seed: u64, n: usize) -> Vec<Invocation<AirlineTxn>> {
    let mut wl = AirlineWorkload::with_seed(seed);
    wl.take_txns(n)
        .into_iter()
        .enumerate()
        .map(|(i, txn)| Invocation::new(1 + 13 * i as u64, NodeId(i as u16 % NODES), txn))
        .collect()
}

fn run(
    seed: u64,
    nemesis: Option<NemesisStack>,
    sink: Option<std::sync::Arc<EventSink>>,
) -> RunReport<FlyByNight> {
    let app = FlyByNight::new(20);
    let cfg = ClusterConfig {
        nodes: NODES,
        seed,
        delay: DelayModel::Fixed(10),
        sink,
        ..ClusterConfig::default()
    };
    let mut runner = Runner::new(&app, cfg, EagerBroadcast { piggyback: false });
    if let Some(n) = nemesis {
        runner = runner.with_nemesis(Box::new(n));
    }
    runner.run(invocations(seed, 60))
}

/// Duplication only: extra copies arrive strictly later, originals are
/// untouched, so decision-time knowledge — and hence every chosen
/// update — matches the fault-free run exactly.
fn dup_only_stack(seed: u64) -> NemesisStack {
    NemesisStack::new().with(Box::new(MessageDuplicator::new(0.6, 3, 40, seed ^ 0xD0B1)))
}

/// Duplication plus adversarial reordering — lossless, but delays may
/// change what nodes know at decision time (and thus the updates they
/// pick), so only counter bookkeeping is pinned under this stack.
fn dup_reorder_stack(seed: u64) -> NemesisStack {
    NemesisStack::new()
        .with(Box::new(MessageDuplicator::new(0.5, 3, 40, seed ^ 0xD0B1)))
        .with(Box::new(MessageReorderer::new(0.4, 5, 90, seed ^ 0x8E0D)))
}

/// The same update set, delivered in timestamp order to one merge log
/// and duplicated + reversed to another, must produce bit-identical
/// states — merging is commutative and idempotent over deliveries.
#[test]
fn merge_log_absorbs_duplicated_and_reordered_deliveries() {
    let app = FlyByNight::new(20);
    let clean = run(7, None, None);
    let updates: Vec<_> = clean
        .transactions
        .iter()
        .map(|t| (t.ts, t.update))
        .collect();
    assert!(updates.len() >= 40, "workload too small to mean anything");

    let mut reference = MergeLog::new(&app, 8);
    for (ts, u) in &updates {
        assert!(reference.merge(&app, *ts, *u), "fresh update ignored");
    }

    // Adversarial schedule: newest-first (every merge after the first
    // is an out-of-order insertion), then the whole set again in order
    // (every merge a duplicate), with a third copy of every other entry.
    let mut chaotic = MergeLog::new(&app, 8);
    for (ts, u) in updates.iter().rev() {
        chaotic.merge(&app, *ts, *u);
    }
    let mut expected_dups = 0u64;
    for (i, (ts, u)) in updates.iter().enumerate() {
        assert!(!chaotic.merge(&app, *ts, *u), "duplicate accepted");
        expected_dups += 1;
        if i % 2 == 0 {
            chaotic.merge(&app, *ts, *u);
            expected_dups += 1;
        }
    }

    assert_eq!(chaotic.state(), reference.state(), "states diverged");
    assert_eq!(chaotic.entries(), reference.entries(), "logs diverged");
    let m = chaotic.metrics();
    assert_eq!(m.duplicates, expected_dups, "duplicate counter off");
    assert_eq!(m.merged(), updates.len() as u64);
    assert!(m.out_of_order > 0, "reversal exercised the undo/redo path");
    assert_eq!(reference.metrics().duplicates, 0);
}

/// End-to-end: a duplicating transport changes nothing observable but
/// the duplicate counters.
#[test]
fn duplicated_deliveries_are_idempotent_end_to_end() {
    for seed in [3, 17, 1986] {
        let clean = run(seed, None, None);
        let faulted = run(seed, Some(dup_only_stack(seed)), None);

        assert!(
            faulted.faults.duplicated > 0,
            "seed {seed}: stack was inert"
        );
        assert_eq!(faulted.faults.dropped, 0, "nothing may be lost");
        assert_eq!(faulted.faults.delayed, 0, "originals must be on time");

        assert!(faulted.mutually_consistent(), "seed {seed}: nodes disagree");
        assert_eq!(
            faulted.final_states, clean.final_states,
            "seed {seed}: duplication changed the merged state"
        );

        // Every extra copy the nemesis scheduled surfaces as exactly one
        // ignored duplicate in some node's merge log (eager broadcast
        // without piggyback ships one update per message, and no other
        // mechanism re-sends here).
        let ignored: u64 = faulted.node_metrics.iter().map(|m| m.duplicates).sum();
        assert_eq!(
            ignored, faulted.faults.duplicated,
            "seed {seed}: duplicate deliveries not fully accounted for"
        );
        let clean_ignored: u64 = clean.node_metrics.iter().map(|m| m.duplicates).sum();
        assert_eq!(
            clean_ignored, 0,
            "seed {seed}: fault-free run saw duplicates"
        );
    }
}

/// The trace vocabulary agrees with the kernel's fault ledger, under
/// the full duplicate + reorder stack.
#[test]
fn merge_duplicate_trace_events_match_injected_copies() {
    shard_obs::set_enabled(true);
    let sink = EventSink::in_memory();
    let faulted = run(42, Some(dup_reorder_stack(42)), Some(sink.clone()));
    sink.flush();
    let trace = sink.drain_to_string();

    let count = |event: &str| {
        trace
            .lines()
            .filter(|l| l.contains(&format!("\"event\":{:?}", event)))
            .count() as u64
    };
    assert!(faulted.faults.duplicated > 0, "stack was inert");
    // One nemesis.duplicate event per duplicated message; one
    // merge.duplicate event per ignored redundant delivery; and the
    // totals agree with the kernel's fault ledger.
    assert!(count("nemesis.duplicate") > 0);
    assert_eq!(count("merge.duplicate"), faulted.faults.duplicated);
    assert_eq!(count("nemesis.delay"), faulted.faults.delayed);
    let summary = shard_obs::summarize(&trace);
    assert_eq!(summary.faults.duplicated, faulted.faults.duplicated);
    assert_eq!(summary.faults.delayed, faulted.faults.delayed);
    assert_eq!(summary.faults.dropped, 0);
}
