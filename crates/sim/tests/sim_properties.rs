//! Property-based tests across the simulator's three broadcast/
//! replication modes: whatever the transport, the emitted executions
//! must satisfy the formal model and replicas must converge on what
//! they replicate.

use proptest::prelude::*;
use shard_apps::airline::{AirlineTxn, FlyByNight};
use shard_apps::dictionary::{DictTxn, Dictionary};
use shard_apps::Person;
use shard_core::ObjectModel;
use shard_sim::partition::{PartitionSchedule, PartitionWindow};
use shard_sim::{
    ClusterConfig, CrashSchedule, CrashWindow, DelayModel, GossipConfig, Invocation, NodeId,
    Placement, Runner,
};

fn airline_invs() -> impl Strategy<Value = Vec<Invocation<AirlineTxn>>> {
    proptest::collection::vec(
        (
            prop_oneof![
                (1u32..12).prop_map(|p| AirlineTxn::Request(Person(p))),
                (1u32..12).prop_map(|p| AirlineTxn::Cancel(Person(p))),
                Just(AirlineTxn::MoveUp),
                Just(AirlineTxn::MoveDown),
            ],
            0u64..400,
            0u16..4,
        ),
        0..60,
    )
    .prop_map(|v| {
        let mut invs: Vec<_> = v
            .into_iter()
            .map(|(d, t, n)| Invocation::new(t, NodeId(n), d))
            .collect();
        invs.sort_by_key(|i| i.time);
        invs
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Gossip mode: valid executions, convergence, no lost transactions.
    #[test]
    fn gossip_mode_is_sound(
        invs in airline_invs(),
        seed in 0u64..500,
        interval in 5u64..200,
    ) {
        let app = FlyByNight::new(4);
        let cluster = Runner::gossip(
            &app,
            ClusterConfig {
                nodes: 4,
                seed,
                delay: DelayModel::Exponential { mean: 20 },
                ..Default::default()
            },
            GossipConfig { interval },
        );
        let n = invs.len();
        let report = cluster.run(invs);
        prop_assert_eq!(report.transactions.len(), n);
        prop_assert!(report.mutually_consistent());
        let te = report.timed_execution();
        prop_assert!(te.execution.verify(&app).is_ok());
    }

    /// Crash mode: rejected + executed partitions the submissions; the
    /// execution stays valid and replicas converge.
    #[test]
    fn crash_mode_is_sound(
        invs in airline_invs(),
        seed in 0u64..500,
        start in 0u64..300,
        len in 1u64..300,
        victim in 0u16..4,
    ) {
        let app = FlyByNight::new(4);
        let crashes =
            CrashSchedule::new(vec![CrashWindow::new(NodeId(victim), start, start + len)]);
        let cluster = Runner::eager(
            &app,
            ClusterConfig {
                nodes: 4,
                seed,
                delay: DelayModel::Fixed(9),
                crashes,
                ..Default::default()
            },
        );
        let n = invs.len();
        let report = cluster.run(invs);
        prop_assert_eq!(report.transactions.len() + report.rejected.len(), n);
        let rejects_in_window = report
            .rejected
            .iter()
            .all(|(t, node)| *node == NodeId(victim) && *t >= start && *t < start + len);
        prop_assert!(rejects_in_window);
        prop_assert!(report.mutually_consistent());
        prop_assert!(report.timed_execution().execution.verify(&app).is_ok());
    }

    /// Partial replication of the dictionary: per-bucket agreement and
    /// valid executions for arbitrary key workloads.
    #[test]
    fn partial_dictionary_is_sound(
        ops in proptest::collection::vec((0u8..3, 0u32..32, 0u64..300), 0..50),
        seed in 0u64..500,
        factor in 1u16..4,
    ) {
        let app = Dictionary;
        let objects = app.objects();
        let placement = Placement::round_robin(4, &objects, factor);
        let mut invs = Vec::new();
        for (kind, key, t) in ops {
            let txn = match kind {
                0 => DictTxn::Insert(key, u64::from(key) + 1),
                1 => DictTxn::Delete(key),
                _ => DictTxn::Lookup(key),
            };
            let Some(node) = placement.any_holder_of_all(&app.decision_objects(&txn)) else {
                continue;
            };
            invs.push(Invocation::new(t, node, txn));
        }
        invs.sort_by_key(|i| i.time);
        let cluster = Runner::partial(
            &app,
            ClusterConfig {
                nodes: 4,
                seed,
                delay: DelayModel::Exponential { mean: 15 },
                ..Default::default()
            },
            placement.clone(),
        );
        let report = cluster.run(invs);
        prop_assert!(report.objects_consistent(&app, &placement));
        prop_assert!(report.timed_execution().execution.verify(&app).is_ok());
    }

    /// Flood and gossip agree on the *final* database (same invocations,
    /// same serial-order semantics — only staleness differs in flight).
    #[test]
    fn flood_and_gossip_agree_on_the_final_state(
        invs in airline_invs(),
        seed in 0u64..500,
    ) {
        let app = FlyByNight::new(4);
        let cfg = ClusterConfig {
            nodes: 4,
            seed,
            delay: DelayModel::Fixed(11),
            ..Default::default()
        };
        // NOTE: decisions depend on what each node has *seen*, so the
        // two transports can pick different updates; what must agree is
        // each system with its own formal execution. Compare each
        // against its own model rather than against each other.
        let flood = Runner::eager(&app, cfg.clone()).run(invs.clone());
        let te = flood.timed_execution();
        prop_assert_eq!(&flood.final_states[0], &te.execution.final_state(&app));
        let gossip =
            Runner::gossip(&app, cfg, GossipConfig { interval: 40 }).run(invs);
        let te = gossip.timed_execution();
        prop_assert_eq!(&gossip.final_states[0], &te.execution.final_state(&app));
    }

    /// Partition schedules: `next_connected` always returns a time at
    /// which the pair is in fact connected, and `connected` is symmetric.
    #[test]
    fn partition_queries_are_coherent(
        windows in proptest::collection::vec((0u64..200, 1u64..200, 0u16..4), 0..4),
        t in 0u64..500,
        a in 0u16..4,
        b in 0u16..4,
    ) {
        let schedule = PartitionSchedule::new(
            windows
                .into_iter()
                .map(|(s, len, node)| PartitionWindow::isolate(s, s + len, vec![NodeId(node)]))
                .collect(),
        );
        let (a, b) = (NodeId(a), NodeId(b));
        prop_assert_eq!(schedule.connected(t, a, b), schedule.connected(t, b, a));
        let up = schedule.next_connected(t, a, b);
        prop_assert!(up >= t);
        prop_assert!(schedule.connected(up, a, b));
    }
}
