//! Integration tests of the §3.3 barrier protocol: critical
//! transactions wait for promised updates and obtain (near-)complete
//! prefixes, paying measurable latency.

use shard_apps::airline::{AirlineTxn, FlyByNight};
use shard_apps::Person;
use shard_core::conditions;
use shard_sim::partition::{PartitionSchedule, PartitionWindow};
use shard_sim::{ClusterConfig, DelayModel, Invocation, NodeId, Runner};

fn is_mover(d: &AirlineTxn) -> bool {
    matches!(d, AirlineTxn::MoveUp | AirlineTxn::MoveDown)
}

#[test]
fn critical_transaction_sees_all_prior_activity() {
    let app = FlyByNight::new(3);
    let cluster = Runner::eager(
        &app,
        ClusterConfig {
            nodes: 3,
            seed: 1,
            delay: DelayModel::Fixed(50),
            ..Default::default()
        },
    );
    // Requests land on all nodes; a critical MOVE-UP at node 0 shortly
    // after — without the barrier it would see almost nothing (50-tick
    // delays); with it, it waits and sees everything submitted earlier.
    let invs = vec![
        Invocation::new(0, NodeId(0), AirlineTxn::Request(Person(1))),
        Invocation::new(1, NodeId(1), AirlineTxn::Request(Person(2))),
        Invocation::new(2, NodeId(2), AirlineTxn::Request(Person(3))),
        Invocation::new(3, NodeId(0), AirlineTxn::MoveUp),
    ];
    let report = cluster.run_with_critical(invs, is_mover);
    assert!(report.mutually_consistent());
    assert_eq!(report.barrier_latencies.len(), 1);
    assert!(
        report.barrier_latencies[0] >= 100,
        "probe + promise round trip"
    );
    let te = report.timed_execution();
    te.execution.verify(&app).unwrap();
    // The mover is the last transaction in the serial order and misses
    // nothing.
    let mover = (0..te.execution.len())
        .find(|&i| is_mover(&te.execution.record(i).decision))
        .unwrap();
    assert_eq!(conditions::missed_count(&te.execution, mover), 0);
    // It therefore seated the *first* requester.
    assert!(te.execution.final_state(&app).is_assigned(Person(1)));
}

#[test]
fn barrier_waits_out_partitions() {
    let app = FlyByNight::new(3);
    let partitions =
        PartitionSchedule::new(vec![PartitionWindow::isolate(0, 1000, vec![NodeId(1)])]);
    let cluster = Runner::eager(
        &app,
        ClusterConfig {
            nodes: 2,
            seed: 2,
            delay: DelayModel::Fixed(10),
            partitions,
            ..Default::default()
        },
    );
    let invs = vec![
        Invocation::new(5, NodeId(1), AirlineTxn::Request(Person(1))),
        Invocation::new(20, NodeId(0), AirlineTxn::MoveUp),
    ];
    let report = cluster.run_with_critical(invs, is_mover);
    // The critical mover could not execute until the partition healed.
    assert_eq!(report.barrier_latencies.len(), 1);
    assert!(
        report.barrier_latencies[0] >= 980,
        "waited for the heal at t=1000"
    );
    // Having waited, it saw the isolated node's request.
    let te = report.timed_execution();
    let mover = (0..te.execution.len())
        .find(|&i| is_mover(&te.execution.record(i).decision))
        .unwrap();
    assert_eq!(conditions::missed_count(&te.execution, mover), 0);
}

#[test]
fn non_critical_runs_are_unchanged() {
    let app = FlyByNight::new(3);
    let invs = vec![
        Invocation::new(0, NodeId(0), AirlineTxn::Request(Person(1))),
        Invocation::new(10, NodeId(1), AirlineTxn::MoveUp),
    ];
    let mk = || {
        Runner::eager(
            &app,
            ClusterConfig {
                nodes: 2,
                seed: 3,
                delay: DelayModel::Fixed(20),
                ..Default::default()
            },
        )
    };
    let plain = mk().run(invs.clone());
    let with_pred = mk().run_with_critical(invs, |_| false);
    assert_eq!(plain.final_states, with_pred.final_states);
    assert!(with_pred.barrier_latencies.is_empty());
}

#[test]
fn single_node_criticals_run_immediately() {
    let app = FlyByNight::new(3);
    let cluster = Runner::eager(
        &app,
        ClusterConfig {
            nodes: 1,
            seed: 4,
            ..Default::default()
        },
    );
    let invs = vec![
        Invocation::new(0, NodeId(0), AirlineTxn::Request(Person(1))),
        Invocation::new(1, NodeId(0), AirlineTxn::MoveUp),
    ];
    let report = cluster.run_with_critical(invs, is_mover);
    assert!(report.barrier_latencies.is_empty(), "no peers, no barrier");
    assert_eq!(report.final_states[0].al(), 1);
}

#[test]
fn many_criticals_all_clear() {
    let app = FlyByNight::new(10);
    let cluster = Runner::eager(
        &app,
        ClusterConfig {
            nodes: 4,
            seed: 5,
            delay: DelayModel::Exponential { mean: 30 },
            ..Default::default()
        },
    );
    let mut invs = Vec::new();
    for i in 1..=20u32 {
        invs.push(Invocation::new(
            i as u64 * 7,
            NodeId((i % 4) as u16),
            AirlineTxn::Request(Person(i)),
        ));
        invs.push(Invocation::new(
            i as u64 * 7 + 3,
            NodeId(0),
            AirlineTxn::MoveUp,
        ));
    }
    let report = cluster.run_with_critical(invs, is_mover);
    assert_eq!(report.barrier_latencies.len(), 20);
    assert!(report.mutually_consistent());
    let te = report.timed_execution();
    te.execution.verify(&app).unwrap();
    // Movers are rarely perfect (transactions submitted between probe
    // and execution can be missed) but see the overwhelming majority.
    let worst = (0..te.execution.len())
        .filter(|&i| is_mover(&te.execution.record(i).decision))
        .map(|i| conditions::missed_count(&te.execution, i))
        .max()
        .unwrap();
    assert!(worst <= 4, "near-complete prefixes, got worst miss {worst}");
}
