//! # shard-sim — a SHARD-style replicated database simulator
//!
//! A deterministic discrete-event simulation of the system sketched in
//! §1.2 and §3.3 of Lynch/Blaustein/Siegel 1986: a network of nodes,
//! **each holding a copy of the complete database** (full replication),
//! processing transactions locally and broadcasting only the *update
//! parts* to every other node.
//!
//! * [`clock`] — globally unique timestamps from Lamport clocks with
//!   node-id tiebreaks; the total transaction order every node agrees on.
//! * [`events`] — the discrete-event queue all simulations share.
//! * [`delay`] — message delay models (fixed / uniform / exponential).
//! * [`partition`] — partition schedules: time windows during which the
//!   nodes are split into disconnected groups.
//! * [`broadcast`] — reliable broadcast via per-link retry: messages
//!   blocked by a partition are retried until the network heals, so
//!   barring permanent failure every node eventually receives every
//!   update (the \[GLBKSS\] guarantee, which is all the paper relies on).
//! * [`merge`] — the undo/redo merge engine: each node keeps its copy
//!   equal to the effect of running all updates it knows in timestamp
//!   order, rolling back to a checkpoint and replaying when an update
//!   arrives out of order (\[BK\]/\[SKS\]); exposes undo/redo metrics.
//! * [`kernel`] — **the one event loop**: a [`Runner`] drives
//!   Invoke/Deliver/Tick events over shared [`kernel::Node`] replicas
//!   with partition, crash and delay gating applied uniformly, emits a
//!   formal [`shard_core::TimedExecution`] (the simulator's behaviour is
//!   checked against the paper's model, not trusted), and implements the
//!   §3.3 *barrier protocol* giving designated critical transactions
//!   (near-)complete prefixes ([`Runner::run_with_critical`]). How
//!   updates travel is a pluggable [`Propagation`] strategy.
//! * [`transport`] — the kernel's time and delivery seams: the
//!   [`Clock`] trait ([`VirtualClock`] for simulation, [`WallClock`]
//!   with globally unique microsecond ticks for live runs) and the
//!   [`Transport`] trait ([`QueueTransport`] over the event queue here;
//!   real `std::sync::mpsc` channels in `shard-runtime`).
//! * [`cluster`] — the [`EagerBroadcast`] strategy (per-update flooding,
//!   optional full-log piggybacking for transitivity), entered via
//!   [`Runner::eager`].
//! * [`gossip`] — the [`Gossip`] anti-entropy strategy (periodic random
//!   partners, whole-log pushes), the [`GossipDelta`] variant (full
//!   fanout, ships only entries merged since the node's last round),
//!   and the composed [`GossipPlacement`] strategy (gossip × partial
//!   replication), entered via [`Runner::gossip`].
//! * [`partial`] — the §6 generalization: partial replication with
//!   per-object [`Placement`]s ([`PartialPlacement`] strategy, entered
//!   via [`Runner::partial`]), preserving all correctness conditions
//!   while reducing message volume.
//! * [`monitor`] — live §3 verification inside the kernel loop: a
//!   [`LiveMonitor`] seals executed transactions behind a Lamport
//!   watermark and streams them to a [`shard_core::StreamChecker`], so
//!   verdicts (and an optional early abort) arrive while the run is
//!   still going, bit-identical to the offline checkers.
//! * [`nemesis`] — seeded, composable fault injection plugged into the
//!   kernel transport ([`Runner::with_nemesis`]): message drop,
//!   duplication and adversarial reordering, jittered partition and
//!   crash windows; plus recording, exact replay and delta-debugging
//!   shrinking of violating fault schedules.
//!
//! The structural guarantee: because receiving a message advances the
//! Lamport clock past the sender's timestamp, a node can never know an
//! update with a larger timestamp than the one it will assign next — so
//! every transaction's known set is a subsequence of its *prefix*, i.e.
//! the prefix subsequence condition (§3.1) holds by construction —
//! under *every* propagation strategy, because they all ride the same
//! kernel.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod broadcast;
pub mod clock;
pub mod cluster;
pub mod crash;
pub mod delay;
pub mod durable;
pub mod events;
pub mod gossip;
pub mod kernel;
pub mod known;
pub mod merge;
pub mod monitor;
pub mod nemesis;
pub mod partial;
pub mod partition;
pub mod streaming;
pub mod transport;

pub use clock::{LamportClock, NodeId, Timestamp};
#[allow(deprecated)]
pub use cluster::Cluster;
pub use cluster::{ClusterConfig, ClusterReport, EagerBroadcast, ExecutedTxn, Invocation};
pub use crash::{CrashSchedule, CrashWindow};
pub use delay::DelayModel;
pub use durable::{DurabilityConfig, DurableFleet, KillReport, NodeMirror, StoreBackend};
#[allow(deprecated)]
pub use gossip::GossipCluster;
pub use gossip::{Gossip, GossipConfig, GossipDelta, GossipPlacement, GossipReport};
pub use kernel::{FaultStats, Propagation, QueueTransport, RunReport, Runner};
pub use known::KnownSet;
pub use merge::{MergeLog, MergeMetrics, MergeOutcome};
pub use monitor::{LiveMonitor, MonitorConfig};
pub use nemesis::{
    CrashInjector, CrashRecoverInjector, Fate, FaultEvent, FaultLog, MessageDropper,
    MessageDuplicator, MessageReorderer, MsgCtx, Nemesis, NemesisStack, PartitionJitter, Recorder,
    ScheduledNemesis,
};
#[allow(deprecated)]
pub use partial::PartialCluster;
pub use partial::{PartialPlacement, PartialReport, Placement};
pub use partition::{PartitionSchedule, PartitionWindow};
pub use streaming::StreamingMerge;
pub use transport::{Clock, Transport, VirtualClock, WallClock};
