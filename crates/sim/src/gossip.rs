//! Anti-entropy gossip broadcast — the [GLBKSS]-style alternative to
//! per-update flooding.
//!
//! §1.2 relies on a reliable broadcast that delivers "in as timely a
//! manner as possible" but tolerates arbitrary delay. The flooding model
//! in [`crate::cluster`] sends every update to every peer directly; real
//! deployments (and the Grapevine lineage the paper cites) often use
//! **anti-entropy**: each node periodically picks a partner and pushes
//! everything it knows. Gossip gives eventual delivery with per-round
//! (not per-update) message cost, at the price of higher propagation
//! delay — i.e. larger `k`. Experiment E17 measures that trade.
//!
//! The [`GossipCluster`] is deliberately omniscient about *termination
//! only*: rounds stop once every replica holds every update and no
//! client invocations remain — a simulation-harness stopping rule, not
//! protocol logic.

use crate::broadcast::delivery_time;
use crate::clock::{LamportClock, NodeId, Timestamp};
use crate::cluster::{emit_schedule, merge_traced, ClusterConfig, ExecutedTxn, Invocation};
use crate::events::{EventQueue, SimTime};
use crate::merge::{MergeLog, MergeMetrics};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shard_core::{Application, Execution, ExternalAction, TimedExecution, TxnRecord};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Configuration of the gossip layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GossipConfig {
    /// How often each node initiates an anti-entropy round.
    pub interval: SimTime,
}

impl Default for GossipConfig {
    /// One round per 50 ticks.
    fn default() -> Self {
        GossipConfig { interval: 50 }
    }
}

/// Result of a gossip-cluster run.
#[derive(Clone, Debug)]
pub struct GossipReport<A: Application> {
    /// Executed transactions in timestamp order.
    pub transactions: Vec<ExecutedTxn<A>>,
    /// Per-node undo/redo metrics.
    pub node_metrics: Vec<MergeMetrics>,
    /// External actions in real time.
    pub external_actions: Vec<(SimTime, NodeId, ExternalAction)>,
    /// Final states (all equal after the run drains).
    pub final_states: Vec<A::State>,
    /// Anti-entropy rounds performed.
    pub gossip_rounds: u64,
    /// Total `(timestamp, update)` pairs shipped across all rounds —
    /// gossip's bandwidth cost.
    pub entries_shipped: u64,
}

impl<A: Application> GossipReport<A> {
    /// Whether all replicas agree.
    pub fn mutually_consistent(&self) -> bool {
        self.final_states.windows(2).all(|w| w[0] == w[1])
    }

    /// The formal timed execution.
    pub fn timed_execution(&self) -> TimedExecution<A> {
        let index_of: BTreeMap<Timestamp, usize> = self
            .transactions
            .iter()
            .enumerate()
            .map(|(i, t)| (t.ts, i))
            .collect();
        let mut exec = Execution::new();
        let mut times = Vec::with_capacity(self.transactions.len());
        for t in &self.transactions {
            let mut prefix: Vec<usize> = t
                .known
                .iter()
                .map(|ts| {
                    *index_of.get(ts).expect(
                        "simulator invariant: every timestamp a node knew at \
                         decision time belongs to an executed transaction",
                    )
                })
                .collect();
            prefix.sort_unstable();
            exec.push_record(TxnRecord {
                decision: t.decision.clone(),
                prefix,
                update: t.update.clone(),
                external_actions: t.external_actions.clone(),
            });
            times.push(t.time);
        }
        TimedExecution::new(exec, times)
    }
}

enum Event<A: Application> {
    Invoke {
        node: NodeId,
        decision: A::Decision,
    },
    Tick {
        node: NodeId,
    },
    /// A whole-log push: the entries are `Arc`-shared with the sender's
    /// log, so shipping a round costs refcounts, not update clones.
    Push {
        to: NodeId,
        entries: Vec<(Timestamp, Arc<A::Update>)>,
    },
}

struct NodeState<A: Application> {
    clock: LamportClock,
    log: MergeLog<A>,
}

/// A SHARD cluster whose updates spread by anti-entropy gossip instead
/// of flooding.
pub struct GossipCluster<'a, A: Application> {
    app: &'a A,
    config: ClusterConfig,
    gossip: GossipConfig,
}

impl<'a, A: Application> GossipCluster<'a, A> {
    /// Creates the cluster. The `delay` and `partitions` of `config`
    /// govern the gossip pushes; `piggyback` is ignored (gossip *is*
    /// full piggybacking).
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero nodes or the gossip interval
    /// is zero.
    pub fn new(app: &'a A, config: ClusterConfig, gossip: GossipConfig) -> Self {
        assert!(config.nodes > 0, "a cluster needs at least one node");
        assert!(gossip.interval > 0, "gossip needs a positive interval");
        GossipCluster {
            app,
            config,
            gossip,
        }
    }

    /// Runs the schedule until every replica has every update.
    ///
    /// # Panics
    ///
    /// Panics if an invocation names a node outside the cluster.
    pub fn run(&self, invocations: Vec<Invocation<A::Decision>>) -> GossipReport<A> {
        let app = self.app;
        let cfg = &self.config;
        let run_span = shard_obs::span!("sim.gossip.run");
        if let Some(sink) = cfg.sink.as_deref() {
            emit_schedule(sink, &cfg.partitions, &cfg.crashes);
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x60551b);
        let mut nodes: Vec<NodeState<A>> = (0..cfg.nodes)
            .map(|i| NodeState {
                clock: LamportClock::new(NodeId(i)),
                log: MergeLog::new(app, cfg.checkpoint_every),
            })
            .collect();
        let mut queue: EventQueue<Event<A>> = EventQueue::new();
        let mut remaining_invokes = 0u64;
        for inv in invocations {
            assert!(
                (inv.node.0) < cfg.nodes,
                "invocation at unknown node {}",
                inv.node
            );
            remaining_invokes += 1;
            queue.schedule(
                inv.time,
                Event::Invoke {
                    node: inv.node,
                    decision: inv.decision,
                },
            );
        }
        for i in 0..cfg.nodes {
            queue.schedule(self.gossip.interval, Event::Tick { node: NodeId(i) });
        }

        let mut transactions: Vec<ExecutedTxn<A>> = Vec::new();
        let mut external_actions: Vec<(SimTime, NodeId, ExternalAction)> = Vec::new();
        let mut total_txns = 0u64;
        let mut gossip_rounds = 0u64;
        let mut entries_shipped = 0u64;

        while let Some((now, event)) = queue.pop() {
            match event {
                Event::Invoke { node, decision } => {
                    remaining_invokes -= 1;
                    total_txns += 1;
                    if let Some(sink) = cfg.sink.as_deref() {
                        sink.event("execute")
                            .u64("t", now)
                            .u64("node", u64::from(node.0))
                            .emit();
                    }
                    let n = &mut nodes[node.0 as usize];
                    let ts = n.clock.tick();
                    let known = n.log.known_timestamps();
                    let outcome = app.decide(&decision, n.log.state());
                    for a in &outcome.external_actions {
                        external_actions.push((now, node, a.clone()));
                    }
                    n.log.merge(app, ts, outcome.update.clone());
                    transactions.push(ExecutedTxn {
                        ts,
                        time: now,
                        node,
                        decision,
                        update: outcome.update,
                        external_actions: outcome.external_actions,
                        known,
                    });
                }
                Event::Tick { node } => {
                    // Stop ticking once everything has drained.
                    let all_synced = remaining_invokes == 0
                        && nodes.iter().all(|n| n.log.len() as u64 == total_txns);
                    if all_synced {
                        continue;
                    }
                    if cfg.nodes > 1 {
                        // Pick a random partner; skip the round if the
                        // partition blocks it right now.
                        let mut peer = NodeId(rng.random_range(0..cfg.nodes));
                        while peer == node {
                            peer = NodeId(rng.random_range(0..cfg.nodes));
                        }
                        if cfg.partitions.connected(now, node, peer) {
                            gossip_rounds += 1;
                            let entries: Vec<(Timestamp, Arc<A::Update>)> =
                                nodes[node.0 as usize].log.entries().to_vec();
                            entries_shipped += entries.len() as u64;
                            let at = delivery_time(
                                &cfg.partitions,
                                &cfg.delay,
                                &mut rng,
                                now,
                                node,
                                peer,
                            );
                            queue.schedule(at, Event::Push { to: peer, entries });
                        }
                    }
                    queue.schedule(now + self.gossip.interval, Event::Tick { node });
                }
                Event::Push { to, entries } => {
                    let sink = cfg.sink.as_deref();
                    if let Some(s) = sink {
                        s.event("deliver")
                            .u64("t", now)
                            .u64("node", u64::from(to.0))
                            .u64("entries", entries.len() as u64)
                            .emit();
                    }
                    let n = &mut nodes[to.0 as usize];
                    for (ts, update) in entries {
                        n.clock.observe(ts);
                        merge_traced(app, sink, &mut n.log, ts, update, now, to);
                    }
                }
            }
        }

        if let Some(sink) = cfg.sink.as_deref() {
            sink.event("span")
                .str("name", "sim.gossip.run")
                .u64("ns", run_span.elapsed_ns())
                .emit();
            sink.flush();
        }
        transactions.sort_by_key(|t| t.ts);
        GossipReport {
            node_metrics: nodes.iter().map(|n| n.log.metrics()).collect(),
            final_states: nodes.into_iter().map(|n| n.log.into_state()).collect(),
            transactions,
            external_actions,
            gossip_rounds,
            entries_shipped,
        }
    }
}
