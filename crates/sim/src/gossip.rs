//! Anti-entropy gossip broadcast — the \[GLBKSS\]-style alternative to
//! per-update flooding.
//!
//! §1.2 relies on a reliable broadcast that delivers "in as timely a
//! manner as possible" but tolerates arbitrary delay. The flooding model
//! in [`crate::cluster`] sends every update to every peer directly; real
//! deployments (and the Grapevine lineage the paper cites) often use
//! **anti-entropy**: each node periodically picks a partner and pushes
//! everything it knows. Gossip gives eventual delivery with per-round
//! (not per-update) message cost, at the price of higher propagation
//! delay — i.e. larger `k`. Experiment E17 measures that trade.
//!
//! Since the kernel refactor this module only contributes propagation
//! strategies — [`Gossip`] (uniform random partners) and
//! [`GossipPlacement`] (gossip × partial replication: rounds ship only
//! the entries the partner's placement cares about) — plus the
//! [`Runner::gossip`] constructor (and the deprecated `GossipCluster`
//! facade wrapping it). The event loop, failure gating and traced
//! merging live in [`crate::kernel`], shared with every other strategy.
//!
//! Termination is deliberately omniscient about *convergence only*:
//! rounds stop once every replica holds every update it should and no
//! client invocations remain — a simulation-harness stopping rule, not
//! protocol logic ([`crate::kernel::Propagation::synced`]).

use crate::clock::{NodeId, Timestamp};
use crate::events::SimTime;
use crate::kernel::{Entries, Node, Propagation, RunReport, Runner};
use crate::partial::Placement;
use crate::transport::Transport;
use rand::Rng;
use shard_core::{Application, ObjectModel};
use std::sync::Arc;

use crate::kernel::{ClusterConfig, ExecutedTxn, Invocation};

/// Configuration of the gossip layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GossipConfig {
    /// How often each node initiates an anti-entropy round.
    pub interval: SimTime,
}

impl Default for GossipConfig {
    /// One round per 50 ticks.
    fn default() -> Self {
        GossipConfig { interval: 50 }
    }
}

/// Result of a gossip-cluster run (alias of the kernel-wide report; the
/// interesting fields are [`RunReport::rounds`] and
/// [`RunReport::entries_shipped`]).
pub type GossipReport<A> = RunReport<A>;

/// Anti-entropy propagation: nothing is sent at execution time; every
/// `interval` ticks each live node picks `fanout` uniform random
/// partners and pushes its whole log (rounds blocked by a partition are
/// skipped, not retried early).
///
/// `Gossip { interval: 1, fanout: n }` degenerates to deterministic
/// flooding — with fanout ≥ `nodes − 1` the strategy pushes to *all*
/// peers in node order without consuming randomness, which is what makes
/// the cross-strategy equivalence suite exact.
#[derive(Clone, Copy, Debug)]
pub struct Gossip {
    /// How often each node initiates an anti-entropy round.
    pub interval: SimTime,
    /// Number of random partners pushed to per round.
    pub fanout: u16,
}

impl Gossip {
    /// Builds the shared log snapshot one round ships.
    fn snapshot<A: Application>(node: &Node<A>) -> Entries<A> {
        Arc::from(node.log.entries().to_vec())
    }

    /// Picks a uniform random partner other than `node` (the historical
    /// redraw-while-self scheme, preserving the seed's draw sequence).
    fn partner<A: Application>(net: &mut dyn Transport<A>, node: NodeId) -> NodeId {
        let n = net.nodes();
        let mut peer = NodeId(net.rng().random_range(0..n));
        while peer == node {
            peer = NodeId(net.rng().random_range(0..n));
        }
        peer
    }
}

impl<A: Application> Propagation<A> for Gossip {
    fn label(&self) -> &'static str {
        "gossip"
    }

    fn tick_interval(&self) -> Option<SimTime> {
        Some(self.interval)
    }

    fn on_execute(
        &mut self,
        _app: &A,
        _net: &mut dyn Transport<A>,
        _node: &Node<A>,
        _now: SimTime,
        _ts: Timestamp,
        _update: &Arc<A::Update>,
    ) {
    }

    fn on_tick(&mut self, _app: &A, net: &mut dyn Transport<A>, node: &Node<A>, now: SimTime) {
        let n = net.nodes();
        if n <= 1 {
            return;
        }
        let entries = Self::snapshot(node);
        if u32::from(self.fanout) >= u32::from(n) - 1 {
            // Full fanout: push to every peer deterministically (no
            // randomness consumed), skipping partitioned ones.
            for peer in 0..n {
                let to = NodeId(peer);
                if to == node.id {
                    continue;
                }
                if net.connected(now, node.id, to) {
                    net.send(now, node.id, to, Arc::clone(&entries));
                }
            }
        } else {
            for _ in 0..self.fanout {
                let peer = Self::partner(net, node.id);
                // Skip the round if the partition blocks it right now.
                if net.connected(now, node.id, peer) {
                    net.send(now, node.id, peer, Arc::clone(&entries));
                }
            }
        }
    }

    fn synced(&self, _app: &A, nodes: &[Node<A>], transactions: &[ExecutedTxn<A>]) -> bool {
        synced_on_identical_logs(nodes, transactions)
    }
}

/// The gossip strategies' shared stopping rule: every replica's log is
/// identical and covers at least every transaction this run executed.
/// On an ordinary run this is exactly "every log holds all `n` executed
/// transactions"; on a run whose nodes recovered durable state from a
/// previous process ([`crate::Runner::with_durability`]) the recovered
/// entries inflate the logs past this run's transaction count, so the
/// rule compares the logs themselves. Length equality is the cheap
/// gate; the known-set comparison runs only once lengths agree.
fn synced_on_identical_logs<A: Application>(
    nodes: &[Node<A>],
    transactions: &[ExecutedTxn<A>],
) -> bool {
    let len0 = nodes[0].log.len();
    len0 >= transactions.len()
        && nodes.iter().all(|n| n.log.len() == len0)
        && nodes
            .windows(2)
            .all(|w| w[0].log.known_set() == w[1].log.known_set())
}

/// Delta anti-entropy: every `interval` ticks each node pushes to
/// **every** peer only the entries it merged since its *own* last round
/// — a cursor into the merge log's arrival order
/// ([`crate::MergeLog::arrivals`]), not a log scan. Rounds with nothing
/// new send nothing.
///
/// Whole-log gossip ([`Gossip`]) re-ships the entire log every round:
/// O(rounds · log) entries on the wire and through the receiving merge
/// path, which turns quadratic the moment rounds overlap sustained
/// load. Delta rounds ship each entry from each node at most once —
/// O(entries · n²) total — which is what makes 10⁵-transaction live
/// gossip runs feasible. Propagation is flooding: a node re-ships
/// whatever it just *learned* (from anyone), so an update reaches
/// everyone within two rounds of its first delivery.
///
/// Fanout is always full, and a cursor advances whether or not a given
/// peer was reachable — an entry dropped by a partition is only
/// re-delivered via third parties, so under adversarial partitions the
/// omniscient [`Propagation::synced`] rule may never hold. Use
/// [`Gossip`] for chaos schedules; `GossipDelta` is the live-runtime
/// strategy (`shard-runtime --mode gossip`), where its determinism
/// (no partner sampling, no randomness) makes record–replay exact.
#[derive(Clone, Debug)]
pub struct GossipDelta {
    /// How often each node initiates a delta round.
    pub interval: SimTime,
    /// Per-node cursors into each node's [`crate::MergeLog::arrivals`]:
    /// everything before the cursor has been offered to every peer. In
    /// the kernel one strategy instance serves all nodes; in the live
    /// runtime each node thread owns an instance and uses only its own
    /// slot — the behavior per node is identical either way.
    cursors: Vec<usize>,
}

impl GossipDelta {
    /// A delta-gossip strategy pushing every `interval` ticks.
    pub fn new(interval: SimTime) -> Self {
        GossipDelta {
            interval,
            cursors: Vec::new(),
        }
    }
}

impl<A: Application> Propagation<A> for GossipDelta {
    fn label(&self) -> &'static str {
        "gossip_delta"
    }

    fn tick_interval(&self) -> Option<SimTime> {
        Some(self.interval)
    }

    fn on_execute(
        &mut self,
        _app: &A,
        _net: &mut dyn Transport<A>,
        _node: &Node<A>,
        _now: SimTime,
        _ts: Timestamp,
        _update: &Arc<A::Update>,
    ) {
        // A node's own update enters its log (and arrival order) at
        // execute time; the next round ships it like any other delta.
    }

    fn on_tick(&mut self, _app: &A, net: &mut dyn Transport<A>, node: &Node<A>, now: SimTime) {
        let n = net.nodes();
        if n <= 1 {
            return;
        }
        let idx = usize::from(node.id.0);
        if self.cursors.len() <= idx {
            self.cursors.resize(idx + 1, 0);
        }
        let arrivals = node.log.arrivals();
        let cur = self.cursors[idx];
        if cur == arrivals.len() {
            return;
        }
        self.cursors[idx] = arrivals.len();
        // Resolve the new arrivals to entries and ship them sorted —
        // an ascending batch is the receiving merge path's fast case.
        let log = node.log.entries();
        let mut delta: Vec<(Timestamp, Arc<A::Update>)> = arrivals[cur..]
            .iter()
            .map(|ts| {
                let i = log
                    .binary_search_by_key(ts, |(t, _)| *t)
                    .expect("every arrival is in the log");
                (log[i].0, Arc::clone(&log[i].1))
            })
            .collect();
        delta.sort_unstable_by_key(|(ts, _)| *ts);
        let entries: Entries<A> = delta.into();
        for peer in 0..n {
            let to = NodeId(peer);
            if to == node.id {
                continue;
            }
            if net.connected(now, node.id, to) {
                net.send(now, node.id, to, Arc::clone(&entries));
            }
        }
    }

    fn synced(&self, _app: &A, nodes: &[Node<A>], transactions: &[ExecutedTxn<A>]) -> bool {
        synced_on_identical_logs(nodes, transactions)
    }
}

/// Gossip over partial replication — the composed scenario the kernel
/// refactor unlocks (experiment E20). Rounds run exactly like
/// [`Gossip`]'s, but a push to a partner ships only the entries that
/// partner's [`Placement`] cares about: updates writing one of its held
/// objects, plus empty-write updates (pure serial-order information,
/// relevant everywhere). Rounds with nothing relevant to say are
/// skipped entirely.
#[derive(Clone, Debug)]
pub struct GossipPlacement {
    /// How often each node initiates an anti-entropy round.
    pub interval: SimTime,
    /// Number of random partners pushed to per round.
    pub fanout: u16,
    /// Which nodes replicate which objects.
    pub placement: Placement,
}

impl GossipPlacement {
    /// Whether `update` matters to `node` under this placement.
    fn relevant<A: ObjectModel>(&self, app: &A, node: NodeId, update: &A::Update) -> bool {
        let writes = app.update_objects(update);
        writes.is_empty() || writes.iter().any(|o| self.placement.holds(node, *o))
    }

    /// The subset of `node`'s log that `to` cares about.
    fn selection<A: ObjectModel>(&self, app: &A, node: &Node<A>, to: NodeId) -> Entries<A> {
        node.log
            .entries()
            .iter()
            .filter(|(_, u)| self.relevant(app, to, u))
            .cloned()
            .collect::<Vec<_>>()
            .into()
    }
}

impl<A: ObjectModel> Propagation<A> for GossipPlacement {
    fn label(&self) -> &'static str {
        "gossip_partial"
    }

    fn tick_interval(&self) -> Option<SimTime> {
        Some(self.interval)
    }

    fn on_execute(
        &mut self,
        _app: &A,
        _net: &mut dyn Transport<A>,
        _node: &Node<A>,
        _now: SimTime,
        _ts: Timestamp,
        _update: &Arc<A::Update>,
    ) {
    }

    fn on_tick(&mut self, app: &A, net: &mut dyn Transport<A>, node: &Node<A>, now: SimTime) {
        if net.nodes() <= 1 {
            return;
        }
        for _ in 0..self.fanout {
            let peer = Gossip::partner(net, node.id);
            if !net.connected(now, node.id, peer) {
                continue;
            }
            let entries = self.selection(app, node, peer);
            if !entries.is_empty() {
                net.send(now, node.id, peer, entries);
            }
        }
    }

    /// Converged when every node's log contains every executed update
    /// relevant to it (per-object completeness, not global identity).
    fn synced(&self, app: &A, nodes: &[Node<A>], transactions: &[ExecutedTxn<A>]) -> bool {
        transactions.iter().all(|t| {
            nodes.iter().all(|n| {
                !self.relevant(app, n.id, &t.update)
                    || n.log
                        .entries()
                        .binary_search_by_key(&t.ts, |(ts, _)| *ts)
                        .is_ok()
            })
        })
    }
}

impl<'a, A: Application> Runner<'a, A, Gossip> {
    /// A single-partner anti-entropy runner — the canonical entry point
    /// the old [`GossipCluster`] facade wraps. The `delay` and
    /// `partitions` of `config` govern the gossip pushes; `piggyback` is
    /// ignored (gossip *is* full piggybacking).
    ///
    /// The seed is perturbed (`seed ^ 0x60551b`) — a historical quirk
    /// kept for per-seed reproducibility, so flood-vs-gossip comparisons
    /// under one seed don't share delay streams.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero nodes or the gossip interval
    /// is zero.
    pub fn gossip(app: &'a A, mut config: ClusterConfig, gossip: GossipConfig) -> Self {
        config.seed ^= 0x60551b;
        Runner::new(
            app,
            config,
            Gossip {
                interval: gossip.interval,
                fanout: 1,
            },
        )
    }
}

/// A SHARD cluster whose updates spread by anti-entropy gossip instead
/// of flooding (facade over the kernel with a single-partner [`Gossip`]
/// strategy).
#[deprecated(
    since = "0.1.0",
    note = "use `Runner::gossip(app, config, gossip)` instead"
)]
pub struct GossipCluster<'a, A: Application> {
    app: &'a A,
    config: ClusterConfig,
    gossip: GossipConfig,
}

#[allow(deprecated)]
impl<'a, A: Application> GossipCluster<'a, A> {
    /// Creates the cluster — see [`Runner::gossip`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero nodes or the gossip interval
    /// is zero.
    pub fn new(app: &'a A, config: ClusterConfig, gossip: GossipConfig) -> Self {
        assert!(config.nodes > 0, "a cluster needs at least one node");
        assert!(gossip.interval > 0, "gossip needs a positive interval");
        GossipCluster {
            app,
            config,
            gossip,
        }
    }

    /// Runs the schedule until every replica has every update.
    ///
    /// # Panics
    ///
    /// Panics if an invocation names a node outside the cluster.
    pub fn run(&self, invocations: Vec<Invocation<A::Decision>>) -> GossipReport<A> {
        Runner::gossip(self.app, self.config.clone(), self.gossip).run(invocations)
    }
}
