//! Globally unique timestamps (§1.2).
//!
//! "Transactions are totally ordered by a globally-unique timestamp
//! assignment (such as one based on local timestamps with node
//! identifiers used for tiebreaking)". We use Lamport clocks: each node
//! increments its counter on every local transaction and fast-forwards
//! it past the timestamp of every message it receives. The crucial
//! structural consequence (used by the whole reproduction): a node's
//! next timestamp is strictly larger than that of every update it knows,
//! so known sets are always *prefix* subsequences.

use std::fmt;

/// Identifier of a replica node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A globally unique transaction timestamp: Lamport counter with node-id
/// tiebreak. The derived lexicographic order is the global serial order
/// of §3.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp {
    /// Lamport counter value.
    pub lamport: u64,
    /// Originating node (tiebreak).
    pub node: NodeId,
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.lamport, self.node)
    }
}

/// A node's Lamport clock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LamportClock {
    node: NodeId,
    counter: u64,
}

impl LamportClock {
    /// A fresh clock for `node`, starting at zero.
    pub fn new(node: NodeId) -> Self {
        LamportClock { node, counter: 0 }
    }

    /// The owning node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current counter value.
    pub fn current(&self) -> u64 {
        self.counter
    }

    /// Assigns the timestamp for a new local transaction: increments the
    /// counter and stamps it with this node's id.
    pub fn tick(&mut self) -> Timestamp {
        self.counter += 1;
        Timestamp {
            lamport: self.counter,
            node: self.node,
        }
    }

    /// Observes a remote timestamp: fast-forwards the counter so the next
    /// local timestamp exceeds it.
    pub fn observe(&mut self, ts: Timestamp) {
        self.counter = self.counter.max(ts.lamport);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_produces_increasing_timestamps() {
        let mut c = LamportClock::new(NodeId(1));
        let a = c.tick();
        let b = c.tick();
        assert!(a < b);
        assert_eq!(a.node, NodeId(1));
        assert_eq!(c.current(), 2);
    }

    #[test]
    fn observe_fast_forwards() {
        let mut c = LamportClock::new(NodeId(0));
        c.observe(Timestamp {
            lamport: 41,
            node: NodeId(3),
        });
        let t = c.tick();
        assert_eq!(t.lamport, 42);
        // Observing an older timestamp never rewinds.
        c.observe(Timestamp {
            lamport: 5,
            node: NodeId(3),
        });
        assert!(c.tick().lamport > 42);
    }

    #[test]
    fn node_id_breaks_ties() {
        let a = Timestamp {
            lamport: 7,
            node: NodeId(0),
        };
        let b = Timestamp {
            lamport: 7,
            node: NodeId(1),
        };
        assert!(a < b);
        assert_ne!(a, b);
    }

    #[test]
    fn next_local_timestamp_exceeds_everything_observed() {
        // The structural prefix-subsequence guarantee.
        let mut c = LamportClock::new(NodeId(2));
        let observed = [
            Timestamp {
                lamport: 3,
                node: NodeId(0),
            },
            Timestamp {
                lamport: 9,
                node: NodeId(1),
            },
            Timestamp {
                lamport: 6,
                node: NodeId(4),
            },
        ];
        for ts in observed {
            c.observe(ts);
        }
        let next = c.tick();
        assert!(observed.iter().all(|ts| *ts < next));
    }

    #[test]
    fn display_formats() {
        let t = Timestamp {
            lamport: 12,
            node: NodeId(3),
        };
        assert_eq!(t.to_string(), "12@n3");
        assert_eq!(NodeId(3).to_string(), "n3");
    }
}
