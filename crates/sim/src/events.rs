//! The discrete-event core shared by the SHARD simulator and the
//! serializable baseline.
//!
//! Events are ordered by `(time, sequence-number)`: ties in simulated
//! time resolve in insertion order, which keeps runs deterministic for a
//! fixed seed and schedule.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in abstract ticks (the experiments treat one tick as a
/// millisecond, but nothing depends on the unit).
pub type SimTime = u64;

/// A time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_resolve_in_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(7, ());
        q.schedule(3, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(3));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(10, "x");
        assert_eq!(q.pop(), Some((10, "x")));
        q.schedule(5, "y");
        q.schedule(1, "z");
        assert_eq!(q.pop(), Some((1, "z")));
        q.schedule(2, "w");
        assert_eq!(q.pop(), Some((2, "w")));
        assert_eq!(q.pop(), Some((5, "y")));
    }
}
