//! The unified discrete-event replica kernel.
//!
//! Every simulated SHARD variant — eager flooding ([`crate::cluster`]),
//! anti-entropy gossip ([`crate::gossip`]), partial replication
//! ([`crate::partial`]) and their compositions — is the *same* replica
//! loop. §3's system-level conditions (prefix subsequence, transitivity,
//! k-completeness, t-bounded delay) are properties of one
//! communication-and-merge loop; only **how updates travel** differs.
//! This module implements that loop exactly once:
//!
//! * [`Node`] — a replica: Lamport clock, undo/redo [`MergeLog`], and a
//!   count of locally initiated transactions (for §3.3 promises);
//! * `Event`s `Invoke` / `Deliver` / `Tick` (plus the §3.3 barrier's
//!   `Probe` / `Promise`), handled by [`Runner`] with partition, crash
//!   and delay gating applied uniformly: a crashed node rejects client
//!   transactions (with a `reject` trace event), the transport holds
//!   messages to a crashed node until it recovers, and every message
//!   waits out partitions plus one sampled delay
//!   ([`crate::broadcast::delivery_time`]);
//! * a [`Propagation`] strategy deciding what to send on execution
//!   ([`Propagation::on_execute`]) and on periodic anti-entropy ticks
//!   ([`Propagation::on_tick`]), via the [`Transport`] seam;
//! * one [`RunReport`] defining `mutually_consistent`,
//!   `timed_execution` and `total_replayed` for every strategy.
//!
//! Time and delivery are traits ([`crate::transport`]): the loop drives
//! a [`VirtualClock`] and ships messages through [`QueueTransport`], the
//! in-memory implementation of [`Transport`] (partition waits, sampled
//! delays, nemesis fate rewriting). The `shard-runtime` crate reuses the
//! same `Node`/[`Propagation`] logic over a wall clock and real
//! channels, and replays its recorded schedules back through this loop.
//!
//! Strategies also share one structured-event vocabulary: `execute`,
//! `deliver` (with `from` and `entries` fields), `reject`, and the
//! `merge.append` / `merge.out_of_order` / `merge.duplicate` outcomes of
//! the traced merge are emitted identically whatever the transport.

use crate::broadcast::delivery_time;
use crate::clock::{LamportClock, NodeId, Timestamp};
use crate::crash::CrashSchedule;
use crate::delay::DelayModel;
use crate::durable::DurableFleet;
use crate::events::{EventQueue, SimTime};
use crate::known::KnownSet;
use crate::merge::{MergeLog, MergeMetrics, MergeOutcome};
use crate::nemesis::{Fate, MsgCtx, Nemesis};
use crate::partition::PartitionSchedule;
use crate::transport::{Clock, Transport, VirtualClock};
use rand::rngs::StdRng;
use rand::SeedableRng;
use shard_core::{Application, Execution, ExternalAction, TimedExecution, TxnRecord};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Configuration of a simulated cluster (shared by every strategy).
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of replica nodes.
    pub nodes: u16,
    /// RNG seed for delay sampling (runs are deterministic per seed).
    pub seed: u64,
    /// Message delay model.
    pub delay: DelayModel,
    /// Partition schedule.
    pub partitions: PartitionSchedule,
    /// Merge-log checkpoint interval (see [`MergeLog::new`]).
    pub checkpoint_every: usize,
    /// Piggyback the origin's full log on every message, guaranteeing
    /// transitive executions (§3.3). Consumed by the eager-broadcast
    /// strategy; gossip *is* full piggybacking and ignores it.
    pub piggyback: bool,
    /// Node outage schedule: a crashed node rejects client transactions
    /// and receives no messages until it recovers.
    pub crashes: CrashSchedule,
    /// Optional structured-trace sink: the run logs update deliveries,
    /// merge appends / out-of-order undo-redo repairs, partition
    /// cuts/heals, crash/recovery windows and rejections as JSONL
    /// events. `None` (the default) costs nothing.
    pub sink: Option<Arc<shard_obs::EventSink>>,
    /// Optional live §3 monitoring ([`crate::monitor::LiveMonitor`]):
    /// executed transactions stream through the online checkers as the
    /// watermark seals their serial positions, verdicts and rows go to
    /// `sink`, and the run can abort at the first confirmed violation.
    /// `None` (the default) leaves the run byte-identical to before the
    /// monitor existed.
    pub monitor: Option<crate::monitor::MonitorConfig>,
}

impl Default for ClusterConfig {
    /// Five nodes, 20-tick mean exponential delays, no partitions.
    fn default() -> Self {
        ClusterConfig {
            nodes: 5,
            seed: 0,
            delay: DelayModel::Exponential { mean: 20 },
            partitions: PartitionSchedule::none(),
            checkpoint_every: 32,
            piggyback: false,
            crashes: CrashSchedule::none(),
            sink: None,
            monitor: None,
        }
    }
}

/// Emits the failure schedule (partition cut/heal windows, crash and
/// recovery times) to `sink` — the discrete-event kernel knows the whole
/// schedule up front, so announcing it at run start keeps the trace
/// self-describing without hooking every `is_down` check.
pub(crate) fn emit_schedule(
    sink: &shard_obs::EventSink,
    partitions: &PartitionSchedule,
    crashes: &CrashSchedule,
) {
    for w in partitions.windows() {
        sink.event("partition.cut")
            .u64("t", w.start)
            .u64("groups", w.groups.len() as u64)
            .emit();
        sink.event("partition.heal").u64("t", w.end).emit();
    }
    for w in crashes.windows() {
        sink.event("crash")
            .u64("t", w.start)
            .u64("node", u64::from(w.node.0))
            .emit();
        sink.event("recover")
            .u64("t", w.end)
            .u64("node", u64::from(w.node.0))
            .emit();
    }
}

/// Emits the trace event for one merge outcome — append, out-of-order
/// (with its undo/redo depth), or duplicate. Every strategy's deliveries
/// pass through here, making gossip and partial runs exactly as
/// observable as flooding runs.
pub(crate) fn emit_merge_outcome(
    sink: &shard_obs::EventSink,
    outcome: MergeOutcome,
    now: SimTime,
    node: NodeId,
) {
    match outcome {
        MergeOutcome::Duplicate => {
            sink.event("merge.duplicate")
                .u64("t", now)
                .u64("node", u64::from(node.0))
                .emit();
        }
        MergeOutcome::OutOfOrder { replayed } => {
            sink.event("merge.out_of_order")
                .u64("t", now)
                .u64("node", u64::from(node.0))
                .u64("replayed", replayed)
                .emit();
        }
        MergeOutcome::Appended => {
            sink.event("merge.append")
                .u64("t", now)
                .u64("node", u64::from(node.0))
                .emit();
        }
    }
}

/// One client transaction submission: at `time`, at `node`.
#[derive(Clone, Debug)]
pub struct Invocation<D> {
    /// Simulated submission time.
    pub time: SimTime,
    /// The node the client is attached to (the transaction's origin).
    pub node: NodeId,
    /// The transaction.
    pub decision: D,
}

impl<D> Invocation<D> {
    /// Convenience constructor.
    pub fn new(time: SimTime, node: NodeId, decision: D) -> Self {
        Invocation {
            time,
            node,
            decision,
        }
    }
}

/// A transaction as the simulator executed it.
#[derive(Clone, Debug)]
pub struct ExecutedTxn<A: Application> {
    /// Its globally unique timestamp (position in the serial order).
    pub ts: Timestamp,
    /// Real (simulated) initiation time.
    pub time: SimTime,
    /// Origin node.
    pub node: NodeId,
    /// The submitted transaction.
    pub decision: A::Decision,
    /// The update its decision part chose.
    pub update: A::Update,
    /// External actions performed at the origin.
    pub external_actions: Vec<ExternalAction>,
    /// Timestamps of every update the origin knew at decision time —
    /// an O(1) persistent snapshot of the merge log's known set
    /// ([`crate::KnownSet`]), structurally shared with every other
    /// snapshot of the same log. Materializing these per transaction
    /// would cost O(n²) across a run; snapshotting costs a
    /// reference-count bump.
    pub known: KnownSet,
}

/// What a run's [`Nemesis`] did to the transport, counted by the kernel
/// itself (by differencing each message's fate against its fault-free
/// delivery), so the tally is trustworthy whatever the injector claims.
/// All zeros when no nemesis is attached.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages dropped (every copy lost).
    pub dropped: u64,
    /// Extra message copies delivered beyond the original.
    pub duplicated: u64,
    /// Messages whose earliest surviving copy was delayed past its
    /// fault-free arrival.
    pub delayed: u64,
    /// Partition windows the nemesis injected at run start.
    pub partitions_injected: u64,
    /// Crash windows the nemesis injected at run start.
    pub crashes_injected: u64,
}

impl FaultStats {
    /// Total faults applied.
    pub fn total(&self) -> u64 {
        self.dropped
            + self.duplicated
            + self.delayed
            + self.partitions_injected
            + self.crashes_injected
    }
}

/// Everything a kernel run produces, whatever the propagation strategy.
/// `ClusterReport`, `GossipReport` and `PartialReport` are aliases.
#[derive(Clone, Debug)]
pub struct RunReport<A: Application> {
    /// Executed transactions sorted by timestamp (the serial order).
    pub transactions: Vec<ExecutedTxn<A>>,
    /// Per-node undo/redo metrics.
    pub node_metrics: Vec<MergeMetrics>,
    /// All external actions in real-time order: `(time, node, action)`.
    pub external_actions: Vec<(SimTime, NodeId, ExternalAction)>,
    /// Each node's final merged state after every message drained (under
    /// partial replication, meaningful only on the objects a node holds).
    pub final_states: Vec<A::State>,
    /// For every *critical* transaction run through the §3.3 barrier
    /// protocol (see [`Runner::run_with_critical`]): the delay between
    /// submission and execution — the availability price of (near-)
    /// complete prefixes. Empty for ordinary runs.
    pub barrier_latencies: Vec<SimTime>,
    /// Client transactions rejected because their node was crashed at
    /// submission time: `(time, node)`. These never entered the system.
    pub rejected: Vec<(SimTime, NodeId)>,
    /// Point-to-point update messages sent (flooding sends `nodes − 1`
    /// per transaction; gossip one per round and partner; partial
    /// replication one per interested holder).
    pub messages_sent: u64,
    /// Total `(timestamp, update)` entries shipped across all messages —
    /// the bandwidth cost (piggybacking and gossip ship whole logs).
    pub entries_shipped: u64,
    /// Anti-entropy rounds performed: ticks on which the strategy sent
    /// at least one message. Zero for strategies without ticks.
    pub rounds: u64,
    /// Faults the run's [`Nemesis`] applied (all zeros without one).
    pub faults: FaultStats,
    /// The live monitor's verdicts and certificates, when
    /// `ClusterConfig::monitor` was set (`None` otherwise). Covers
    /// every executed transaction even on an aborted run.
    pub monitor: Option<shard_core::stream::StreamReport>,
    /// Whether the monitor stopped the run early on a confirmed
    /// violation: the remaining events were abandoned, so drain-based
    /// guarantees (mutual consistency) need not hold.
    pub aborted: bool,
}

impl<A: Application> RunReport<A> {
    /// Whether all node copies agree (mutual consistency, §1.2). Holds
    /// whenever every broadcast drained, i.e. always at the end of a
    /// fully replicated run. Under partial replication, per-object
    /// agreement is the right question — see `objects_consistent`.
    pub fn mutually_consistent(&self) -> bool {
        self.final_states.windows(2).all(|w| w[0] == w[1])
    }

    /// The formal timed execution: transactions in timestamp order, each
    /// seeing the prefix subsequence its origin knew.
    pub fn timed_execution(&self) -> TimedExecution<A> {
        let index_of: BTreeMap<Timestamp, usize> = self
            .transactions
            .iter()
            .enumerate()
            .map(|(i, t)| (t.ts, i))
            .collect();
        let mut exec = Execution::new();
        let mut times = Vec::with_capacity(self.transactions.len());
        for t in &self.transactions {
            let mut prefix: Vec<usize> = t
                .known
                .iter()
                .map(|ts| {
                    *index_of.get(&ts).expect(
                        "simulator invariant: every timestamp a node knew at \
                         decision time belongs to an executed transaction",
                    )
                })
                .collect();
            prefix.sort_unstable();
            exec.push_record(TxnRecord {
                decision: t.decision.clone(),
                prefix,
                update: t.update.clone(),
                external_actions: t.external_actions.clone(),
            });
            times.push(t.time);
        }
        TimedExecution::new(exec, times)
    }

    /// Total undo/redo replay work across all nodes.
    pub fn total_replayed(&self) -> u64 {
        self.node_metrics.iter().map(|m| m.replayed).sum()
    }
}

/// The `(timestamp, update)` batch one message carries. `Arc`-shared:
/// fanning a batch out to many peers clones reference counts, not
/// application data.
pub type Entries<A> = Arc<[(Timestamp, Arc<<A as Application>::Update>)]>;

/// One point-to-point message: a batch of log entries from `origin`.
/// Eager broadcast ships a single update (plus optional piggyback),
/// gossip ships whole logs, partial replication ships per-holder
/// selections — all as the same packet type, delivered by the same
/// handler.
#[derive(Debug)]
pub struct Packet<A: Application> {
    /// The sending node.
    pub origin: NodeId,
    /// Entries to merge at the receiver, in merge order.
    pub entries: Entries<A>,
}

impl<A: Application> Clone for Packet<A> {
    fn clone(&self) -> Self {
        Packet {
            origin: self.origin,
            entries: Arc::clone(&self.entries),
        }
    }
}

/// One replica of the application.
pub struct Node<A: Application> {
    /// This node's identity.
    pub id: NodeId,
    /// Lamport clock with node-id tiebreak — advanced past every
    /// observed timestamp, which is what makes the prefix-subsequence
    /// condition hold by construction.
    pub clock: LamportClock,
    /// The undo/redo merge log holding this node's copy of the database.
    pub log: MergeLog<A>,
    /// Number of transactions this node has initiated (§3.3 promises).
    pub own_sent: u64,
}

impl<A: Application> Node<A> {
    /// A fresh replica of `app` with identity `id`.
    pub fn new(app: &A, id: NodeId, checkpoint_every: usize) -> Self {
        Node {
            id,
            clock: LamportClock::new(id),
            log: MergeLog::new(app, checkpoint_every),
            own_sent: 0,
        }
    }

    /// Executes one transaction at this replica at `now`: ticks the
    /// Lamport clock, snapshots the known set, runs the decision part on
    /// the local merged state, and merges the own update. Returns the
    /// executed record plus the shared update for the propagation
    /// strategy to ship. This is the *one* transaction-execution path —
    /// the simulator kernel and the threaded `shard-runtime` both call
    /// it, which is what makes live runs replayable against the sim.
    pub fn execute(
        &mut self,
        app: &A,
        decision: A::Decision,
        now: SimTime,
    ) -> (ExecutedTxn<A>, Arc<A::Update>) {
        let ts = self.clock.tick();
        self.own_sent += 1;
        let known = self.log.known_set().clone();
        let outcome = app.decide(&decision, self.log.state());
        // One allocation shared by the local log and every peer message;
        // fanning out costs reference counts, not update clones.
        let update = Arc::new(outcome.update);
        let fresh = self.log.merge(app, ts, Arc::clone(&update));
        debug_assert!(fresh, "own timestamp must be new");
        (
            ExecutedTxn {
                ts,
                time: now,
                node: self.id,
                decision,
                update: (*update).clone(),
                external_actions: outcome.external_actions,
                known,
            },
            update,
        )
    }

    /// Absorbs one delivered batch: advances the Lamport clock past
    /// every entry's timestamp, then merges the batch, reporting each
    /// entry's [`MergeOutcome`] to `on_outcome`. The shared delivery
    /// path of both the kernel and `shard-runtime`.
    pub fn absorb(
        &mut self,
        app: &A,
        entries: &Entries<A>,
        mut on_outcome: impl FnMut(MergeOutcome),
    ) {
        for (ts, _) in entries.iter() {
            self.clock.observe(*ts);
        }
        // One batch per delivery burst: in-order runs extend the log and
        // its checkpoint chain without per-entry binary searches, while
        // per-entry outcomes keep the trace bit-identical to
        // entry-at-a-time merging.
        self.log.merge_batch(
            app,
            entries.iter().map(|(ts, u)| (*ts, Arc::clone(u))),
            |_, outcome| on_outcome(outcome),
        );
    }
}

/// Events of the unified loop. `Probe`/`Promise` implement the §3.3
/// barrier protocol for critical transactions.
enum Event<A: Application> {
    Invoke {
        node: NodeId,
        decision: A::Decision,
    },
    Deliver {
        to: NodeId,
        packet: Packet<A>,
    },
    Tick {
        node: NodeId,
    },
    /// Barrier protocol (§3.3): a critical transaction at `from` asks
    /// every peer to promise its current initiation count.
    Probe {
        to: NodeId,
        from: NodeId,
        id: usize,
    },
    /// A peer's reply: it has initiated `sent` transactions so far.
    Promise {
        to: NodeId,
        from: NodeId,
        id: usize,
        sent: u64,
    },
    /// Durability only: the node's store suffers a simulated power cut
    /// at the start of its crash window (unsynced tail may be lost,
    /// possibly tearing a record).
    Kill {
        node: NodeId,
    },
    /// Durability only: at the end of its crash window the node is
    /// rebuilt from its store — WAL replayed through a fresh merge log,
    /// Lamport clock re-observed — and rejoins propagation.
    Recover {
        node: NodeId,
    },
}

/// A critical transaction waiting for its barrier to clear.
struct PendingCritical<A: Application> {
    node: NodeId,
    decision: A::Decision,
    submitted: SimTime,
    /// Promise per node id (own entry stays `None` and is ignored).
    promises: Vec<Option<u64>>,
    done: bool,
}

/// Run-wide transport tallies, bundled so [`QueueTransport`]
/// construction sites thread one borrow instead of four.
#[derive(Default)]
struct WireStats {
    messages_sent: u64,
    entries_shipped: u64,
    /// Send sequence number the nemesis hook keys message faults by
    /// (1-based, assigned in send order; untouched without a nemesis).
    msg_seq: u64,
    faults: FaultStats,
}

/// The simulator's [`Transport`]: deliveries become events on the
/// kernel queue, gated by the partition schedule, the delay model and an
/// optional [`Nemesis`]. All sends share the kernel's RNG stream and
/// feed the run's `messages_sent` / `entries_shipped` counters.
pub struct QueueTransport<'a, A: Application> {
    partitions: &'a PartitionSchedule,
    delay: &'a DelayModel,
    rng: &'a mut StdRng,
    queue: &'a mut EventQueue<Event<A>>,
    n_nodes: u16,
    wire: &'a mut WireStats,
    nemesis: &'a mut Option<Box<dyn Nemesis>>,
    sink: Option<&'a shard_obs::EventSink>,
}

impl<A: Application> Transport<A> for QueueTransport<'_, A> {
    fn nodes(&self) -> u16 {
        self.n_nodes
    }

    /// Whether `a` and `b` can communicate right now (no partition
    /// separates them at `now`).
    fn connected(&self, now: SimTime, a: NodeId, b: NodeId) -> bool {
        self.partitions.connected(now, a, b)
    }

    /// The run's RNG, exposed so strategies (e.g. gossip partner
    /// selection) draw from the same deterministic stream that samples
    /// delays.
    fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Sends `entries` from `from` to `to`: the message waits out any
    /// partition separating the pair, takes one sampled network delay,
    /// and is merged at the receiver by the kernel's traced-merge
    /// delivery handler. An attached [`Nemesis`] may rewrite the fate —
    /// drop the message, duplicate it, or move its arrivals — after the
    /// fault-free delivery time has been computed, so the kernel RNG
    /// stream is identical with and without one.
    fn send(&mut self, now: SimTime, from: NodeId, to: NodeId, entries: Entries<A>) {
        let at = delivery_time(self.partitions, self.delay, self.rng, now, from, to);
        self.wire.messages_sent += 1;
        self.wire.entries_shipped += entries.len() as u64;
        let Some(nemesis) = self.nemesis.as_deref_mut() else {
            self.queue.schedule(
                at,
                Event::Deliver {
                    to,
                    packet: Packet {
                        origin: from,
                        entries,
                    },
                },
            );
            return;
        };
        self.wire.msg_seq += 1;
        let ctx = MsgCtx {
            seq: self.wire.msg_seq,
            now,
            from,
            to,
            at,
        };
        let mut fate = Fate::deliver(at);
        nemesis.on_message(&ctx, &mut fate);
        if fate.is_dropped() {
            self.wire.faults.dropped += 1;
            if let Some(s) = self.sink {
                s.event("nemesis.drop")
                    .u64("t", now)
                    .u64("msg", ctx.seq)
                    .u64("from", u64::from(from.0))
                    .u64("node", u64::from(to.0))
                    .emit();
            }
            return;
        }
        let primary = fate.primary().expect("non-dropped fate has a primary");
        if primary != at {
            self.wire.faults.delayed += 1;
            if let Some(s) = self.sink {
                s.event("nemesis.delay")
                    .u64("t", now)
                    .u64("msg", ctx.seq)
                    .u64("node", u64::from(to.0))
                    .u64("by", primary.saturating_sub(at))
                    .emit();
            }
        }
        if fate.times.len() > 1 {
            let extra = (fate.times.len() - 1) as u64;
            self.wire.faults.duplicated += extra;
            if let Some(s) = self.sink {
                s.event("nemesis.duplicate")
                    .u64("t", now)
                    .u64("msg", ctx.seq)
                    .u64("node", u64::from(to.0))
                    .u64("extra", extra)
                    .emit();
            }
        }
        let packet = Packet {
            origin: from,
            entries,
        };
        for &t in &fate.times {
            self.queue.schedule(
                t,
                Event::Deliver {
                    to,
                    packet: packet.clone(),
                },
            );
        }
    }
}

/// How updates travel between replicas. The kernel owns invocation,
/// execution, delivery, merging and failure gating; a strategy only
/// decides *what to send when* — on each execution and on each
/// anti-entropy tick — and when a draining run has converged.
///
/// # Examples
///
/// Strategies are interchangeable at the [`Runner`] seam — the same
/// workload driven by flooding and by anti-entropy gossip converges to
/// the same replicated state either way:
///
/// ```
/// use shard_apps::airline::{AirlineTxn, FlyByNight};
/// use shard_apps::Person;
/// use shard_sim::{ClusterConfig, EagerBroadcast, Gossip, Invocation, NodeId, Runner};
///
/// let app = FlyByNight::new(2);
/// let invs = vec![Invocation::new(1, NodeId(0), AirlineTxn::Request(Person(7)))];
/// let flood = Runner::new(&app, ClusterConfig::default(), EagerBroadcast::default())
///     .run(invs.clone());
/// let gossip = Runner::new(
///     &app,
///     ClusterConfig::default(),
///     Gossip { interval: 5, fanout: 4 },
/// )
/// .run(invs);
/// assert!(flood.mutually_consistent() && gossip.mutually_consistent());
/// assert_eq!(flood.final_states[0], gossip.final_states[0]);
/// ```
pub trait Propagation<A: Application> {
    /// Short name used for the run's span (`sim.<label>.run`) and trace.
    fn label(&self) -> &'static str;

    /// Period of the per-node [`Propagation::on_tick`] callback; `None`
    /// disables ticks entirely (purely reactive strategies).
    fn tick_interval(&self) -> Option<SimTime> {
        None
    }

    /// Validates an invocation schedule before a run starts (e.g.
    /// partial replication asserts every invocation targets a node
    /// holding the objects its decision reads). The default accepts
    /// everything.
    fn validate(&self, _app: &A, _invocations: &[Invocation<A::Decision>]) {}

    /// Called right after `node` executed a transaction and merged
    /// `update` (timestamped `ts`) into its own log. Reactive strategies
    /// send here; tick-driven strategies typically do nothing. The
    /// strategy sees only the *local* replica — propagation decisions
    /// must not peek at peer state, which is what lets the same strategy
    /// run unchanged on `shard-runtime`'s one-thread-per-node channels.
    fn on_execute(
        &mut self,
        app: &A,
        net: &mut dyn Transport<A>,
        node: &Node<A>,
        now: SimTime,
        ts: Timestamp,
        update: &Arc<A::Update>,
    );

    /// Called every [`Propagation::tick_interval`] at each live node
    /// (crashed nodes skip their rounds until recovery). Like
    /// [`Propagation::on_execute`], sees only the local replica.
    fn on_tick(&mut self, _app: &A, _net: &mut dyn Transport<A>, _node: &Node<A>, _now: SimTime) {}

    /// Whether the run has converged: with no invocations left, ticking
    /// stops once this holds (a simulation-harness stopping rule, not
    /// protocol logic). Strategies without ticks drain naturally and can
    /// keep the default `true`.
    fn synced(&self, _app: &A, _nodes: &[Node<A>], _transactions: &[ExecutedTxn<A>]) -> bool {
        true
    }
}

/// The unified discrete-event runner: one event loop for every
/// propagation strategy.
///
/// # Examples
///
/// ```
/// use shard_apps::airline::{AirlineTxn, FlyByNight};
/// use shard_apps::Person;
/// use shard_sim::{ClusterConfig, EagerBroadcast, Invocation, NodeId, Runner};
///
/// let app = FlyByNight::new(3);
/// let runner = Runner::new(&app, ClusterConfig::default(), EagerBroadcast::default());
/// let report = runner.run(vec![
///     Invocation::new(0, NodeId(0), AirlineTxn::Request(Person(1))),
///     Invocation::new(9, NodeId(4), AirlineTxn::MoveUp),
/// ]);
/// assert!(report.mutually_consistent());
/// report.timed_execution().execution.verify(&app).unwrap();
/// ```
pub struct Runner<'a, A: Application, P: Propagation<A>> {
    app: &'a A,
    config: ClusterConfig,
    strategy: P,
    nemesis: Option<Box<dyn Nemesis>>,
    ticks: Option<Vec<(SimTime, NodeId)>>,
    durability: Option<DurableFleet<A>>,
}

impl<'a, A: Application, P: Propagation<A>> Runner<'a, A, P> {
    /// Creates a runner over `config.nodes` replicas of `app`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero nodes, or the strategy asks
    /// for a zero tick interval.
    pub fn new(app: &'a A, config: ClusterConfig, strategy: P) -> Self {
        assert!(config.nodes > 0, "a cluster needs at least one node");
        if let Some(interval) = strategy.tick_interval() {
            assert!(interval > 0, "ticks need a positive interval");
        }
        Runner {
            app,
            config,
            strategy,
            nemesis: None,
            ticks: None,
            durability: None,
        }
    }

    /// Attaches a fault injector (see [`crate::nemesis`]): every update
    /// message's fate passes through it, and it may add partition/crash
    /// windows at run start. Without one, runs are bit-for-bit identical
    /// to a `Runner` built before this hook existed — the nemesis is
    /// consulted only after the fault-free delivery time has been drawn
    /// from the kernel RNG.
    #[must_use]
    pub fn with_nemesis(mut self, nemesis: Box<dyn Nemesis>) -> Self {
        self.nemesis = Some(nemesis);
        self
    }

    /// Attaches a durable mirror per node (see [`crate::durable`]): own
    /// updates are appended to the node's [`shard_store::Store`] and
    /// fsynced *before* propagation, received updates are appended
    /// without a barrier, and every crash window in the schedule
    /// becomes a real kill/recover cycle — the store suffers a
    /// simulated power cut at window start (unsynced tail lost,
    /// possibly tearing a record) and the node is rebuilt from the
    /// surviving WAL at window end. Without crash windows the run is
    /// observationally identical to a non-durable run (the mirror never
    /// touches the kernel RNG).
    ///
    /// Mirrors opened on existing on-disk stores recover their nodes at
    /// run start — a process restart. Note [`RunReport::timed_execution`]
    /// covers only *this* run's transactions, so restarted runs should
    /// assert on states and logs rather than the formal execution.
    #[must_use]
    pub fn with_durability(mut self, fleet: DurableFleet<A>) -> Self {
        assert_eq!(
            fleet.len(),
            self.config.nodes as usize,
            "one durable mirror per node"
        );
        self.durability = Some(fleet);
        self
    }

    /// Replaces the strategy's periodic anti-entropy cadence with an
    /// explicit tick script: `Tick` events fire at exactly the given
    /// `(time, node)` pairs, none are rescheduled, and the synced
    /// stopping rule is bypassed (every scripted tick fires). This is
    /// how a live `shard-runtime` run's recorded gossip rounds are
    /// replayed deterministically — round-for-round, at the recorded
    /// ticks.
    #[must_use]
    pub fn with_ticks(mut self, ticks: Vec<(SimTime, NodeId)>) -> Self {
        self.ticks = Some(ticks);
        self
    }

    /// Runs the invocation schedule to completion (all messages drained,
    /// all replicas synced) and reports.
    ///
    /// # Panics
    ///
    /// Panics if an invocation names a node outside the cluster.
    pub fn run(self, invocations: Vec<Invocation<A::Decision>>) -> RunReport<A> {
        self.run_with_critical(invocations, |_| false)
    }

    /// Like [`Runner::run`], but transactions selected by `is_critical`
    /// run through the **barrier protocol** §3.3 sketches for
    /// centralization and complete prefixes: the origin probes every
    /// peer; each peer promises the count of transactions it has
    /// initiated so far; the critical decision executes only once the
    /// origin has received *every promised update*. The critical
    /// transaction therefore sees every transaction initiated anywhere
    /// before its probe was answered — audits get (near-)complete
    /// prefixes, at the price of waiting out partitions
    /// ([`RunReport::barrier_latencies`] measures exactly the
    /// availability loss §3.3 warns about).
    ///
    /// # Panics
    ///
    /// Panics if an invocation names a node outside the cluster.
    pub fn run_with_critical(
        self,
        invocations: Vec<Invocation<A::Decision>>,
        is_critical: impl Fn(&A::Decision) -> bool,
    ) -> RunReport<A> {
        let Runner {
            app,
            config: mut cfg,
            mut strategy,
            mut nemesis,
            ticks: scripted_ticks,
            mut durability,
        } = self;
        strategy.validate(app, &invocations);
        let span_name = format!("sim.{}.run", strategy.label());
        let run_span = shard_obs::span!(&span_name);
        let mut wire = WireStats::default();
        if let Some(nem) = nemesis.as_deref_mut() {
            // Injected windows join the scripted schedules before the
            // run starts, so failure gating and the announced schedule
            // treat scripted and injected faults identically.
            let horizon = invocations
                .iter()
                .map(|i| i.time)
                .max()
                .unwrap_or(0)
                .max(cfg.partitions.horizon());
            let injected = nem.inject(cfg.nodes, horizon);
            wire.faults.partitions_injected = injected.partitions.len() as u64;
            wire.faults.crashes_injected = injected.crashes.len() as u64;
            for w in injected.partitions {
                cfg.partitions.push(w);
            }
            for w in injected.crashes {
                cfg.crashes.push(w);
            }
        }
        if let Some(sink) = cfg.sink.as_deref() {
            emit_schedule(sink, &cfg.partitions, &cfg.crashes);
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut nodes: Vec<Node<A>> = (0..cfg.nodes)
            .map(|i| Node::new(app, NodeId(i), cfg.checkpoint_every))
            .collect();
        let mut queue: EventQueue<Event<A>> = EventQueue::new();
        if let Some(fleet) = durability.as_mut() {
            // A mirror already holding entries is a previous process's
            // store: rebuild its node before anything runs (restart).
            for i in 0..cfg.nodes {
                let id = NodeId(i);
                if fleet.entries(id) > 0 {
                    let (rebuilt, entries) = fleet.recover(app, id, cfg.checkpoint_every);
                    nodes[i as usize] = rebuilt;
                    if let Some(s) = cfg.sink.as_deref() {
                        s.event("store.recover")
                            .u64("t", 0)
                            .u64("node", u64::from(i))
                            .u64("entries", entries as u64)
                            .emit();
                    }
                }
            }
            // Kill/recover events are scheduled before invocations and
            // held deliveries, so at equal times the store dies before
            // same-tick traffic and revives before the transport
            // releases the messages held during the outage (the event
            // queue breaks ties in insertion order).
            for w in cfg.crashes.windows() {
                queue.schedule(w.start, Event::Kill { node: w.node });
                queue.schedule(w.end, Event::Recover { node: w.node });
            }
        }
        let mut remaining_invokes = 0u64;
        for inv in invocations {
            assert!(
                (inv.node.0 as usize) < nodes.len(),
                "invocation at unknown node {}",
                inv.node
            );
            remaining_invokes += 1;
            queue.schedule(
                inv.time,
                Event::Invoke {
                    node: inv.node,
                    decision: inv.decision,
                },
            );
        }
        let tick_interval = strategy.tick_interval();
        let scripted = scripted_ticks.is_some();
        if let Some(script) = scripted_ticks {
            for (t, node) in script {
                queue.schedule(t, Event::Tick { node });
            }
        } else if let Some(interval) = tick_interval {
            for i in 0..cfg.nodes {
                queue.schedule(interval, Event::Tick { node: NodeId(i) });
            }
        }

        let mut transactions: Vec<ExecutedTxn<A>> = Vec::new();
        let mut external_actions: Vec<(SimTime, NodeId, ExternalAction)> = Vec::new();
        let mut pending: Vec<PendingCritical<A>> = Vec::new();
        let mut barrier_latencies: Vec<SimTime> = Vec::new();
        let mut rejected: Vec<(SimTime, NodeId)> = Vec::new();
        let mut rounds = 0u64;
        let mut monitor = cfg.monitor.clone().map(crate::monitor::LiveMonitor::new);
        let mut monitored = 0usize;
        let mut aborted = false;

        // The loop drives a virtual clock: each popped event advances it
        // to the event's scheduled time. `shard-runtime` runs the same
        // replica logic against a `WallClock` instead.
        let mut clock = VirtualClock::new();
        while let Some((t, event)) = queue.pop() {
            clock.advance(t);
            let now = clock.now();
            match event {
                Event::Invoke { node, decision } => {
                    remaining_invokes -= 1;
                    if cfg.crashes.is_down(now, node) {
                        rejected.push((now, node));
                        if let Some(sink) = cfg.sink.as_deref() {
                            sink.event("reject")
                                .u64("t", now)
                                .u64("node", u64::from(node.0))
                                .emit();
                        }
                        continue;
                    }
                    if is_critical(&decision) && cfg.nodes > 1 {
                        let id = pending.len();
                        pending.push(PendingCritical {
                            node,
                            decision,
                            submitted: now,
                            promises: vec![None; cfg.nodes as usize],
                            done: false,
                        });
                        for peer in 0..cfg.nodes {
                            let to = NodeId(peer);
                            if to == node {
                                continue;
                            }
                            let at =
                                delivery_time(&cfg.partitions, &cfg.delay, &mut rng, now, node, to);
                            queue.schedule(at, Event::Probe { to, from: node, id });
                        }
                    } else {
                        execute_txn(
                            app,
                            &cfg,
                            &mut strategy,
                            &mut rng,
                            &mut queue,
                            &mut nodes,
                            &mut transactions,
                            &mut external_actions,
                            &mut wire,
                            &mut nemesis,
                            &mut durability,
                            now,
                            node,
                            decision,
                        );
                    }
                }
                Event::Deliver { to, packet } => {
                    if cfg.crashes.is_down(now, to) {
                        // The transport holds the message until recovery.
                        let up = cfg.crashes.next_up(now, to);
                        queue.schedule(up, Event::Deliver { to, packet });
                        continue;
                    }
                    let sink = cfg.sink.as_deref();
                    if let Some(s) = sink {
                        s.event("deliver")
                            .u64("t", now)
                            .u64("node", u64::from(to.0))
                            .u64("from", u64::from(packet.origin.0))
                            .u64("entries", packet.entries.len() as u64)
                            .emit();
                    }
                    nodes[to.0 as usize].absorb(app, &packet.entries, |outcome| {
                        if let Some(s) = sink {
                            emit_merge_outcome(s, outcome, now, to);
                        }
                    });
                    // Received updates are mirrored without an fsync
                    // barrier: they survive on their origins and
                    // re-arrive via anti-entropy if this node's
                    // unsynced tail is lost.
                    if let Some(fleet) = durability.as_mut() {
                        fleet.persist(to, &nodes[to.0 as usize].log, false);
                    }
                    if pending.is_empty() {
                        continue;
                    }
                    release_criticals(
                        app,
                        &cfg,
                        &mut strategy,
                        &mut rng,
                        &mut queue,
                        &mut nodes,
                        &mut transactions,
                        &mut external_actions,
                        &mut wire,
                        &mut nemesis,
                        &mut durability,
                        &mut pending,
                        &mut barrier_latencies,
                        now,
                        to,
                    );
                }
                Event::Tick { node } => {
                    // Stop ticking once everything has drained. Scripted
                    // ticks always fire: the script *is* the stopping
                    // rule (none are rescheduled).
                    if !scripted
                        && remaining_invokes == 0
                        && strategy.synced(app, &nodes, &transactions)
                    {
                        continue;
                    }
                    // A crashed node skips its rounds but resumes the
                    // cadence after recovery.
                    if !cfg.crashes.is_down(now, node) {
                        let before = wire.messages_sent;
                        let mut net = QueueTransport {
                            partitions: &cfg.partitions,
                            delay: &cfg.delay,
                            rng: &mut rng,
                            queue: &mut queue,
                            n_nodes: cfg.nodes,
                            wire: &mut wire,
                            nemesis: &mut nemesis,
                            sink: cfg.sink.as_deref(),
                        };
                        strategy.on_tick(app, &mut net, &nodes[node.0 as usize], now);
                        if wire.messages_sent > before {
                            rounds += 1;
                        }
                    }
                    if !scripted {
                        let interval =
                            tick_interval.expect("ticks are only scheduled with an interval");
                        queue.schedule(now + interval, Event::Tick { node });
                    }
                }
                Event::Probe { to, from, id } => {
                    if cfg.crashes.is_down(now, to) {
                        let up = cfg.crashes.next_up(now, to);
                        queue.schedule(up, Event::Probe { to, from, id });
                        continue;
                    }
                    let sent = nodes[to.0 as usize].own_sent;
                    let at = delivery_time(&cfg.partitions, &cfg.delay, &mut rng, now, to, from);
                    queue.schedule(
                        at,
                        Event::Promise {
                            to: from,
                            from: to,
                            id,
                            sent,
                        },
                    );
                }
                Event::Promise { to, from, id, sent } => {
                    if cfg.crashes.is_down(now, to) {
                        let up = cfg.crashes.next_up(now, to);
                        queue.schedule(up, Event::Promise { to, from, id, sent });
                        continue;
                    }
                    pending[id].promises[from.0 as usize] = Some(sent);
                    release_criticals(
                        app,
                        &cfg,
                        &mut strategy,
                        &mut rng,
                        &mut queue,
                        &mut nodes,
                        &mut transactions,
                        &mut external_actions,
                        &mut wire,
                        &mut nemesis,
                        &mut durability,
                        &mut pending,
                        &mut barrier_latencies,
                        now,
                        to,
                    );
                }
                Event::Kill { node } => {
                    let fleet = durability
                        .as_mut()
                        .expect("Kill events are scheduled only with durability");
                    let report = fleet.kill(node);
                    if let Some(s) = cfg.sink.as_deref() {
                        s.event("store.kill")
                            .u64("t", now)
                            .u64("node", u64::from(node.0))
                            .u64("kept_entries", report.kept_entries as u64)
                            .u64("kept_bytes", report.kept_bytes)
                            .u64("lost_bytes", report.lost_bytes)
                            .bool("torn", report.torn)
                            .emit();
                    }
                }
                Event::Recover { node } => {
                    let fleet = durability
                        .as_mut()
                        .expect("Recover events are scheduled only with durability");
                    let (rebuilt, entries) = fleet.recover(app, node, cfg.checkpoint_every);
                    nodes[node.0 as usize] = rebuilt;
                    if let Some(s) = cfg.sink.as_deref() {
                        s.event("store.recover")
                            .u64("t", now)
                            .u64("node", u64::from(node.0))
                            .u64("entries", entries as u64)
                            .emit();
                    }
                }
            }
            if let Some(m) = monitor.as_mut() {
                while monitored < transactions.len() {
                    let t = &transactions[monitored];
                    m.ingest(t.ts, t.time, t.known.clone());
                    monitored += 1;
                }
                let watermark = nodes.iter().map(|n| n.clock.current()).min().unwrap_or(0);
                m.advance(watermark, cfg.sink.as_deref());
                if m.should_abort() {
                    aborted = true;
                    break;
                }
            }
        }

        debug_assert!(
            aborted || pending.iter().all(|p| p.done),
            "all barriers clear eventually"
        );
        if let Some(m) = monitor.as_mut() {
            // Every executed transaction was ingested above; once the
            // loop ends (or aborts) no clock ticks again, so draining
            // the stalled tail is sound and the report covers the run.
            m.flush(cfg.sink.as_deref());
            if let Some(sink) = cfg.sink.as_deref() {
                let r = m.report();
                sink.event("monitor.final")
                    .u64("rows", r.rows as u64)
                    .bool("transitive", r.transitive)
                    .u64("max_missed", r.max_missed as u64)
                    .u64("delay_bound", r.min_delay_bound)
                    .emit();
            }
        }
        if let Some(sink) = cfg.sink.as_deref() {
            // A trailing span line lets `shard-trace summarize` report
            // the run's wall time without access to the registry.
            sink.event("span")
                .str("name", &span_name)
                .u64("ns", run_span.elapsed_ns())
                .emit();
            sink.flush();
        }
        transactions.sort_by_key(|t| t.ts);
        RunReport {
            node_metrics: nodes.iter().map(|n| n.log.metrics()).collect(),
            final_states: nodes.into_iter().map(|n| n.log.into_state()).collect(),
            transactions,
            external_actions,
            barrier_latencies,
            rejected,
            messages_sent: wire.messages_sent,
            entries_shipped: wire.entries_shipped,
            rounds,
            faults: wire.faults,
            monitor: monitor.map(|m| m.report()),
            aborted,
        }
    }
}

/// Executes one transaction at `node` now: ticks the clock, runs the
/// decision on the local merged state, performs external actions, merges
/// the own update, and hands propagation to the strategy.
#[allow(clippy::too_many_arguments)]
fn execute_txn<A: Application, P: Propagation<A>>(
    app: &A,
    cfg: &ClusterConfig,
    strategy: &mut P,
    rng: &mut StdRng,
    queue: &mut EventQueue<Event<A>>,
    nodes: &mut [Node<A>],
    transactions: &mut Vec<ExecutedTxn<A>>,
    external_actions: &mut Vec<(SimTime, NodeId, ExternalAction)>,
    wire: &mut WireStats,
    nemesis: &mut Option<Box<dyn Nemesis>>,
    durability: &mut Option<DurableFleet<A>>,
    now: SimTime,
    node: NodeId,
    decision: A::Decision,
) {
    if let Some(sink) = cfg.sink.as_deref() {
        sink.event("execute")
            .u64("t", now)
            .u64("node", u64::from(node.0))
            .emit();
    }
    let (txn, update) = nodes[node.0 as usize].execute(app, decision, now);
    // Write-ahead discipline: the own update reaches stable storage
    // (append + fsync) before any peer can learn of it, so a crash can
    // lose an own update only while it is still invisible to the rest
    // of the system.
    if let Some(fleet) = durability.as_mut() {
        fleet.persist(node, &nodes[node.0 as usize].log, true);
    }
    for a in &txn.external_actions {
        external_actions.push((now, node, a.clone()));
    }
    let ts = txn.ts;
    transactions.push(txn);
    let mut net = QueueTransport {
        partitions: &cfg.partitions,
        delay: &cfg.delay,
        rng,
        queue,
        n_nodes: cfg.nodes,
        wire,
        nemesis,
        sink: cfg.sink.as_deref(),
    };
    strategy.on_execute(app, &mut net, &nodes[node.0 as usize], now, ts, &update);
}

/// Executes every pending critical transaction at `node` whose barrier
/// has cleared: all peers promised and every promised update has been
/// received.
#[allow(clippy::too_many_arguments)]
fn release_criticals<A: Application, P: Propagation<A>>(
    app: &A,
    cfg: &ClusterConfig,
    strategy: &mut P,
    rng: &mut StdRng,
    queue: &mut EventQueue<Event<A>>,
    nodes: &mut [Node<A>],
    transactions: &mut Vec<ExecutedTxn<A>>,
    external_actions: &mut Vec<(SimTime, NodeId, ExternalAction)>,
    wire: &mut WireStats,
    nemesis: &mut Option<Box<dyn Nemesis>>,
    durability: &mut Option<DurableFleet<A>>,
    pending: &mut [PendingCritical<A>],
    barrier_latencies: &mut Vec<SimTime>,
    now: SimTime,
    node: NodeId,
) {
    #[allow(clippy::needless_range_loop)]
    for id in 0..pending.len() {
        if pending[id].done || pending[id].node != node {
            continue;
        }
        let cleared = (0..cfg.nodes).all(|peer| {
            if NodeId(peer) == node {
                return true;
            }
            match pending[id].promises[peer as usize] {
                None => false,
                Some(promised) => {
                    let received = nodes[node.0 as usize]
                        .log
                        .entries()
                        .iter()
                        .filter(|(ts, _)| ts.node == NodeId(peer))
                        .count() as u64;
                    received >= promised
                }
            }
        });
        if cleared {
            pending[id].done = true;
            barrier_latencies.push(now - pending[id].submitted);
            let decision = pending[id].decision.clone();
            execute_txn(
                app,
                cfg,
                strategy,
                rng,
                queue,
                nodes,
                transactions,
                external_actions,
                wire,
                nemesis,
                durability,
                now,
                node,
                decision,
            );
        }
    }
}
