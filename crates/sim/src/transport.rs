//! The kernel's time and delivery seams: [`Clock`] and [`Transport`].
//!
//! The discrete-event [`Runner`](crate::Runner) used to own both time
//! (the event queue's clock) and delivery (scheduling `Deliver` events
//! behind partition waits, sampled delays and nemesis gating). Both are
//! now traits, which is what lets the *same* replica logic — `Node`,
//! `MergeLog`, [`Propagation`](crate::Propagation), `Nemesis`,
//! `LiveMonitor` — run in two instantiations:
//!
//! * **Simulation** — [`VirtualClock`] (advanced to each popped event's
//!   time) plus the kernel's queue-backed transport
//!   ([`crate::kernel::QueueTransport`]): deterministic, seeded,
//!   single-threaded.
//! * **Live deployment** — [`WallClock`] (monotonic, globally unique
//!   microsecond ticks) plus a channel-backed transport (the
//!   `shard-runtime` crate): one OS thread per node exchanging messages
//!   over real `std::sync::mpsc` channels.
//!
//! The wall clock's tick discipline is what makes live runs replayable:
//! every event (execution, delivery, anti-entropy round) draws a tick
//! that is *strictly greater than every tick drawn before it anywhere in
//! the process*, so the recorded schedule totally orders the run and the
//! virtual-clock kernel can reproduce it exactly (see `shard-runtime`'s
//! replay module).

use crate::clock::NodeId;
use crate::events::SimTime;
use crate::kernel::Entries;
use rand::rngs::StdRng;
use shard_core::Application;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A source of event times. The kernel loop asks its clock for "now"
/// once per event; virtual clocks are driven by the event queue, wall
/// clocks by the hardware.
pub trait Clock {
    /// The current time in ticks.
    fn now(&self) -> SimTime;

    /// Advances the clock to `to` (time never goes backwards). Virtual
    /// clocks jump; wall clocks ignore this — the hardware advances them.
    fn advance(&mut self, to: SimTime);
}

/// Simulated time: holds whatever the event loop last advanced it to.
#[derive(Clone, Copy, Debug, Default)]
pub struct VirtualClock {
    now: SimTime,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> SimTime {
        self.now
    }

    fn advance(&mut self, to: SimTime) {
        debug_assert!(to >= self.now, "simulated time is monotone");
        self.now = to;
    }
}

/// Monotonic wall-clock time in microseconds since construction, with
/// **globally unique, strictly increasing** ticks: every call to
/// [`WallClock::tick`] returns `max(elapsed_µs, last) + 1`, whatever
/// thread calls it. Two properties follow:
///
/// * ticks totally order all events in a live run (no two events share
///   a time), and
/// * the order is consistent with real time at microsecond resolution
///   (bursts within one microsecond are serialized by the atomic).
///
/// Shared across node threads behind an `Arc`; `tick` takes `&self`.
#[derive(Debug)]
pub struct WallClock {
    start: Instant,
    last: AtomicU64,
}

impl WallClock {
    /// A clock starting now, at tick zero.
    pub fn new() -> Self {
        WallClock {
            start: Instant::now(),
            last: AtomicU64::new(0),
        }
    }

    /// Draws the next unique tick (strictly greater than every tick any
    /// thread has drawn before).
    pub fn tick(&self) -> SimTime {
        let elapsed = self.start.elapsed().as_micros() as u64;
        let prev = self
            .last
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |last| {
                Some(last.max(elapsed) + 1)
            })
            .expect("fetch_update closure never returns None");
        prev.max(elapsed) + 1
    }

    /// Microseconds elapsed since construction (not unique — use for
    /// pacing, not for event ordering).
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        self.tick()
    }

    fn advance(&mut self, _to: SimTime) {}
}

/// How update messages travel between replicas — the seam between the
/// shared replica logic and the deployment. A
/// [`Propagation`](crate::Propagation) strategy sends through this
/// trait only, so the same strategy drives the simulator's event queue
/// ([`crate::kernel::QueueTransport`]: partition waits, sampled delays,
/// nemesis fate rewriting) and `shard-runtime`'s real
/// `std::sync::mpsc` channels.
pub trait Transport<A: Application> {
    /// Number of nodes reachable through this transport.
    fn nodes(&self) -> u16;

    /// Whether `a` and `b` can communicate at `now`. The simulator
    /// consults its partition schedule; real channels are always
    /// connected (partitions there are injected by dropping sends).
    fn connected(&self, now: SimTime, a: NodeId, b: NodeId) -> bool;

    /// Ships `entries` from `from` to `to`, to be merged at the
    /// receiver by the shared delivery handler
    /// ([`crate::kernel::Node::absorb`]).
    fn send(&mut self, now: SimTime, from: NodeId, to: NodeId, entries: Entries<A>);

    /// The deterministic RNG stream strategies draw from (e.g. gossip
    /// partner selection). The simulator hands out the run's seeded
    /// kernel RNG; live transports hand out a per-node seeded stream.
    fn rng(&mut self) -> &mut StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_follows_advance() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), 0);
        c.advance(17);
        assert_eq!(c.now(), 17);
        c.advance(17);
        assert_eq!(c.now(), 17);
    }

    #[test]
    fn wall_clock_ticks_are_unique_and_increasing() {
        let c = WallClock::new();
        let mut last = 0;
        for _ in 0..10_000 {
            let t = c.tick();
            assert!(t > last, "strictly increasing");
            last = t;
        }
    }

    #[test]
    fn wall_clock_ticks_are_unique_across_threads() {
        use std::sync::Arc;
        let c = Arc::new(WallClock::new());
        let mut all: Vec<SimTime> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let c = Arc::clone(&c);
                    s.spawn(move || (0..5_000).map(|_| c.tick()).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("tick thread"))
                .collect()
        });
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "no two threads ever share a tick");
    }
}
