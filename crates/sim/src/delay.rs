//! Message delay models.
//!
//! §1.3 leaves "probability distribution information … obtained by an
//! independent analysis, using information such as delay characteristics
//! of the message system" out of the paper's scope; experiment E10
//! closes that loop by measuring the empirical distribution of `k` under
//! these delay models.

use crate::events::SimTime;
use rand::Rng;

/// How long a message takes from sender to receiver, in ticks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DelayModel {
    /// Every message takes exactly this long.
    Fixed(SimTime),
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Minimum delay.
        lo: SimTime,
        /// Maximum delay (inclusive).
        hi: SimTime,
    },
    /// Exponential with the given mean (heavy tail: occasional stragglers
    /// produce the large-`k` transactions the cost bounds are about).
    Exponential {
        /// Mean delay.
        mean: SimTime,
    },
}

impl DelayModel {
    /// Samples one delay.
    ///
    /// # Panics
    ///
    /// Panics if a `Uniform` model has `lo > hi`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        match *self {
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform delay needs lo <= hi");
                rng.random_range(lo..=hi)
            }
            DelayModel::Exponential { mean } => {
                let u: f64 = rng.random::<f64>();
                // Inverse CDF, clamped away from u = 1 to avoid infinity.
                let x = -(1.0 - u.min(0.999_999)).ln() * mean as f64;
                x.round() as SimTime
            }
        }
    }

    /// The model's mean delay (exact for Fixed/Exponential, midpoint for
    /// Uniform).
    pub fn mean(&self) -> SimTime {
        match *self {
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform { lo, hi } => (lo + hi) / 2,
            DelayModel::Exponential { mean } => mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(DelayModel::Fixed(25).sample(&mut rng), 25);
        }
        assert_eq!(DelayModel::Fixed(25).mean(), 25);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = DelayModel::Uniform { lo: 10, hi: 20 };
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!((10..=20).contains(&d));
        }
        assert_eq!(m.mean(), 15);
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = DelayModel::Exponential { mean: 100 };
        let n = 20_000;
        let total: u64 = (0..n).map(|_| m.sample(&mut rng)).sum();
        let avg = total as f64 / n as f64;
        assert!((85.0..115.0).contains(&avg), "avg={avg}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = DelayModel::Exponential { mean: 50 };
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(m.sample(&mut a), m.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn bad_uniform_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = DelayModel::Uniform { lo: 5, hi: 1 }.sample(&mut rng);
    }
}
