//! Live §3 monitoring inside the kernel event loop.
//!
//! The offline pipeline waits for a run to finish, sorts the executed
//! transactions by timestamp, and folds the checkers over the result.
//! The [`LiveMonitor`] does the same verification *while the run is
//! still going*: every executed transaction enters a reorder buffer,
//! and a **watermark** — the minimum Lamport counter across all node
//! clocks — decides when a buffered transaction's position in the
//! serial order is final. A timestamp with Lamport value `L` is
//! *sealed* once `L ≤ watermark`: any transaction any node executes
//! later gets Lamport value `counter + 1 > watermark ≥ L`, so nothing
//! can ever sort before a sealed one. Sealed transactions drain to a
//! [`StreamChecker`] in timestamp order — exactly the order
//! [`crate::RunReport::timed_execution`] assigns — so the online
//! verdicts are bit-identical to running the offline checkers on the
//! finished report.
//!
//! Because a transaction's known set precedes its own timestamp (the
//! kernel's structural Lamport guarantee), every known timestamp of a
//! draining transaction is already sealed and indexed; the miss set is
//! the complement of those indices. Crashed nodes stall the watermark
//! (their clocks stand still), so rows buffer until recovery — a
//! verdict is never emitted on a guess — and [`LiveMonitor::flush`]
//! drains whatever remains once the run ends and no clock can tick
//! again.
//!
//! The monitor only *reads* the run (timestamps, clocks, the sink); it
//! never touches the RNG, the queue or the merge logs, so a monitored
//! run's transactions, messages and trace events are byte-identical to
//! the same run unmonitored — the only behavioural difference is the
//! optional early abort on a confirmed violation.

use crate::clock::Timestamp;
use crate::events::SimTime;
use crate::known::KnownSet;
use shard_core::stream::{StreamChecker, StreamReport, StreamRow};
use std::collections::BTreeMap;

/// How a kernel run should be monitored. Attached to a run via
/// `ClusterConfig::monitor`.
#[derive(Clone, Debug)]
pub struct MonitorConfig {
    /// Rows per verdict window (see [`StreamChecker::new`]).
    pub window: usize,
    /// Emit each sealed row as a `txn` trace event (the streaming
    /// vocabulary `shard-trace watch` and `certify` consume). Window
    /// verdicts are emitted regardless whenever the run has a sink.
    pub emit_rows: bool,
    /// Stop the run at the first confirmed transitivity violation: the
    /// kernel abandons the remaining events, so doomed chaos runs cost
    /// a prefix instead of a full schedule.
    pub abort_on_violation: bool,
}

impl Default for MonitorConfig {
    /// 64-row windows, row emission on, no early abort.
    fn default() -> Self {
        MonitorConfig {
            window: 64,
            emit_rows: true,
            abort_on_violation: false,
        }
    }
}

/// The in-run monitor: reorder buffer + watermark sealing in front of
/// a [`StreamChecker`]. Created by the kernel when
/// `ClusterConfig::monitor` is set.
#[derive(Debug)]
pub struct LiveMonitor {
    cfg: MonitorConfig,
    checker: StreamChecker,
    /// Executed but not yet sealed transactions, in timestamp order.
    /// Known sets are persistent snapshots ([`KnownSet`]) sharing
    /// structure with the kernel's report — buffering one costs a
    /// reference-count bump, not a copy.
    pending: BTreeMap<Timestamp, (SimTime, KnownSet)>,
    /// Every sealed timestamp, in seal order — which *is* ascending
    /// timestamp order, so a row's serial index is its position here
    /// and a sorted known set resolves to indices by one merge scan.
    sealed_ts: Vec<Timestamp>,
}

impl LiveMonitor {
    /// A fresh monitor.
    ///
    /// # Panics
    ///
    /// Panics if the configured window is 0.
    pub fn new(cfg: MonitorConfig) -> Self {
        LiveMonitor {
            checker: StreamChecker::new(cfg.window),
            cfg,
            pending: BTreeMap::new(),
            sealed_ts: Vec::new(),
        }
    }

    /// Buffers one executed transaction (timestamp, initiation time,
    /// known set) until the watermark seals it.
    pub fn ingest(&mut self, ts: Timestamp, time: SimTime, known: KnownSet) {
        let shadowed = self.pending.insert(ts, (time, known));
        debug_assert!(shadowed.is_none(), "timestamps are globally unique");
    }

    /// Drains every buffered transaction sealed by `watermark` (the
    /// minimum Lamport counter over all node clocks) into the checker,
    /// in timestamp order, emitting `txn` rows and `monitor.window`
    /// verdicts to `sink`.
    pub fn advance(&mut self, watermark: u64, sink: Option<&shard_obs::EventSink>) {
        while let Some(entry) = self.pending.first_entry() {
            if entry.key().lamport > watermark {
                break;
            }
            let (ts, (time, known)) = entry.remove_entry();
            self.seal(ts, time, known, sink);
        }
    }

    /// Drains everything left in the buffer — sound only once no clock
    /// can tick again, i.e. when the event loop has ended (or was
    /// aborted, where the remaining rows still deserve verdicts).
    pub fn flush(&mut self, sink: Option<&shard_obs::EventSink>) {
        while let Some(entry) = self.pending.first_entry() {
            let (ts, (time, known)) = entry.remove_entry();
            self.seal(ts, time, known, sink);
        }
    }

    fn seal(
        &mut self,
        ts: Timestamp,
        time: SimTime,
        known: KnownSet,
        sink: Option<&shard_obs::EventSink>,
    ) {
        let index = self.sealed_ts.len();
        // Every known timestamp precedes `ts` (Lamport guarantee) and
        // is therefore already sealed; the known set arrives in
        // timestamp order (merge logs keep entries sorted), so the miss
        // set is the positions where `sealed` and `known` diverge. With
        // `m` misses seen so far, `sealed[t] == known[t - m]` is true on
        // the run up to the next miss and false from it onward (both
        // sequences are strictly increasing), so each miss is found by
        // one binary search over `KnownSet::nth` rank lookups:
        // O(misses · log²index), not O(index) — the known set is nearly
        // the whole prefix on healthy runs.
        let mut missed = Vec::with_capacity(index - known.len());
        let mut j = 0usize;
        while j < index {
            let m = missed.len();
            let diverged = |t: usize| known.nth(t - m).is_none_or(|k| k != self.sealed_ts[t]);
            if !diverged(j) {
                // Skip the aligned run: first diverged position in (j, index].
                let (mut lo, mut hi) = (j, index);
                while hi - lo > 1 {
                    let mid = lo + (hi - lo) / 2;
                    if diverged(mid) {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                j = hi;
                if j == index {
                    break;
                }
            }
            missed.push(j);
            j += 1;
        }
        debug_assert_eq!(
            known.len() + missed.len(),
            index,
            "monitor invariant: every known timestamp seals before its knower"
        );
        self.sealed_ts.push(ts);
        let row = StreamRow {
            index,
            time,
            missed,
        };
        if self.cfg.emit_rows {
            if let Some(s) = sink {
                s.write_line(&row.to_json_line());
            }
        }
        if let Some(verdict) = self.checker.push(&row) {
            if let Some(s) = sink {
                s.write_line(&verdict.to_json_line());
            }
        }
    }

    /// Whether a confirmed violation should stop the run.
    pub fn should_abort(&self) -> bool {
        self.cfg.abort_on_violation && !self.checker.transitive_so_far()
    }

    /// Rows sealed so far.
    pub fn sealed(&self) -> usize {
        self.checker.rows()
    }

    /// The verdicts and certificates over everything sealed so far.
    pub fn report(&self) -> StreamReport {
        self.checker.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::NodeId;

    fn ts(lamport: u64, node: u16) -> Timestamp {
        Timestamp {
            lamport,
            node: NodeId(node),
        }
    }

    #[test]
    fn watermark_seals_in_timestamp_order() {
        let mut m = LiveMonitor::new(MonitorConfig {
            window: 1,
            emit_rows: false,
            abort_on_violation: false,
        });
        // Node 1 executes at lamport 2 before node 0's lamport-1 row
        // reaches the monitor — the buffer must reorder them.
        m.ingest(ts(2, 1), 10, [ts(1, 0)].into_iter().collect());
        m.ingest(ts(1, 0), 0, KnownSet::new());
        // Watermark 0: nothing sealed yet.
        m.advance(0, None);
        assert_eq!(m.sealed(), 0);
        // Watermark 1 seals only the lamport-1 row.
        m.advance(1, None);
        assert_eq!(m.sealed(), 1);
        m.advance(2, None);
        assert_eq!(m.sealed(), 2);
        let report = m.report();
        assert!(report.transitive);
        assert_eq!(report.max_missed, 0, "row 1 knew row 0");
    }

    #[test]
    fn flush_drains_the_stalled_tail_and_misses_are_complements() {
        let mut m = LiveMonitor::new(MonitorConfig {
            window: 2,
            emit_rows: false,
            abort_on_violation: true,
        });
        m.ingest(ts(1, 0), 0, KnownSet::new());
        // (2,0) saw (1,0); (3,1) saw (2,0) but not (1,0) — the §3
        // transitivity violation (low=0, mid=1, top=2).
        m.ingest(ts(2, 0), 3, [ts(1, 0)].into_iter().collect());
        m.ingest(ts(3, 1), 5, [ts(2, 0)].into_iter().collect());
        m.advance(2, None);
        assert_eq!(m.sealed(), 2);
        assert!(!m.should_abort());
        // Node 1's clock never reaches 3, so the last row waits for the
        // end-of-run flush.
        m.flush(None);
        assert_eq!(m.sealed(), 3);
        let report = m.report();
        assert_eq!(report.max_missed, 1);
        assert!(!report.transitive);
        assert!(m.should_abort());
    }
}
