//! Partial replication (§6): removing the "inessential full replication
//! assumption".
//!
//! "Even with only partial replication, it should be possible to
//! continue to maintain the correctness conditions we describe in this
//! paper, by judicious assignment of data and transactions to nodes,
//! (i.e. in such a way that each transaction will have copies of all the
//! data it requires)."
//!
//! The database is divided into **objects**; each node replicates a
//! subset of them (its *placement*). A transaction must be invoked at a
//! node holding every object its decision reads, and an update is
//! broadcast only to the nodes holding one of the objects it writes —
//! with one deliberate exception: an update writing *no* objects is pure
//! serial-order information and goes to every node, which is what lets a
//! full placement reproduce the eager-broadcast run exactly. Because the
//! prefix-subsequence condition never mentions replication, the emitted
//! execution is checked by exactly the same machinery as the fully
//! replicated cluster — the paper's point. What changes is the *message
//! volume*, which [`RunReport::messages_sent`] measures (experiment
//! E16).
//!
//! Since the kernel refactor this module contributes the [`Placement`]
//! map and the [`PartialPlacement`] propagation strategy; the event loop
//! lives in [`crate::kernel`], entered via [`Runner::partial`] (the
//! deprecated `PartialCluster` facade wraps it).

use crate::clock::{NodeId, Timestamp};
use crate::events::SimTime;
use crate::kernel::{Entries, Node, Propagation, RunReport, Runner};
use crate::transport::Transport;
use shard_core::{Application, ObjectId, ObjectModel};
use std::sync::Arc;

use crate::kernel::{ClusterConfig, Invocation};

/// Which nodes replicate which objects.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Placement {
    held: Vec<Vec<ObjectId>>, // per node
}

impl Placement {
    /// Full replication of `objects` at `nodes` nodes (the degenerate
    /// case, for comparisons).
    pub fn full(nodes: u16, objects: &[ObjectId]) -> Self {
        Placement {
            held: vec![objects.to_vec(); nodes as usize],
        }
    }

    /// Explicit per-node object sets.
    pub fn new(held: Vec<Vec<ObjectId>>) -> Self {
        Placement { held }
    }

    /// Round-robin placement with a replication factor: object `i` lives
    /// on nodes `i, i+1, …, i+factor−1 (mod nodes)`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero or exceeds the node count.
    pub fn round_robin(nodes: u16, objects: &[ObjectId], factor: u16) -> Self {
        assert!(factor >= 1 && factor <= nodes, "1 ≤ factor ≤ nodes");
        let mut held = vec![Vec::new(); nodes as usize];
        for (i, &o) in objects.iter().enumerate() {
            for r in 0..factor {
                held[(i + r as usize) % nodes as usize].push(o);
            }
        }
        Placement { held }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u16 {
        self.held.len() as u16
    }

    /// Whether `node` holds `object`.
    pub fn holds(&self, node: NodeId, object: ObjectId) -> bool {
        self.held[node.0 as usize].contains(&object)
    }

    /// Whether `node` holds every object in `objects`.
    pub fn holds_all(&self, node: NodeId, objects: &[ObjectId]) -> bool {
        objects.iter().all(|o| self.holds(node, *o))
    }

    /// The nodes holding at least one of `objects`.
    pub fn holders_of_any(&self, objects: &[ObjectId]) -> Vec<NodeId> {
        (0..self.nodes())
            .map(NodeId)
            .filter(|n| objects.iter().any(|o| self.holds(*n, *o)))
            .collect()
    }

    /// A node holding all of `objects`, if any (useful for routing).
    pub fn any_holder_of_all(&self, objects: &[ObjectId]) -> Option<NodeId> {
        (0..self.nodes())
            .map(NodeId)
            .find(|n| self.holds_all(*n, objects))
    }
}

/// Result of a partially replicated run (alias of the kernel-wide
/// report; see [`RunReport::objects_consistent`] for the per-object
/// consistency check that replaces global agreement here).
pub type PartialReport<A> = RunReport<A>;

impl<A: Application> RunReport<A> {
    /// Per-object mutual consistency: all holders of each object agree
    /// on its projection.
    pub fn objects_consistent(&self, app: &A, placement: &Placement) -> bool
    where
        A: ObjectModel,
    {
        for o in app.objects() {
            let mut views = (0..placement.nodes())
                .map(NodeId)
                .filter(|n| placement.holds(*n, o))
                .map(|n| app.project(&self.final_states[n.0 as usize], o));
            if let Some(first) = views.next() {
                if !views.all(|v| v == first) {
                    return false;
                }
            }
        }
        true
    }
}

/// Object-aware propagation: the moment a transaction executes, its
/// update is sent only to the nodes whose [`Placement`] holds one of the
/// objects it writes. Updates with an empty write set carry pure
/// serial-order information and are sent to every node, so
/// `PartialPlacement::full` reproduces [`crate::cluster::EagerBroadcast`]
/// exactly.
#[derive(Clone, Debug)]
pub struct PartialPlacement {
    placement: Placement,
}

impl PartialPlacement {
    /// Routes by the given placement.
    pub fn new(placement: Placement) -> Self {
        PartialPlacement { placement }
    }

    /// The degenerate fully replicated placement (for comparisons with
    /// eager broadcast).
    pub fn full(nodes: u16, objects: &[ObjectId]) -> Self {
        PartialPlacement {
            placement: Placement::full(nodes, objects),
        }
    }

    /// The placement routing this strategy.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }
}

impl<A: ObjectModel> Propagation<A> for PartialPlacement {
    fn label(&self) -> &'static str {
        "partial"
    }

    /// Every invocation must target a node holding all the objects its
    /// decision reads (the §6 routing rule).
    ///
    /// # Panics
    ///
    /// Panics if an invocation targets a node missing a required object.
    fn validate(&self, app: &A, invocations: &[Invocation<A::Decision>]) {
        for inv in invocations {
            let reads = app.decision_objects(&inv.decision);
            assert!(
                self.placement.holds_all(inv.node, &reads),
                "node {} lacks objects {:?} read by {:?}",
                inv.node,
                reads,
                inv.decision
            );
        }
    }

    fn on_execute(
        &mut self,
        app: &A,
        net: &mut dyn Transport<A>,
        node: &Node<A>,
        now: SimTime,
        ts: Timestamp,
        update: &Arc<A::Update>,
    ) {
        let writes = app.update_objects(update);
        let entries: Entries<A> = Arc::from(vec![(ts, Arc::clone(update))]);
        let recipients = if writes.is_empty() {
            // Pure serial-order information: everyone hears about it.
            (0..net.nodes()).map(NodeId).collect()
        } else {
            self.placement.holders_of_any(&writes)
        };
        for to in recipients {
            if to == node.id {
                continue;
            }
            net.send(now, node.id, to, Arc::clone(&entries));
        }
    }
}

impl<'a, A: ObjectModel> Runner<'a, A, PartialPlacement> {
    /// A partially replicated runner routing by `placement` — the
    /// canonical entry point the old [`PartialCluster`] facade wraps.
    /// Each invocation must target a node holding all the objects its
    /// decision reads (checked at run start).
    ///
    /// # Panics
    ///
    /// Panics if the node counts disagree or the cluster is empty.
    pub fn partial(app: &'a A, config: ClusterConfig, placement: Placement) -> Self {
        assert_eq!(
            config.nodes,
            placement.nodes(),
            "placement must cover all nodes"
        );
        Runner::new(app, config, PartialPlacement::new(placement))
    }
}

/// A partially replicated SHARD cluster (facade over the kernel with a
/// [`PartialPlacement`] strategy).
#[deprecated(
    since = "0.1.0",
    note = "use `Runner::partial(app, config, placement)` instead"
)]
pub struct PartialCluster<'a, A: ObjectModel> {
    app: &'a A,
    config: ClusterConfig,
    placement: Placement,
}

#[allow(deprecated)]
impl<'a, A: ObjectModel> PartialCluster<'a, A> {
    /// Creates a cluster; `config.nodes` must match the placement.
    ///
    /// # Panics
    ///
    /// Panics if the node counts disagree or the cluster is empty.
    pub fn new(app: &'a A, config: ClusterConfig, placement: Placement) -> Self {
        assert!(config.nodes > 0, "a cluster needs at least one node");
        assert_eq!(
            config.nodes,
            placement.nodes(),
            "placement must cover all nodes"
        );
        PartialCluster {
            app,
            config,
            placement,
        }
    }

    /// Runs the schedule. Each invocation must target a node holding all
    /// the objects its decision reads.
    ///
    /// # Panics
    ///
    /// Panics if an invocation targets a node missing a required object.
    pub fn run(&self, invocations: Vec<Invocation<A::Decision>>) -> PartialReport<A> {
        Runner::partial(self.app, self.config.clone(), self.placement.clone()).run(invocations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DelayModel;
    use shard_core::DecisionOutcome;

    /// A two-register database: object 0 and object 1, each an
    /// independent counter.
    struct TwoRegs;

    #[derive(Clone, Debug, PartialEq)]
    struct Bump(u32);

    impl Application for TwoRegs {
        type State = [u64; 2];
        type Update = Bump;
        type Decision = Bump;
        fn initial_state(&self) -> [u64; 2] {
            [0, 0]
        }
        fn is_well_formed(&self, _: &[u64; 2]) -> bool {
            true
        }
        fn apply(&self, s: &[u64; 2], u: &Bump) -> [u64; 2] {
            let mut v = *s;
            v[u.0 as usize] += 1;
            v
        }
        fn decide(&self, d: &Bump, _: &[u64; 2]) -> DecisionOutcome<Bump> {
            DecisionOutcome::update_only(d.clone())
        }
        fn constraint_count(&self) -> usize {
            0
        }
        fn constraint_name(&self, _: usize) -> &str {
            unreachable!()
        }
        fn cost(&self, _: &[u64; 2], _: usize) -> u64 {
            0
        }
    }

    impl ObjectModel for TwoRegs {
        fn objects(&self) -> Vec<ObjectId> {
            vec![ObjectId(0), ObjectId(1)]
        }
        fn update_objects(&self, u: &Bump) -> Vec<ObjectId> {
            vec![ObjectId(u.0)]
        }
        fn decision_objects(&self, d: &Bump) -> Vec<ObjectId> {
            vec![ObjectId(d.0)]
        }
        fn project(&self, s: &[u64; 2], o: ObjectId) -> String {
            s[o.0 as usize].to_string()
        }
    }

    fn cfg(nodes: u16) -> ClusterConfig {
        ClusterConfig {
            nodes,
            seed: 1,
            delay: DelayModel::Fixed(5),
            ..Default::default()
        }
    }

    #[test]
    fn placement_helpers() {
        let objs = [ObjectId(0), ObjectId(1), ObjectId(2)];
        let p = Placement::round_robin(3, &objs, 2);
        assert!(p.holds(NodeId(0), ObjectId(0)));
        assert!(p.holds(NodeId(1), ObjectId(0)));
        assert!(!p.holds(NodeId(2), ObjectId(0)));
        assert_eq!(p.holders_of_any(&[ObjectId(0)]), vec![NodeId(0), NodeId(1)]);
        assert!(p.holds_all(NodeId(1), &[ObjectId(0), ObjectId(1)]));
        assert_eq!(
            p.any_holder_of_all(&[ObjectId(0), ObjectId(2)]),
            Some(NodeId(0))
        );
        let full = Placement::full(2, &objs);
        assert!(full.holds_all(NodeId(1), &objs));
    }

    #[test]
    fn updates_only_reach_holders() {
        // Object 0 on nodes {0,1}, object 1 on nodes {1,2}.
        let app = TwoRegs;
        let p = Placement::new(vec![
            vec![ObjectId(0)],
            vec![ObjectId(0), ObjectId(1)],
            vec![ObjectId(1)],
        ]);
        let runner = Runner::partial(&app, cfg(3), p.clone());
        let invs = vec![
            Invocation::new(0, NodeId(0), Bump(0)),
            Invocation::new(10, NodeId(2), Bump(1)),
        ];
        let report = runner.run(invs);
        // Each update went to exactly one other holder.
        assert_eq!(report.messages_sent, 2);
        assert!(report.objects_consistent(&app, &p));
        // Node 0 never heard about object 1.
        assert_eq!(report.final_states[0], [1, 0]);
        assert_eq!(report.final_states[1], [1, 1]);
        assert_eq!(report.final_states[2], [0, 1]);
        let te = report.timed_execution();
        te.execution.verify(&app).unwrap();
    }

    #[test]
    fn full_placement_matches_global_state() {
        let app = TwoRegs;
        let p = Placement::full(3, &app.objects());
        let runner = Runner::partial(&app, cfg(3), p.clone());
        let invs: Vec<_> = (0..10)
            .map(|i| Invocation::new(i * 5, NodeId((i % 3) as u16), Bump((i % 2) as u32)))
            .collect();
        let report = runner.run(invs);
        assert!(report.objects_consistent(&app, &p));
        assert_eq!(report.final_states[0], [5, 5]);
        // Full replication sends to every other node: 10 × 2 messages.
        assert_eq!(report.messages_sent, 20);
    }

    #[test]
    fn partial_replication_cuts_messages() {
        let app = TwoRegs;
        let objs = app.objects();
        let invs: Vec<_> = (0..20)
            .map(|i| Invocation::new(i * 5, NodeId(0), Bump(0)))
            .collect();
        // All activity on object 0.
        let full = Runner::partial(&app, cfg(4), Placement::full(4, &objs))
            .run(invs.clone())
            .messages_sent;
        let part = Runner::partial(&app, cfg(4), Placement::round_robin(4, &objs, 2))
            .run(invs)
            .messages_sent;
        assert!(part < full, "partial {part} < full {full}");
    }

    #[test]
    #[should_panic(expected = "lacks objects")]
    fn misrouted_decision_panics() {
        let app = TwoRegs;
        let p = Placement::new(vec![vec![ObjectId(0)], vec![ObjectId(1)]]);
        let runner = Runner::partial(&app, cfg(2), p);
        let _ = runner.run(vec![Invocation::new(0, NodeId(0), Bump(1))]);
    }

    /// The deprecated facade stays a bit-exact wrapper of
    /// [`Runner::partial`] until it is removed.
    #[test]
    #[allow(deprecated)]
    fn facade_matches_runner() {
        let app = TwoRegs;
        let p = Placement::round_robin(3, &app.objects(), 2);
        let invs: Vec<_> = (0..8)
            .map(|i| Invocation::new(i * 4, NodeId(1), Bump((i % 2) as u32)))
            .collect();
        let via_facade = PartialCluster::new(&app, cfg(3), p.clone()).run(invs.clone());
        let via_runner = Runner::partial(&app, cfg(3), p).run(invs);
        assert_eq!(via_facade.final_states, via_runner.final_states);
        assert_eq!(via_facade.messages_sent, via_runner.messages_sent);
    }
}
