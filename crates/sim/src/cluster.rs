//! The simulated SHARD cluster (§1.2, §3.3): eager broadcast.
//!
//! [`Runner::eager`] runs a schedule of client [`Invocation`]s against
//! `n` fully replicated nodes:
//!
//! 1. the origin node assigns a Lamport timestamp, runs the **decision
//!    part once** against its local merged state, performs the external
//!    actions, and merges its own update;
//! 2. the update (never the decision) is broadcast to every peer,
//!    arriving after partition holds plus network delay;
//! 3. receiving nodes merge it by timestamp, undoing and redoing as
//!    needed ([`crate::merge`]).
//!
//! The run produces a [`ClusterReport`] whose centrepiece is a formal
//! [`shard_core::TimedExecution`]: the global timestamp order of the
//! transactions, each with the prefix subsequence its origin node
//! actually knew at decision time. [`shard_core::Execution::verify`]
//! re-checks that the simulator behaved exactly as the paper's model
//! prescribes, and [`RunReport::mutually_consistent`] checks that, once
//! every message has drained, all node copies agree — the
//! mutual-consistency guarantee of §1.2.
//!
//! The event loop lives in [`crate::kernel`]; this module contributes
//! the [`EagerBroadcast`] propagation strategy (flood every update to
//! every peer the moment it executes, optionally piggybacking the
//! origin's whole log for transitivity) and the deprecated `Cluster`
//! facade, now a thin wrapper over [`Runner::eager`].

use crate::clock::{NodeId, Timestamp};
use crate::events::SimTime;
use crate::kernel::{Entries, Node, Propagation, RunReport, Runner};
use crate::transport::Transport;
use shard_core::Application;
use std::sync::Arc;

pub use crate::kernel::{ClusterConfig, ExecutedTxn, Invocation};

/// Everything a cluster run produces (alias of the kernel-wide report).
pub type ClusterReport<A> = RunReport<A>;

/// Flooding propagation: the moment a transaction executes, its update
/// is sent to every peer. With `piggyback` the origin attaches its whole
/// log, so any single message carries everything its sender knew —
/// transitive executions by construction (§3.3).
#[derive(Clone, Copy, Debug, Default)]
pub struct EagerBroadcast {
    /// Attach the origin's full log to every broadcast.
    pub piggyback: bool,
}

impl<A: Application> Propagation<A> for EagerBroadcast {
    fn label(&self) -> &'static str {
        "cluster"
    }

    fn on_execute(
        &mut self,
        _app: &A,
        net: &mut dyn Transport<A>,
        node: &Node<A>,
        now: SimTime,
        ts: Timestamp,
        update: &Arc<A::Update>,
    ) {
        // Piggybacked entries first, the fresh update last, so receivers
        // merge the origin's history before its newest timestamp.
        let mut batch: Vec<(Timestamp, Arc<A::Update>)> = if self.piggyback {
            node.log
                .entries()
                .iter()
                .filter(|(t, _)| *t != ts)
                .cloned()
                .collect()
        } else {
            Vec::new()
        };
        batch.push((ts, Arc::clone(update)));
        let entries: Entries<A> = Arc::from(batch);
        for peer in 0..net.nodes() {
            let to = NodeId(peer);
            if to == node.id {
                continue;
            }
            net.send(now, node.id, to, Arc::clone(&entries));
        }
    }
}

impl<'a, A: Application> Runner<'a, A, EagerBroadcast> {
    /// An eager-broadcast (flooding) runner over `config.nodes` replicas
    /// of `app` — the canonical entry point the old [`Cluster`] facade
    /// wraps. Piggybacking follows `config.piggyback`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero nodes.
    pub fn eager(app: &'a A, config: ClusterConfig) -> Self {
        let piggyback = config.piggyback;
        Runner::new(app, config, EagerBroadcast { piggyback })
    }
}

/// A simulated SHARD cluster (eager-broadcast facade over the kernel).
///
/// # Examples
///
/// ```
/// use shard_apps::airline::{AirlineTxn, FlyByNight};
/// use shard_apps::Person;
/// use shard_sim::{ClusterConfig, Invocation, NodeId, Runner};
///
/// let app = FlyByNight::new(3);
/// let report = Runner::eager(&app, ClusterConfig::default()).run(vec![
///     Invocation::new(0, NodeId(0), AirlineTxn::Request(Person(1))),
///     Invocation::new(9, NodeId(4), AirlineTxn::MoveUp),
/// ]);
/// assert!(report.mutually_consistent());
/// report.timed_execution().execution.verify(&app).unwrap();
/// ```
#[deprecated(since = "0.1.0", note = "use `Runner::eager(app, config)` instead")]
pub struct Cluster<'a, A: Application> {
    app: &'a A,
    config: ClusterConfig,
}

#[allow(deprecated)]
impl<'a, A: Application> Cluster<'a, A> {
    /// Creates a cluster of `config.nodes` replicas of `app`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero nodes.
    pub fn new(app: &'a A, config: ClusterConfig) -> Self {
        assert!(config.nodes > 0, "a cluster needs at least one node");
        Cluster { app, config }
    }

    /// Runs the invocation schedule to completion (all broadcasts
    /// drained) and reports.
    ///
    /// # Panics
    ///
    /// Panics if an invocation names a node outside the cluster.
    pub fn run(&self, invocations: Vec<Invocation<A::Decision>>) -> ClusterReport<A> {
        self.run_with_critical(invocations, |_| false)
    }

    /// Like [`Cluster::run`], but transactions selected by `is_critical`
    /// run through the §3.3 barrier protocol — see
    /// [`Runner::run_with_critical`] for the full story.
    ///
    /// # Panics
    ///
    /// Panics if an invocation names a node outside the cluster.
    pub fn run_with_critical(
        &self,
        invocations: Vec<Invocation<A::Decision>>,
        is_critical: impl Fn(&A::Decision) -> bool,
    ) -> ClusterReport<A> {
        Runner::eager(self.app, self.config.clone()).run_with_critical(invocations, is_critical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayModel;
    use crate::partition::{PartitionSchedule, PartitionWindow};
    use shard_core::{conditions, DecisionOutcome};

    /// Grow-only counter with a cap-aware decision, to make missing
    /// information observable.
    struct Counter;

    #[derive(Clone, Debug, PartialEq)]
    enum CUpd {
        Inc,
        Noop,
    }

    impl Application for Counter {
        type State = i64;
        type Update = CUpd;
        type Decision = ();
        fn initial_state(&self) -> i64 {
            0
        }
        fn is_well_formed(&self, _: &i64) -> bool {
            true
        }
        fn apply(&self, s: &i64, u: &CUpd) -> i64 {
            match u {
                CUpd::Inc => s + 1,
                CUpd::Noop => *s,
            }
        }
        fn decide(&self, _: &(), observed: &i64) -> DecisionOutcome<CUpd> {
            if *observed < 3 {
                DecisionOutcome::update_only(CUpd::Inc)
            } else {
                DecisionOutcome::update_only(CUpd::Noop)
            }
        }
        fn constraint_count(&self) -> usize {
            0
        }
        fn constraint_name(&self, _: usize) -> &str {
            unreachable!()
        }
        fn cost(&self, _: &i64, _: usize) -> u64 {
            0
        }
    }

    fn spread_invocations(n: usize, nodes: u16, gap: SimTime) -> Vec<Invocation<()>> {
        (0..n)
            .map(|i| Invocation::new(i as SimTime * gap, NodeId((i % nodes as usize) as u16), ()))
            .collect()
    }

    #[test]
    fn single_node_behaves_serially() {
        let app = Counter;
        let runner = Runner::eager(
            &app,
            ClusterConfig {
                nodes: 1,
                ..Default::default()
            },
        );
        let report = runner.run(spread_invocations(10, 1, 5));
        assert_eq!(report.final_states[0], 3, "cap respected with full info");
        let te = report.timed_execution();
        te.execution.verify(&app).unwrap();
        assert_eq!(conditions::max_missed(&te.execution), 0);
        assert!(te.is_orderly());
    }

    #[test]
    fn replicas_converge_and_execution_verifies() {
        let app = Counter;
        let runner = Runner::eager(
            &app,
            ClusterConfig {
                nodes: 4,
                seed: 7,
                ..Default::default()
            },
        );
        let report = runner.run(spread_invocations(40, 4, 3));
        assert!(report.mutually_consistent());
        let te = report.timed_execution();
        te.execution.verify(&app).unwrap();
        assert_eq!(te.execution.len(), 40);
        // The merged result equals the formal execution's final state.
        assert_eq!(report.final_states[0], te.execution.final_state(&app));
    }

    #[test]
    fn concurrent_invocations_overshoot_the_cap() {
        // All 10 transactions fire at t=0 on different nodes: nobody has
        // seen anybody, so all increment — exactly the availability
        // penalty the paper studies.
        let app = Counter;
        let runner = Runner::eager(
            &app,
            ClusterConfig {
                nodes: 5,
                seed: 1,
                ..Default::default()
            },
        );
        let invs: Vec<_> = (0..10)
            .map(|i| Invocation::new(0, NodeId(i % 5), ()))
            .collect();
        let report = runner.run(invs);
        assert!(report.final_states[0] > 3);
        let te = report.timed_execution();
        te.execution.verify(&app).unwrap();
        assert!(conditions::max_missed(&te.execution) > 0);
    }

    #[test]
    fn partition_delays_information_but_heals() {
        let app = Counter;
        let partitions =
            PartitionSchedule::new(vec![PartitionWindow::isolate(0, 1000, vec![NodeId(0)])]);
        let runner = Runner::eager(
            &app,
            ClusterConfig {
                nodes: 3,
                seed: 3,
                delay: DelayModel::Fixed(5),
                partitions,
                ..Default::default()
            },
        );
        // Node 0 is isolated; its transactions see only themselves.
        let report = runner.run(spread_invocations(12, 3, 10));
        assert!(report.mutually_consistent(), "heals after the window");
        let te = report.timed_execution();
        te.execution.verify(&app).unwrap();
        assert!(conditions::max_missed(&te.execution) > 0);
    }

    #[test]
    fn piggybacking_yields_transitive_executions() {
        let app = Counter;
        for piggyback in [false, true] {
            let runner = Runner::eager(
                &app,
                ClusterConfig {
                    nodes: 4,
                    seed: 11,
                    delay: DelayModel::Exponential { mean: 40 },
                    piggyback,
                    ..Default::default()
                },
            );
            let report = runner.run(spread_invocations(60, 4, 2));
            let te = report.timed_execution();
            te.execution.verify(&app).unwrap();
            if piggyback {
                assert!(conditions::is_transitive(&te.execution));
            }
        }
    }

    #[test]
    fn same_node_transactions_are_centralized() {
        // Transactions initiated at one node always see each other —
        // the implementation of centralization suggested in §3.3.
        let app = Counter;
        let runner = Runner::eager(
            &app,
            ClusterConfig {
                nodes: 3,
                seed: 5,
                ..Default::default()
            },
        );
        let mut invs = spread_invocations(30, 3, 4);
        // Mark: transactions at node 0.
        let report = runner.run(std::mem::take(&mut invs));
        let te = report.timed_execution();
        let node0_group: Vec<usize> = report
            .transactions
            .iter()
            .enumerate()
            .filter(|(_, t)| t.node == NodeId(0))
            .map(|(i, _)| i)
            .collect();
        assert!(conditions::is_centralized(&te.execution, &node0_group));
    }

    #[test]
    fn out_of_order_arrivals_cause_replays() {
        let app = Counter;
        let runner = Runner::eager(
            &app,
            ClusterConfig {
                nodes: 4,
                seed: 2,
                delay: DelayModel::Uniform { lo: 1, hi: 200 },
                ..Default::default()
            },
        );
        let report = runner.run(spread_invocations(100, 4, 1));
        assert!(
            report.total_replayed() > 0,
            "high-variance delays reorder messages"
        );
        assert!(report.mutually_consistent());
    }

    #[test]
    fn sink_captures_structured_events_matching_the_report() {
        let app = Counter;
        let sink = shard_obs::EventSink::in_memory();
        let partitions =
            PartitionSchedule::new(vec![PartitionWindow::isolate(0, 300, vec![NodeId(0)])]);
        let runner = Runner::eager(
            &app,
            ClusterConfig {
                nodes: 3,
                seed: 2,
                delay: DelayModel::Uniform { lo: 1, hi: 200 },
                partitions,
                sink: Some(Arc::clone(&sink)),
                ..Default::default()
            },
        );
        let report = runner.run(spread_invocations(30, 3, 2));
        let summary = shard_obs::summarize(&sink.drain_to_string());
        assert_eq!(summary.malformed, 0, "every line is valid JSON");
        assert_eq!(summary.event_counts["execute"], 30);
        assert_eq!(summary.event_counts["deliver"], report.messages_sent);
        assert_eq!(summary.event_counts["partition.cut"], 1);
        assert_eq!(summary.event_counts["partition.heal"], 1);
        // The per-node undo/redo distribution reconstructed from the
        // trace equals the report's merge metrics exactly.
        let ooo: u64 = report.node_metrics.iter().map(|m| m.out_of_order).sum();
        assert_eq!(
            summary
                .event_counts
                .get("merge.out_of_order")
                .copied()
                .unwrap_or(0),
            ooo
        );
        let traced_replayed: u64 = summary.node_replay.values().map(|r| r.replayed).sum();
        assert_eq!(traced_replayed, report.total_replayed());
        assert!(
            summary.spans.contains_key("sim.cluster.run"),
            "run emits its wall-time span line"
        );
    }

    #[test]
    fn determinism_per_seed() {
        let app = Counter;
        let run = |seed| {
            let runner = Runner::eager(
                &app,
                ClusterConfig {
                    nodes: 3,
                    seed,
                    ..Default::default()
                },
            );
            runner.run(spread_invocations(25, 3, 2)).final_states
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = Runner::eager(
            &Counter,
            ClusterConfig {
                nodes: 0,
                ..Default::default()
            },
        );
    }

    /// The deprecated facade stays a bit-exact wrapper of
    /// [`Runner::eager`] until it is removed.
    #[test]
    #[allow(deprecated)]
    fn facade_matches_runner() {
        let app = Counter;
        let cfg = ClusterConfig {
            nodes: 4,
            seed: 23,
            piggyback: true,
            ..Default::default()
        };
        let via_facade = Cluster::new(&app, cfg.clone()).run(spread_invocations(20, 4, 3));
        let via_runner = Runner::eager(&app, cfg).run(spread_invocations(20, 4, 3));
        assert_eq!(via_facade.final_states, via_runner.final_states);
        assert_eq!(via_facade.messages_sent, via_runner.messages_sent);
        assert_eq!(via_facade.entries_shipped, via_runner.entries_shipped);
    }
}
