//! The simulated SHARD cluster (§1.2, §3.3).
//!
//! A [`Cluster`] runs a schedule of client [`Invocation`]s against `n`
//! fully replicated nodes:
//!
//! 1. the origin node assigns a Lamport timestamp, runs the **decision
//!    part once** against its local merged state, performs the external
//!    actions, and merges its own update;
//! 2. the update (never the decision) is broadcast to every peer,
//!    arriving after partition holds plus network delay;
//! 3. receiving nodes merge it by timestamp, undoing and redoing as
//!    needed ([`crate::merge`]).
//!
//! The run produces a [`ClusterReport`] whose centrepiece is a formal
//! [`TimedExecution`]: the global timestamp order of the transactions,
//! each with the prefix subsequence its origin node actually knew at
//! decision time. [`shard_core::Execution::verify`] re-checks that the
//! simulator behaved exactly as the paper's model prescribes, and
//! [`ClusterReport::mutually_consistent`] checks that, once every message
//! has drained, all node copies agree — the mutual-consistency guarantee
//! of §1.2.

use crate::broadcast::{delivery_time, UpdateMsg};
use crate::clock::{LamportClock, NodeId, Timestamp};
use crate::crash::CrashSchedule;
use crate::delay::DelayModel;
use crate::events::{EventQueue, SimTime};
use crate::merge::{MergeLog, MergeMetrics};
use crate::partition::PartitionSchedule;
use rand::rngs::StdRng;
use rand::SeedableRng;
use shard_core::{Application, Execution, ExternalAction, TimedExecution, TxnRecord};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Configuration of a simulated cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of replica nodes.
    pub nodes: u16,
    /// RNG seed for delay sampling (runs are deterministic per seed).
    pub seed: u64,
    /// Message delay model.
    pub delay: DelayModel,
    /// Partition schedule.
    pub partitions: PartitionSchedule,
    /// Merge-log checkpoint interval (see [`MergeLog::new`]).
    pub checkpoint_every: usize,
    /// Piggyback the origin's full log on every message, guaranteeing
    /// transitive executions (§3.3).
    pub piggyback: bool,
    /// Node outage schedule: a crashed node rejects client transactions
    /// and receives no messages until it recovers.
    pub crashes: CrashSchedule,
    /// Optional structured-trace sink: the run logs update deliveries,
    /// merge appends / out-of-order undo-redo repairs, partition
    /// cuts/heals, crash/recovery windows and rejections as JSONL
    /// events. `None` (the default) costs nothing.
    pub sink: Option<Arc<shard_obs::EventSink>>,
}

impl Default for ClusterConfig {
    /// Five nodes, 20-tick mean exponential delays, no partitions.
    fn default() -> Self {
        ClusterConfig {
            nodes: 5,
            seed: 0,
            delay: DelayModel::Exponential { mean: 20 },
            partitions: PartitionSchedule::none(),
            checkpoint_every: 32,
            piggyback: false,
            crashes: CrashSchedule::none(),
            sink: None,
        }
    }
}

/// Emits the failure schedule (partition cut/heal windows, crash and
/// recovery times) to `sink` — the discrete-event drivers know the whole
/// schedule up front, so announcing it at run start keeps the trace
/// self-describing without hooking every `is_down` check.
pub(crate) fn emit_schedule(
    sink: &shard_obs::EventSink,
    partitions: &PartitionSchedule,
    crashes: &CrashSchedule,
) {
    for w in partitions.windows() {
        sink.event("partition.cut")
            .u64("t", w.start)
            .u64("groups", w.groups.len() as u64)
            .emit();
        sink.event("partition.heal").u64("t", w.end).emit();
    }
    for w in crashes.windows() {
        sink.event("crash")
            .u64("t", w.start)
            .u64("node", u64::from(w.node.0))
            .emit();
        sink.event("recover")
            .u64("t", w.end)
            .u64("node", u64::from(w.node.0))
            .emit();
    }
}

/// Merges `update` into `log`, emitting the merge outcome — append,
/// out-of-order (with its undo/redo depth), or duplicate — to `sink`.
/// The outcome is recovered by differencing [`MergeLog::metrics`]
/// around the call, so the merge engine itself stays trace-agnostic.
pub(crate) fn merge_traced<A: Application>(
    app: &A,
    sink: Option<&shard_obs::EventSink>,
    log: &mut MergeLog<A>,
    ts: Timestamp,
    update: Arc<A::Update>,
    now: SimTime,
    node: NodeId,
) -> bool {
    let Some(sink) = sink else {
        return log.merge(app, ts, update);
    };
    let before = log.metrics();
    let fresh = log.merge(app, ts, update);
    let after = log.metrics();
    if !fresh {
        sink.event("merge.duplicate")
            .u64("t", now)
            .u64("node", u64::from(node.0))
            .emit();
    } else if after.out_of_order > before.out_of_order {
        sink.event("merge.out_of_order")
            .u64("t", now)
            .u64("node", u64::from(node.0))
            .u64("replayed", after.replayed - before.replayed)
            .emit();
    } else {
        sink.event("merge.append")
            .u64("t", now)
            .u64("node", u64::from(node.0))
            .emit();
    }
    fresh
}

/// One client transaction submission: at `time`, at `node`.
#[derive(Clone, Debug)]
pub struct Invocation<D> {
    /// Simulated submission time.
    pub time: SimTime,
    /// The node the client is attached to (the transaction's origin).
    pub node: NodeId,
    /// The transaction.
    pub decision: D,
}

impl<D> Invocation<D> {
    /// Convenience constructor.
    pub fn new(time: SimTime, node: NodeId, decision: D) -> Self {
        Invocation {
            time,
            node,
            decision,
        }
    }
}

/// A transaction as the simulator executed it.
#[derive(Clone, Debug)]
pub struct ExecutedTxn<A: Application> {
    /// Its globally unique timestamp (position in the serial order).
    pub ts: Timestamp,
    /// Real (simulated) initiation time.
    pub time: SimTime,
    /// Origin node.
    pub node: NodeId,
    /// The submitted transaction.
    pub decision: A::Decision,
    /// The update its decision part chose.
    pub update: A::Update,
    /// External actions performed at the origin.
    pub external_actions: Vec<ExternalAction>,
    /// Timestamps of every update the origin knew at decision time.
    pub known: Vec<Timestamp>,
}

/// Everything a cluster run produces.
#[derive(Clone, Debug)]
pub struct ClusterReport<A: Application> {
    /// Executed transactions sorted by timestamp (the serial order).
    pub transactions: Vec<ExecutedTxn<A>>,
    /// Per-node undo/redo metrics.
    pub node_metrics: Vec<MergeMetrics>,
    /// All external actions in real-time order: `(time, node, action)`.
    pub external_actions: Vec<(SimTime, NodeId, ExternalAction)>,
    /// Each node's final merged state after every message drained.
    pub final_states: Vec<A::State>,
    /// For every *critical* transaction run through the §3.3 barrier
    /// protocol (see [`Cluster::run_with_critical`]): the delay between
    /// submission and execution — the availability price of (near-)
    /// complete prefixes. Empty for ordinary runs.
    pub barrier_latencies: Vec<SimTime>,
    /// Client transactions rejected because their node was crashed at
    /// submission time: `(time, node)`. These never entered the system.
    pub rejected: Vec<(SimTime, NodeId)>,
    /// Point-to-point update messages sent (flooding sends `nodes − 1`
    /// per transaction; compare [`crate::partial`] and [`crate::gossip`]).
    pub messages_sent: u64,
}

impl<A: Application> ClusterReport<A> {
    /// Whether all node copies agree (mutual consistency, §1.2). Holds
    /// whenever every broadcast drained, i.e. always at the end of a run.
    pub fn mutually_consistent(&self) -> bool {
        self.final_states.windows(2).all(|w| w[0] == w[1])
    }

    /// The formal timed execution: transactions in timestamp order, each
    /// seeing the prefix subsequence its origin knew.
    pub fn timed_execution(&self) -> TimedExecution<A> {
        let index_of: BTreeMap<Timestamp, usize> = self
            .transactions
            .iter()
            .enumerate()
            .map(|(i, t)| (t.ts, i))
            .collect();
        let mut exec = Execution::new();
        let mut times = Vec::with_capacity(self.transactions.len());
        for t in &self.transactions {
            let mut prefix: Vec<usize> = t
                .known
                .iter()
                .map(|ts| {
                    *index_of.get(ts).expect(
                        "simulator invariant: every timestamp a node knew at \
                         decision time belongs to an executed transaction",
                    )
                })
                .collect();
            prefix.sort_unstable();
            exec.push_record(TxnRecord {
                decision: t.decision.clone(),
                prefix,
                update: t.update.clone(),
                external_actions: t.external_actions.clone(),
            });
            times.push(t.time);
        }
        TimedExecution::new(exec, times)
    }

    /// Total undo/redo replay work across all nodes.
    pub fn total_replayed(&self) -> u64 {
        self.node_metrics.iter().map(|m| m.replayed).sum()
    }
}

enum Event<A: Application> {
    Invoke {
        node: NodeId,
        decision: A::Decision,
    },
    Deliver {
        to: NodeId,
        msg: UpdateMsg<A>,
    },
    /// Barrier protocol (§3.3): a critical transaction at `from` asks
    /// every peer to promise its current initiation count.
    Probe {
        to: NodeId,
        from: NodeId,
        id: usize,
    },
    /// A peer's reply: it has initiated `sent` transactions so far.
    Promise {
        to: NodeId,
        from: NodeId,
        id: usize,
        sent: u64,
    },
}

struct NodeState<A: Application> {
    clock: LamportClock,
    log: MergeLog<A>,
    /// Number of transactions this node has initiated (for promises).
    own_sent: u64,
}

/// A critical transaction waiting for its barrier to clear.
struct PendingCritical<A: Application> {
    node: NodeId,
    decision: A::Decision,
    submitted: SimTime,
    /// Promise per node id (own entry stays `None` and is ignored).
    promises: Vec<Option<u64>>,
    done: bool,
}

/// A simulated SHARD cluster.
///
/// # Examples
///
/// ```
/// use shard_apps::airline::{AirlineTxn, FlyByNight};
/// use shard_apps::Person;
/// use shard_sim::{Cluster, ClusterConfig, Invocation, NodeId};
///
/// let app = FlyByNight::new(3);
/// let cluster = Cluster::new(&app, ClusterConfig::default());
/// let report = cluster.run(vec![
///     Invocation::new(0, NodeId(0), AirlineTxn::Request(Person(1))),
///     Invocation::new(9, NodeId(4), AirlineTxn::MoveUp),
/// ]);
/// assert!(report.mutually_consistent());
/// report.timed_execution().execution.verify(&app).unwrap();
/// ```
pub struct Cluster<'a, A: Application> {
    app: &'a A,
    config: ClusterConfig,
}

impl<'a, A: Application> Cluster<'a, A> {
    /// Creates a cluster of `config.nodes` replicas of `app`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero nodes.
    pub fn new(app: &'a A, config: ClusterConfig) -> Self {
        assert!(config.nodes > 0, "a cluster needs at least one node");
        Cluster { app, config }
    }

    /// Runs the invocation schedule to completion (all broadcasts
    /// drained) and reports.
    ///
    /// # Panics
    ///
    /// Panics if an invocation names a node outside the cluster.
    pub fn run(&self, invocations: Vec<Invocation<A::Decision>>) -> ClusterReport<A> {
        self.run_with_critical(invocations, |_| false)
    }

    /// Like [`Cluster::run`], but transactions selected by `is_critical`
    /// run through the **barrier protocol** §3.3 sketches for
    /// centralization and complete prefixes: the origin probes every
    /// peer; each peer promises the count of transactions it has
    /// initiated so far; the critical decision executes only once the
    /// origin has received *every promised update*. The critical
    /// transaction therefore sees every transaction initiated anywhere
    /// before its probe was answered — audits get (near-)complete
    /// prefixes, at the price of waiting out partitions
    /// ([`ClusterReport::barrier_latencies`] measures exactly the
    /// availability loss §3.3 warns about).
    ///
    /// # Panics
    ///
    /// Panics if an invocation names a node outside the cluster.
    pub fn run_with_critical(
        &self,
        invocations: Vec<Invocation<A::Decision>>,
        is_critical: impl Fn(&A::Decision) -> bool,
    ) -> ClusterReport<A> {
        let app = self.app;
        let cfg = &self.config;
        let run_span = shard_obs::span!("sim.cluster.run");
        if let Some(sink) = cfg.sink.as_deref() {
            emit_schedule(sink, &cfg.partitions, &cfg.crashes);
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut nodes: Vec<NodeState<A>> = (0..cfg.nodes)
            .map(|i| NodeState {
                clock: LamportClock::new(NodeId(i)),
                log: MergeLog::new(app, cfg.checkpoint_every),
                own_sent: 0,
            })
            .collect();
        let mut queue: EventQueue<Event<A>> = EventQueue::new();
        for inv in invocations {
            assert!(
                (inv.node.0 as usize) < nodes.len(),
                "invocation at unknown node {}",
                inv.node
            );
            queue.schedule(
                inv.time,
                Event::Invoke {
                    node: inv.node,
                    decision: inv.decision,
                },
            );
        }

        let mut transactions: Vec<ExecutedTxn<A>> = Vec::new();
        let mut external_actions: Vec<(SimTime, NodeId, ExternalAction)> = Vec::new();
        let mut pending: Vec<PendingCritical<A>> = Vec::new();
        let mut barrier_latencies: Vec<SimTime> = Vec::new();
        let mut rejected: Vec<(SimTime, NodeId)> = Vec::new();
        let mut messages_sent = 0u64;

        while let Some((now, event)) = queue.pop() {
            match event {
                Event::Invoke { node, decision } => {
                    if cfg.crashes.is_down(now, node) {
                        rejected.push((now, node));
                        if let Some(sink) = cfg.sink.as_deref() {
                            sink.event("reject")
                                .u64("t", now)
                                .u64("node", u64::from(node.0))
                                .emit();
                        }
                        continue;
                    }
                    if is_critical(&decision) && cfg.nodes > 1 {
                        let id = pending.len();
                        pending.push(PendingCritical {
                            node,
                            decision,
                            submitted: now,
                            promises: vec![None; cfg.nodes as usize],
                            done: false,
                        });
                        for peer in 0..cfg.nodes {
                            let to = NodeId(peer);
                            if to == node {
                                continue;
                            }
                            let at =
                                delivery_time(&cfg.partitions, &cfg.delay, &mut rng, now, node, to);
                            queue.schedule(at, Event::Probe { to, from: node, id });
                        }
                    } else {
                        messages_sent += Self::execute_txn(
                            app,
                            cfg,
                            &mut rng,
                            &mut queue,
                            &mut nodes,
                            &mut transactions,
                            &mut external_actions,
                            now,
                            node,
                            decision,
                        );
                    }
                }
                Event::Deliver { to, msg } => {
                    if cfg.crashes.is_down(now, to) {
                        // The transport holds the message until recovery.
                        let up = cfg.crashes.next_up(now, to);
                        queue.schedule(up, Event::Deliver { to, msg });
                        continue;
                    }
                    let sink = cfg.sink.as_deref();
                    if let Some(s) = sink {
                        s.event("deliver")
                            .u64("t", now)
                            .u64("node", u64::from(to.0))
                            .u64("from", u64::from(msg.origin.0))
                            .emit();
                    }
                    let n = &mut nodes[to.0 as usize];
                    for (ts, update) in msg.piggyback.iter() {
                        n.clock.observe(*ts);
                        merge_traced(app, sink, &mut n.log, *ts, Arc::clone(update), now, to);
                    }
                    n.clock.observe(msg.ts);
                    merge_traced(app, sink, &mut n.log, msg.ts, msg.update, now, to);
                    messages_sent += Self::release_criticals(
                        app,
                        cfg,
                        &mut rng,
                        &mut queue,
                        &mut nodes,
                        &mut transactions,
                        &mut external_actions,
                        &mut pending,
                        &mut barrier_latencies,
                        now,
                        to,
                    );
                }
                Event::Probe { to, from, id } => {
                    if cfg.crashes.is_down(now, to) {
                        let up = cfg.crashes.next_up(now, to);
                        queue.schedule(up, Event::Probe { to, from, id });
                        continue;
                    }
                    let sent = nodes[to.0 as usize].own_sent;
                    let at = delivery_time(&cfg.partitions, &cfg.delay, &mut rng, now, to, from);
                    queue.schedule(
                        at,
                        Event::Promise {
                            to: from,
                            from: to,
                            id,
                            sent,
                        },
                    );
                }
                Event::Promise { to, from, id, sent } => {
                    if cfg.crashes.is_down(now, to) {
                        let up = cfg.crashes.next_up(now, to);
                        queue.schedule(up, Event::Promise { to, from, id, sent });
                        continue;
                    }
                    pending[id].promises[from.0 as usize] = Some(sent);
                    messages_sent += Self::release_criticals(
                        app,
                        cfg,
                        &mut rng,
                        &mut queue,
                        &mut nodes,
                        &mut transactions,
                        &mut external_actions,
                        &mut pending,
                        &mut barrier_latencies,
                        now,
                        to,
                    );
                }
            }
        }

        debug_assert!(
            pending.iter().all(|p| p.done),
            "all barriers clear eventually"
        );
        if let Some(sink) = cfg.sink.as_deref() {
            // A trailing span line lets `shard-trace summarize` report
            // the run's wall time without access to the registry.
            sink.event("span")
                .str("name", "sim.cluster.run")
                .u64("ns", run_span.elapsed_ns())
                .emit();
            sink.flush();
        }
        transactions.sort_by_key(|t| t.ts);
        ClusterReport {
            node_metrics: nodes.iter().map(|n| n.log.metrics()).collect(),
            final_states: nodes.into_iter().map(|n| n.log.into_state()).collect(),
            transactions,
            external_actions,
            barrier_latencies,
            rejected,
            messages_sent,
        }
    }

    /// Executes one transaction at `node` now: ticks the clock, runs the
    /// decision on the local merged state, performs external actions,
    /// merges the own update and broadcasts it.
    #[allow(clippy::too_many_arguments)]
    fn execute_txn(
        app: &A,
        cfg: &ClusterConfig,
        rng: &mut StdRng,
        queue: &mut EventQueue<Event<A>>,
        nodes: &mut [NodeState<A>],
        transactions: &mut Vec<ExecutedTxn<A>>,
        external_actions: &mut Vec<(SimTime, NodeId, ExternalAction)>,
        now: SimTime,
        node: NodeId,
        decision: A::Decision,
    ) -> u64 {
        if let Some(sink) = cfg.sink.as_deref() {
            sink.event("execute")
                .u64("t", now)
                .u64("node", u64::from(node.0))
                .emit();
        }
        let n = &mut nodes[node.0 as usize];
        let ts = n.clock.tick();
        n.own_sent += 1;
        let known = n.log.known_timestamps();
        let outcome = app.decide(&decision, n.log.state());
        for a in &outcome.external_actions {
            external_actions.push((now, node, a.clone()));
        }
        // One allocation shared by the local log and every peer message;
        // fanning out costs reference counts, not update clones.
        let update = Arc::new(outcome.update);
        let fresh = n.log.merge(app, ts, Arc::clone(&update));
        debug_assert!(fresh, "own timestamp must be new");
        let piggyback: Arc<[(Timestamp, Arc<A::Update>)]> = if cfg.piggyback {
            n.log
                .entries()
                .iter()
                .filter(|(t, _)| *t != ts)
                .cloned()
                .collect()
        } else {
            Arc::from(Vec::new())
        };
        transactions.push(ExecutedTxn {
            ts,
            time: now,
            node,
            decision,
            update: (*update).clone(),
            external_actions: outcome.external_actions,
            known,
        });
        let mut sent = 0;
        for peer in 0..cfg.nodes {
            let to = NodeId(peer);
            if to == node {
                continue;
            }
            let at = delivery_time(&cfg.partitions, &cfg.delay, rng, now, node, to);
            sent += 1;
            queue.schedule(
                at,
                Event::Deliver {
                    to,
                    msg: UpdateMsg {
                        ts,
                        update: Arc::clone(&update),
                        piggyback: Arc::clone(&piggyback),
                        origin: node,
                    },
                },
            );
        }
        sent
    }

    /// Executes every pending critical transaction at `node` whose
    /// barrier has cleared: all peers promised and every promised update
    /// has been received.
    #[allow(clippy::too_many_arguments)]
    fn release_criticals(
        app: &A,
        cfg: &ClusterConfig,
        rng: &mut StdRng,
        queue: &mut EventQueue<Event<A>>,
        nodes: &mut [NodeState<A>],
        transactions: &mut Vec<ExecutedTxn<A>>,
        external_actions: &mut Vec<(SimTime, NodeId, ExternalAction)>,
        pending: &mut [PendingCritical<A>],
        barrier_latencies: &mut Vec<SimTime>,
        now: SimTime,
        node: NodeId,
    ) -> u64 {
        let mut sent = 0;
        #[allow(clippy::needless_range_loop)]
        for id in 0..pending.len() {
            if pending[id].done || pending[id].node != node {
                continue;
            }
            let cleared = (0..cfg.nodes).all(|peer| {
                if NodeId(peer) == node {
                    return true;
                }
                match pending[id].promises[peer as usize] {
                    None => false,
                    Some(promised) => {
                        let received = nodes[node.0 as usize]
                            .log
                            .entries()
                            .iter()
                            .filter(|(ts, _)| ts.node == NodeId(peer))
                            .count() as u64;
                        received >= promised
                    }
                }
            });
            if cleared {
                pending[id].done = true;
                barrier_latencies.push(now - pending[id].submitted);
                let decision = pending[id].decision.clone();
                sent += Self::execute_txn(
                    app,
                    cfg,
                    rng,
                    queue,
                    nodes,
                    transactions,
                    external_actions,
                    now,
                    node,
                    decision,
                );
            }
        }
        sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionWindow;
    use shard_core::{conditions, DecisionOutcome};

    /// Grow-only counter with a cap-aware decision, to make missing
    /// information observable.
    struct Counter;

    #[derive(Clone, Debug, PartialEq)]
    enum CUpd {
        Inc,
        Noop,
    }

    impl Application for Counter {
        type State = i64;
        type Update = CUpd;
        type Decision = ();
        fn initial_state(&self) -> i64 {
            0
        }
        fn is_well_formed(&self, _: &i64) -> bool {
            true
        }
        fn apply(&self, s: &i64, u: &CUpd) -> i64 {
            match u {
                CUpd::Inc => s + 1,
                CUpd::Noop => *s,
            }
        }
        fn decide(&self, _: &(), observed: &i64) -> DecisionOutcome<CUpd> {
            if *observed < 3 {
                DecisionOutcome::update_only(CUpd::Inc)
            } else {
                DecisionOutcome::update_only(CUpd::Noop)
            }
        }
        fn constraint_count(&self) -> usize {
            0
        }
        fn constraint_name(&self, _: usize) -> &str {
            unreachable!()
        }
        fn cost(&self, _: &i64, _: usize) -> u64 {
            0
        }
    }

    fn spread_invocations(n: usize, nodes: u16, gap: SimTime) -> Vec<Invocation<()>> {
        (0..n)
            .map(|i| Invocation::new(i as SimTime * gap, NodeId((i % nodes as usize) as u16), ()))
            .collect()
    }

    #[test]
    fn single_node_behaves_serially() {
        let app = Counter;
        let cluster = Cluster::new(
            &app,
            ClusterConfig {
                nodes: 1,
                ..Default::default()
            },
        );
        let report = cluster.run(spread_invocations(10, 1, 5));
        assert_eq!(report.final_states[0], 3, "cap respected with full info");
        let te = report.timed_execution();
        te.execution.verify(&app).unwrap();
        assert_eq!(conditions::max_missed(&te.execution), 0);
        assert!(te.is_orderly());
    }

    #[test]
    fn replicas_converge_and_execution_verifies() {
        let app = Counter;
        let cluster = Cluster::new(
            &app,
            ClusterConfig {
                nodes: 4,
                seed: 7,
                ..Default::default()
            },
        );
        let report = cluster.run(spread_invocations(40, 4, 3));
        assert!(report.mutually_consistent());
        let te = report.timed_execution();
        te.execution.verify(&app).unwrap();
        assert_eq!(te.execution.len(), 40);
        // The merged result equals the formal execution's final state.
        assert_eq!(report.final_states[0], te.execution.final_state(&app));
    }

    #[test]
    fn concurrent_invocations_overshoot_the_cap() {
        // All 10 transactions fire at t=0 on different nodes: nobody has
        // seen anybody, so all increment — exactly the availability
        // penalty the paper studies.
        let app = Counter;
        let cluster = Cluster::new(
            &app,
            ClusterConfig {
                nodes: 5,
                seed: 1,
                ..Default::default()
            },
        );
        let invs: Vec<_> = (0..10)
            .map(|i| Invocation::new(0, NodeId(i % 5), ()))
            .collect();
        let report = cluster.run(invs);
        assert!(report.final_states[0] > 3);
        let te = report.timed_execution();
        te.execution.verify(&app).unwrap();
        assert!(conditions::max_missed(&te.execution) > 0);
    }

    #[test]
    fn partition_delays_information_but_heals() {
        let app = Counter;
        let partitions =
            PartitionSchedule::new(vec![PartitionWindow::isolate(0, 1000, vec![NodeId(0)])]);
        let cluster = Cluster::new(
            &app,
            ClusterConfig {
                nodes: 3,
                seed: 3,
                delay: DelayModel::Fixed(5),
                partitions,
                ..Default::default()
            },
        );
        // Node 0 is isolated; its transactions see only themselves.
        let report = cluster.run(spread_invocations(12, 3, 10));
        assert!(report.mutually_consistent(), "heals after the window");
        let te = report.timed_execution();
        te.execution.verify(&app).unwrap();
        assert!(conditions::max_missed(&te.execution) > 0);
    }

    #[test]
    fn piggybacking_yields_transitive_executions() {
        let app = Counter;
        for piggyback in [false, true] {
            let cluster = Cluster::new(
                &app,
                ClusterConfig {
                    nodes: 4,
                    seed: 11,
                    delay: DelayModel::Exponential { mean: 40 },
                    piggyback,
                    ..Default::default()
                },
            );
            let report = cluster.run(spread_invocations(60, 4, 2));
            let te = report.timed_execution();
            te.execution.verify(&app).unwrap();
            if piggyback {
                assert!(conditions::is_transitive(&te.execution));
            }
        }
    }

    #[test]
    fn same_node_transactions_are_centralized() {
        // Transactions initiated at one node always see each other —
        // the implementation of centralization suggested in §3.3.
        let app = Counter;
        let cluster = Cluster::new(
            &app,
            ClusterConfig {
                nodes: 3,
                seed: 5,
                ..Default::default()
            },
        );
        let mut invs = spread_invocations(30, 3, 4);
        // Mark: transactions at node 0.
        let report = cluster.run(std::mem::take(&mut invs));
        let te = report.timed_execution();
        let node0_group: Vec<usize> = report
            .transactions
            .iter()
            .enumerate()
            .filter(|(_, t)| t.node == NodeId(0))
            .map(|(i, _)| i)
            .collect();
        assert!(conditions::is_centralized(&te.execution, &node0_group));
    }

    #[test]
    fn out_of_order_arrivals_cause_replays() {
        let app = Counter;
        let cluster = Cluster::new(
            &app,
            ClusterConfig {
                nodes: 4,
                seed: 2,
                delay: DelayModel::Uniform { lo: 1, hi: 200 },
                ..Default::default()
            },
        );
        let report = cluster.run(spread_invocations(100, 4, 1));
        assert!(
            report.total_replayed() > 0,
            "high-variance delays reorder messages"
        );
        assert!(report.mutually_consistent());
    }

    #[test]
    fn sink_captures_structured_events_matching_the_report() {
        let app = Counter;
        let sink = shard_obs::EventSink::in_memory();
        let partitions =
            PartitionSchedule::new(vec![PartitionWindow::isolate(0, 300, vec![NodeId(0)])]);
        let cluster = Cluster::new(
            &app,
            ClusterConfig {
                nodes: 3,
                seed: 2,
                delay: DelayModel::Uniform { lo: 1, hi: 200 },
                partitions,
                sink: Some(Arc::clone(&sink)),
                ..Default::default()
            },
        );
        let report = cluster.run(spread_invocations(30, 3, 2));
        let summary = shard_obs::summarize(&sink.drain_to_string());
        assert_eq!(summary.malformed, 0, "every line is valid JSON");
        assert_eq!(summary.event_counts["execute"], 30);
        assert_eq!(summary.event_counts["deliver"], report.messages_sent);
        assert_eq!(summary.event_counts["partition.cut"], 1);
        assert_eq!(summary.event_counts["partition.heal"], 1);
        // The per-node undo/redo distribution reconstructed from the
        // trace equals the report's merge metrics exactly.
        let ooo: u64 = report.node_metrics.iter().map(|m| m.out_of_order).sum();
        assert_eq!(
            summary
                .event_counts
                .get("merge.out_of_order")
                .copied()
                .unwrap_or(0),
            ooo
        );
        let traced_replayed: u64 = summary.node_replay.values().map(|r| r.replayed).sum();
        assert_eq!(traced_replayed, report.total_replayed());
        assert!(
            summary.spans.contains_key("sim.cluster.run"),
            "run emits its wall-time span line"
        );
    }

    #[test]
    fn determinism_per_seed() {
        let app = Counter;
        let run = |seed| {
            let cluster = Cluster::new(
                &app,
                ClusterConfig {
                    nodes: 3,
                    seed,
                    ..Default::default()
                },
            );
            cluster.run(spread_invocations(25, 3, 2)).final_states
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = Cluster::new(
            &Counter,
            ClusterConfig {
                nodes: 0,
                ..Default::default()
            },
        );
    }
}
