//! The undo/redo merge engine (§1.2, §3.3).
//!
//! "Since messages about different transactions could arrive at a single
//! node out of timestamp order, keeping the copy correct entails frequent
//! undoing and redoing of transactions. The SHARD system uses an
//! undo-redo strategy in lieu of any other inter-node concurrency control
//! mechanism."
//!
//! A [`MergeLog`] keeps the updates a node knows, sorted by timestamp,
//! together with the state that results from applying them in order to
//! the initial state. In-order arrivals are a cheap append. An
//! out-of-order arrival rolls the state back to the nearest earlier
//! **checkpoint** and replays — the optimization of \[BK\]/\[SKS\] ("using
//! history information to process delayed database updates"). The
//! checkpoint sequence is the same [`Checkpoints`] structure the core
//! replay engine uses ([`shard_core::replay`]); its interval is the
//! ablation knob of experiment E11. Updates are held behind [`Arc`] so a
//! broadcast fans an update out to peers by reference count, not by deep
//! clone. [`MergeMetrics`] counts appends, insertions and replayed
//! updates so the undo/redo volume is measurable.

use crate::clock::Timestamp;
use crate::known::KnownSet;
use shard_core::{Application, Checkpoints, SpillingCheckpoints};
use std::sync::Arc;

/// Where a [`MergeLog`]'s checkpoint states live: all in RAM (the
/// default), or two-tiered with cold anchors spilled through a
/// [`Store`](shard_store::Store) ([`MergeLog::enable_spilling`]).
///
/// Both variants answer the same three questions — record a point,
/// drop points past an undo, find the deepest point under a limit —
/// and checkpoints are a pure cache, so the merge verdicts are
/// identical whichever tier holds them; only replay depth (and thus
/// work) differs when a spilled anchor is missing or unreadable.
enum CkptTier<A: Application> {
    Mem(Checkpoints<A::State>),
    Spill(SpillingCheckpoints<A::State>),
}

impl<A: Application> CkptTier<A> {
    fn interval(&self) -> usize {
        match self {
            CkptTier::Mem(c) => c.interval(),
            CkptTier::Spill(c) => c.interval(),
        }
    }

    fn record(&mut self, app: &A, len: usize, state: &A::State) -> bool {
        match self {
            CkptTier::Mem(c) => {
                let recorded = c.record(len, state);
                if recorded {
                    shard_core::replay::note_state_clone(app.state_size_hint(state));
                }
                recorded
            }
            CkptTier::Spill(c) => c.record(len, state, app.state_size_hint(state)),
        }
    }

    fn truncate(&mut self, keep: usize) {
        match self {
            CkptTier::Mem(c) => c.truncate(keep),
            CkptTier::Spill(c) => c.truncate(keep),
        }
    }

    fn last_owned(&mut self, app: &A) -> Option<(usize, A::State)> {
        match self {
            CkptTier::Mem(c) => c.last().map(|(len, s)| {
                shard_core::replay::note_state_clone(app.state_size_hint(s));
                (len, s.clone())
            }),
            CkptTier::Spill(c) => c.last_owned(),
        }
    }
}

impl<A: Application> Clone for CkptTier<A> {
    /// Cloning a spilling tier yields a fresh in-memory tier at the
    /// same interval — the spill store is single-owner, and checkpoints
    /// are a rebuildable cache, so the clone starts cold but answers
    /// identically (the same convention as `Execution::clone` resetting
    /// its replay cache).
    fn clone(&self) -> Self {
        match self {
            CkptTier::Mem(c) => CkptTier::Mem(c.clone()),
            CkptTier::Spill(c) => CkptTier::Mem(Checkpoints::new(c.interval())),
        }
    }
}

impl<A: Application> std::fmt::Debug for CkptTier<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptTier::Mem(c) => f.debug_tuple("Mem").field(c).finish(),
            CkptTier::Spill(c) => f.debug_tuple("Spill").field(c).finish(),
        }
    }
}

/// Global merge metrics across every node of every simulation in the
/// process, resolved once: `merge.appends` / `merge.out_of_order` /
/// `merge.duplicates` mirror [`MergeMetrics`], and the histogram
/// `merge.replay_depth` records the undo/redo depth of each
/// out-of-order merge — the quantity the paper's checkpoint discussion
/// (§1.2, \[BK\]/\[SKS\]) is about bounding. `replay.ckpt_hits` /
/// `replay.ckpt_misses` are *shared* with the core replay engine
/// ([`shard_core::replay`]) on purpose: both paths resolve the identical
/// question against the same [`Checkpoints`] structure — can this replay
/// resume from a snapshot, or must it restart from the initial state?
struct MergeObs {
    appends: Arc<shard_obs::Counter>,
    out_of_order: Arc<shard_obs::Counter>,
    duplicates: Arc<shard_obs::Counter>,
    replay_depth: Arc<shard_obs::Histogram>,
    ckpt_hits: Arc<shard_obs::Counter>,
    ckpt_misses: Arc<shard_obs::Counter>,
}

fn merge_obs() -> &'static MergeObs {
    static OBS: std::sync::OnceLock<MergeObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| {
        let r = shard_obs::Registry::global();
        MergeObs {
            appends: r.counter("merge.appends"),
            out_of_order: r.counter("merge.out_of_order"),
            duplicates: r.counter("merge.duplicates"),
            replay_depth: r.histogram("merge.replay_depth"),
            ckpt_hits: r.counter("replay.ckpt_hits"),
            ckpt_misses: r.counter("replay.ckpt_misses"),
        }
    })
}

/// How a single merge landed in a [`MergeLog`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeOutcome {
    /// The timestamp was already known; nothing changed.
    Duplicate,
    /// The update extended the log in timestamp order (cheap path).
    Appended,
    /// The update landed in the middle of the log; `replayed` updates
    /// were re-applied to repair history.
    OutOfOrder {
        /// Updates re-applied during the undo/redo.
        replayed: u64,
    },
}

impl MergeOutcome {
    /// Whether the update was new to the log.
    pub fn is_new(&self) -> bool {
        !matches!(self, MergeOutcome::Duplicate)
    }
}

/// Counters describing how much undo/redo work a node performed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeMetrics {
    /// Updates that arrived in timestamp order (cheap path).
    pub appends: u64,
    /// Updates that arrived out of order (forced an undo/redo).
    pub out_of_order: u64,
    /// Total updates re-applied during undo/redo replays.
    pub replayed: u64,
    /// Duplicate deliveries ignored.
    pub duplicates: u64,
}

impl MergeMetrics {
    /// Total updates merged (appends + out-of-order insertions).
    pub fn merged(&self) -> u64 {
        self.appends + self.out_of_order
    }
}

/// A node's copy of the database: the timestamp-ordered update log and
/// the state reflecting all of it, maintained by undo/redo with
/// checkpointing.
///
/// # Examples
///
/// Out-of-order arrivals are merged by timestamp, never by arrival:
///
/// ```
/// use shard_apps::airline::{AirlineUpdate, FlyByNight};
/// use shard_apps::Person;
/// use shard_sim::{MergeLog, NodeId, Timestamp};
///
/// let app = FlyByNight::new(5);
/// let mut log = MergeLog::new(&app, 32);
/// let ts = |l| Timestamp { lamport: l, node: NodeId(0) };
/// // The move-up arrives before the request it depends on…
/// log.merge(&app, ts(2), AirlineUpdate::MoveUp(Person(1)));
/// assert!(!log.state().is_assigned(Person(1)));
/// // …and the late request triggers an undo/redo that repairs history.
/// log.merge(&app, ts(1), AirlineUpdate::Request(Person(1)));
/// assert!(log.state().is_assigned(Person(1)));
/// assert_eq!(log.metrics().out_of_order, 1);
/// ```
#[derive(Debug)]
pub struct MergeLog<A: Application> {
    entries: Vec<(Timestamp, Arc<A::Update>)>,
    state: A::State,
    checkpoints: CkptTier<A>,
    metrics: MergeMetrics,
    /// The entry timestamps as a persistent set, maintained merge by
    /// merge so [`MergeLog::known_set`] snapshots it in O(1).
    known: KnownSet,
    /// Every entry's timestamp in **merge order** (append-only) —
    /// cursors into this vector are how delta propagation
    /// ([`crate::GossipDelta`]) finds "everything merged since my last
    /// round" without scanning the log.
    arrivals: Vec<Timestamp>,
}

impl<A: Application> Clone for MergeLog<A> {
    /// Clones the log and state; a spilling checkpoint tier is reset to
    /// a cold in-memory tier (see `CkptTier::clone`).
    fn clone(&self) -> Self {
        MergeLog {
            entries: self.entries.clone(),
            state: self.state.clone(),
            checkpoints: self.checkpoints.clone(),
            metrics: self.metrics,
            known: self.known.clone(),
            arrivals: self.arrivals.clone(),
        }
    }
}

impl<A: Application> MergeLog<A> {
    /// A fresh log whose state is the application's initial state.
    /// `checkpoint_every` controls snapshot density: 1 snapshots after
    /// every update (fast replays, heavy memory), large values approach
    /// replay-from-scratch.
    ///
    /// # Panics
    ///
    /// Panics if `checkpoint_every` is zero.
    pub fn new(app: &A, checkpoint_every: usize) -> Self {
        MergeLog {
            entries: Vec::new(),
            state: app.initial_state(),
            checkpoints: CkptTier::Mem(Checkpoints::new(checkpoint_every)),
            metrics: MergeMetrics::default(),
            known: KnownSet::new(),
            arrivals: Vec::new(),
        }
    }

    /// Moves the checkpoint tier out of core: the newest `hot_points`
    /// checkpoints stay resident and every `spill_spacing`-th older
    /// point is serialized through `store` as a cold anchor (see
    /// [`SpillingCheckpoints`]). Existing in-memory checkpoints are
    /// dropped (they are a cache); the current state is re-recorded as
    /// the first point of the new tier where the interval allows, so a
    /// straggler arriving right after the switch replays from the tip,
    /// not from scratch. Merge results are bit-identical either way —
    /// only resident bytes and replay depth change.
    pub fn enable_spilling(
        &mut self,
        app: &A,
        store: Box<dyn shard_store::Store + Send>,
        hot_points: usize,
        spill_spacing: usize,
    ) where
        A::State: shard_store::Codec,
    {
        let mut spill = SpillingCheckpoints::new(
            store,
            self.checkpoints.interval(),
            hot_points,
            spill_spacing,
        );
        if !self.entries.is_empty() {
            spill.record(
                self.entries.len(),
                &self.state,
                app.state_size_hint(&self.state),
            );
        }
        self.checkpoints = CkptTier::Spill(spill);
    }

    /// The spill store behind the checkpoint tier, if
    /// [`enable_spilling`](MergeLog::enable_spilling) was called —
    /// exposed so fault harnesses can crash the anchor store under a
    /// live log and check merges still converge.
    pub fn spill_store_mut(&mut self) -> Option<&mut (dyn shard_store::Store + Send)> {
        match &mut self.checkpoints {
            CkptTier::Mem(_) => None,
            CkptTier::Spill(c) => Some(c.store_mut()),
        }
    }

    /// The current merged state — "each node's copy of the database
    /// always reflects the effects of all the transactions known to that
    /// node, as if they were run according to the global timestamp
    /// order".
    pub fn state(&self) -> &A::State {
        &self.state
    }

    /// Consumes the log, yielding its merged state without a clone.
    pub fn into_state(self) -> A::State {
        self.state
    }

    /// The known updates in timestamp order. Updates are `Arc`-shared:
    /// forwarding one to a peer costs a reference-count bump.
    pub fn entries(&self) -> &[(Timestamp, Arc<A::Update>)] {
        &self.entries
    }

    /// The timestamps of all known updates, in order. Materializes a
    /// fresh vector — offline consumers only; the hot path snapshots
    /// [`MergeLog::known_set`] instead.
    pub fn known_timestamps(&self) -> Vec<Timestamp> {
        self.entries.iter().map(|(ts, _)| *ts).collect()
    }

    /// The known timestamps as a persistent set: cloning the returned
    /// reference is O(1) and shares structure with the log's future —
    /// this is the per-execute snapshot §3's conditions are checked
    /// against.
    pub fn known_set(&self) -> &KnownSet {
        &self.known
    }

    /// Every entry's timestamp in merge (arrival) order. Append-only:
    /// a consumer that remembers an index `i` can later read
    /// `arrivals()[i..]` to learn exactly what merged in between —
    /// the basis of delta propagation.
    pub fn arrivals(&self) -> &[Timestamp] {
        &self.arrivals
    }

    /// Number of known updates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The checkpoint spacing, in applied updates.
    pub fn checkpoint_interval(&self) -> usize {
        self.checkpoints.interval()
    }

    /// Undo/redo counters.
    pub fn metrics(&self) -> MergeMetrics {
        self.metrics
    }

    /// Whether an update with timestamp `ts` is already known.
    pub fn contains(&self, ts: Timestamp) -> bool {
        self.entries.binary_search_by_key(&ts, |(t, _)| *t).is_ok()
    }

    /// Merges an update into the log, maintaining the invariant that
    /// [`MergeLog::state`] equals the timestamp-ordered replay of all
    /// known updates. Duplicate timestamps are ignored (redeliveries).
    /// Accepts either an owned update or an already-shared
    /// `Arc<A::Update>` (re-merging a forwarded entry costs no clone).
    /// Returns `true` if the update was new.
    pub fn merge(&mut self, app: &A, ts: Timestamp, update: impl Into<Arc<A::Update>>) -> bool {
        self.merge_with_outcome(app, ts, update).is_new()
    }

    /// [`MergeLog::merge`], reporting *how* the update landed. The
    /// kernel's tracer keys its merge events off the outcome.
    pub fn merge_with_outcome(
        &mut self,
        app: &A,
        ts: Timestamp,
        update: impl Into<Arc<A::Update>>,
    ) -> MergeOutcome {
        match self.entries.binary_search_by_key(&ts, |(t, _)| *t) {
            Ok(_) => self.note_duplicate(),
            Err(pos) if pos == self.entries.len() => self.append(app, ts, update.into()),
            Err(pos) => self.insert_and_replay(app, ts, update.into(), pos),
        }
    }

    /// Merges a burst of deliveries in arrival order, invoking `on_each`
    /// with every entry's outcome, in arrival order.
    ///
    /// The hot case is a long **ascending** run — gossip rounds ship
    /// whole sorted logs, most of which the receiver already knows and
    /// the rest of which interleaves its own entries. Merging such a
    /// run entry by entry is quadratic twice over: every duplicate pays
    /// a binary search, and every mid-log insert pays its own undo/redo
    /// replay of the log tail. The batch path instead classifies each
    /// ascending run with a single cursor walk (one timestamp
    /// comparison per duplicate), splices all of the run's new entries
    /// into the log at once, and repairs history with **one** undo/redo
    /// pass from the earliest insertion point — O(batch + tail), not
    /// O(batch · tail).
    ///
    /// When a run carries at most one mid-log insert, the batch path is
    /// *observably identical* to the equivalent sequence of
    /// [`MergeLog::merge`] calls, update for update. With several
    /// stragglers in one run the difference is confined to the work
    /// tallies: `MergeMetrics::replayed` (and the
    /// `OutOfOrder { replayed }` outcomes, which attribute the run's
    /// single repair to its first out-of-order entry) count the updates
    /// actually re-applied — fewer than sequential merging would have.
    /// Final state, log contents, outcome *kinds* per entry, and
    /// checkpoint placement are always identical — and live runs and
    /// their kernel replays share this code path, so record–replay
    /// reports agree exactly.
    pub fn merge_batch(
        &mut self,
        app: &A,
        batch: impl IntoIterator<Item = (Timestamp, Arc<A::Update>)>,
        mut on_each: impl FnMut(Timestamp, MergeOutcome),
    ) {
        // The current ascending run: `None` updates mark duplicates.
        let mut run: Vec<(Timestamp, Option<Arc<A::Update>>)> = Vec::new();
        // Cursor into `entries` tracking the run's classification walk —
        // valid because the log is only mutated when a run flushes.
        let mut cursor = 0usize;
        for (ts, update) in batch {
            if run.last().is_some_and(|(prev, _)| ts <= *prev) {
                self.flush_run(app, &mut run, &mut on_each);
                cursor = 0;
            }
            if run.is_empty() {
                cursor = self.entries.partition_point(|(t, _)| *t < ts);
            } else {
                while self.entries.get(cursor).is_some_and(|(t, _)| *t < ts) {
                    cursor += 1;
                }
            }
            let duplicate = self.entries.get(cursor).is_some_and(|(t, _)| *t == ts);
            run.push((ts, (!duplicate).then_some(update)));
        }
        self.flush_run(app, &mut run, &mut on_each);
    }

    /// Applies one classified ascending run: splice + single repair.
    /// See [`MergeLog::merge_batch`].
    fn flush_run(
        &mut self,
        app: &A,
        run: &mut Vec<(Timestamp, Option<Arc<A::Update>>)>,
        on_each: &mut impl FnMut(Timestamp, MergeOutcome),
    ) {
        if run.is_empty() {
            return;
        }
        let old_last = self.entries.last().map(|(t, _)| *t);
        let first_new = run.iter().find_map(|(ts, u)| u.is_some().then_some(*ts));

        // Entirely duplicates, or new entries that all extend the log in
        // order: the sequential paths are already cheap and keep their
        // exact per-entry behavior (checkpoint cadence included).
        if first_new.is_none_or(|f| old_last.is_none_or(|l| f > l)) {
            let mut duplicates = 0u64;
            for (ts, update) in run.drain(..) {
                let outcome = match update {
                    None => {
                        self.metrics.duplicates += 1;
                        duplicates += 1;
                        MergeOutcome::Duplicate
                    }
                    Some(u) => self.append(app, ts, u),
                };
                on_each(ts, outcome);
            }
            if duplicates > 0 && shard_obs::enabled() {
                merge_obs().duplicates.add(duplicates);
            }
            return;
        }
        let first_new = first_new.expect("checked above");
        let old_last = old_last.expect("an entry can only sort mid-log if one exists");

        // Classify before the splice consumes the updates. Entries past
        // the old log end would have been plain appends even merged one
        // at a time, and run through the ordinary append path below;
        // mid-log entries are the out-of-order group repaired in one
        // undo/redo pass.
        #[derive(Clone, Copy, PartialEq)]
        enum Kind {
            Dup,
            App,
            Oo,
        }
        let kinds: Vec<Kind> = run
            .iter()
            .map(|(ts, u)| match u {
                None => Kind::Dup,
                Some(_) if *ts > old_last => Kind::App,
                Some(_) => Kind::Oo,
            })
            .collect();
        let count = |k: Kind| kinds.iter().filter(|x| **x == k).count() as u64;
        let (duplicates, inserted) = (count(Kind::Dup), count(Kind::Oo));

        // Splice: linear-merge the log tail from the first insertion
        // point with the run's mid-log entries (both ascending).
        let p0 = self.entries.partition_point(|(t, _)| *t < first_new);
        let tail = self.entries.split_off(p0);
        let mut mids = run
            .iter_mut()
            .filter(|(ts, _)| *ts < old_last)
            .filter_map(|(ts, u)| u.take().map(|u| (*ts, u)))
            .peekable();
        for old in tail {
            while mids.peek().is_some_and(|(ts, _)| *ts < old.0) {
                let (ts, u) = mids.next().expect("peeked");
                self.known.insert(ts);
                self.arrivals.push(ts);
                self.entries.push((ts, u));
            }
            self.entries.push(old);
        }
        debug_assert!(
            mids.next().is_none(),
            "every mid entry sorts before old_last"
        );

        // One undo/redo repair for the whole group, recreating the
        // checkpoints the splice invalidated (same cadence as
        // `insert_and_replay` — for a single straggler the two paths
        // are identical, update for update).
        self.checkpoints.truncate(p0);
        let (base_len, mut s) = match self.checkpoints.last_owned(app) {
            Some((len, s)) => (len, s),
            None => (0, app.initial_state()),
        };
        let mut replayed = 0u64;
        for i in base_len..self.entries.len() {
            app.apply_in_place(&mut s, &self.entries[i].1);
            replayed += 1;
            if i + 1 < self.entries.len() {
                self.checkpoints.record(app, i + 1, &s);
            }
        }
        self.state = s;
        self.metrics.duplicates += duplicates;
        self.metrics.out_of_order += inserted;
        self.metrics.replayed += replayed;

        if shard_obs::enabled() {
            let obs = merge_obs();
            if duplicates > 0 {
                obs.duplicates.add(duplicates);
            }
            if inserted > 0 {
                obs.out_of_order.add(inserted);
            }
            obs.replay_depth
                .record((self.entries.len() - base_len) as u64);
            if base_len > 0 {
                obs.ckpt_hits.inc();
            } else {
                obs.ckpt_misses.inc();
            }
        }

        // The run's entries past the old log end extend it in timestamp
        // order — the ordinary append path, exactly as if merged one at
        // a time (checkpoint records included).
        for (ts, u) in run
            .iter_mut()
            .filter_map(|(ts, u)| u.take().map(|u| (*ts, u)))
        {
            let outcome = self.append(app, ts, u);
            debug_assert_eq!(outcome, MergeOutcome::Appended);
        }

        // Outcomes in arrival order; the single repair's cost is
        // attributed to the run's first out-of-order entry.
        let mut first_oo = true;
        for ((ts, _), kind) in run.drain(..).zip(kinds) {
            let outcome = match kind {
                Kind::Dup => MergeOutcome::Duplicate,
                Kind::App => MergeOutcome::Appended,
                Kind::Oo => MergeOutcome::OutOfOrder {
                    replayed: if std::mem::take(&mut first_oo) {
                        replayed
                    } else {
                        0
                    },
                },
            };
            on_each(ts, outcome);
        }
    }

    fn note_duplicate(&mut self) -> MergeOutcome {
        self.metrics.duplicates += 1;
        if shard_obs::enabled() {
            merge_obs().duplicates.inc();
        }
        MergeOutcome::Duplicate
    }

    /// In timestamp order: apply incrementally, no clone unless a
    /// checkpoint is recorded.
    fn append(&mut self, app: &A, ts: Timestamp, update: Arc<A::Update>) -> MergeOutcome {
        app.apply_in_place(&mut self.state, &update);
        self.entries.push((ts, update));
        self.known.insert(ts);
        self.arrivals.push(ts);
        self.metrics.appends += 1;
        if shard_obs::enabled() {
            merge_obs().appends.inc();
        }
        self.checkpoints
            .record(app, self.entries.len(), &self.state);
        MergeOutcome::Appended
    }

    /// Out of order: undo back to a checkpoint ≤ pos, redo.
    fn insert_and_replay(
        &mut self,
        app: &A,
        ts: Timestamp,
        update: Arc<A::Update>,
        pos: usize,
    ) -> MergeOutcome {
        self.metrics.out_of_order += 1;
        self.entries.insert(pos, (ts, update));
        self.known.insert(ts);
        self.arrivals.push(ts);
        // Checkpoints past the insertion point are invalidated.
        self.checkpoints.truncate(pos);
        let (base_len, mut s) = match self.checkpoints.last_owned(app) {
            Some((len, s)) => (len, s),
            None => (0, app.initial_state()),
        };
        let mut replayed = 0u64;
        for i in base_len..self.entries.len() {
            app.apply_in_place(&mut s, &self.entries[i].1);
            replayed += 1;
            // Recreate the checkpoints the insertion invalidated
            // so the next straggler replays only its own tail.
            if i + 1 < self.entries.len() {
                self.checkpoints.record(app, i + 1, &s);
            }
        }
        self.metrics.replayed += replayed;
        self.state = s;
        if shard_obs::enabled() {
            let obs = merge_obs();
            obs.out_of_order.inc();
            obs.replay_depth
                .record((self.entries.len() - base_len) as u64);
            if base_len > 0 {
                obs.ckpt_hits.inc();
            } else {
                obs.ckpt_misses.inc();
            }
        }
        MergeOutcome::OutOfOrder { replayed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::NodeId;
    use shard_core::DecisionOutcome;

    /// Append-only integer log app: state = vector of applied values, so
    /// ordering mistakes are visible.
    struct Trace;

    impl shard_core::Application for Trace {
        type State = Vec<u64>;
        type Update = u64;
        type Decision = u64;
        fn initial_state(&self) -> Vec<u64> {
            Vec::new()
        }
        fn is_well_formed(&self, _: &Vec<u64>) -> bool {
            true
        }
        fn apply(&self, s: &Vec<u64>, u: &u64) -> Vec<u64> {
            let mut v = s.clone();
            v.push(*u);
            v
        }
        fn decide(&self, d: &u64, _: &Vec<u64>) -> DecisionOutcome<u64> {
            DecisionOutcome::update_only(*d)
        }
        fn constraint_count(&self) -> usize {
            0
        }
        fn constraint_name(&self, _: usize) -> &str {
            unreachable!()
        }
        fn cost(&self, _: &Vec<u64>, _: usize) -> u64 {
            0
        }
    }

    fn ts(l: u64) -> Timestamp {
        Timestamp {
            lamport: l,
            node: NodeId(0),
        }
    }

    #[test]
    fn in_order_merges_are_appends() {
        let app = Trace;
        let mut log = MergeLog::new(&app, 4);
        for i in 1..=5 {
            assert!(log.merge(&app, ts(i), i * 10));
        }
        assert_eq!(log.state(), &vec![10, 20, 30, 40, 50]);
        let m = log.metrics();
        assert_eq!(m.appends, 5);
        assert_eq!(m.out_of_order, 0);
        assert_eq!(m.replayed, 0);
        assert_eq!(m.merged(), 5);
    }

    #[test]
    fn out_of_order_merge_reorders_by_timestamp() {
        let app = Trace;
        let mut log = MergeLog::new(&app, 4);
        log.merge(&app, ts(1), 10);
        log.merge(&app, ts(3), 30);
        log.merge(&app, ts(2), 20); // late arrival
        assert_eq!(log.state(), &vec![10, 20, 30]);
        assert_eq!(log.metrics().out_of_order, 1);
        assert!(log.metrics().replayed >= 2);
    }

    #[test]
    fn duplicates_are_ignored() {
        let app = Trace;
        let mut log = MergeLog::new(&app, 4);
        assert!(log.merge(&app, ts(1), 10));
        assert!(!log.merge(&app, ts(1), 10));
        assert_eq!(log.len(), 1);
        assert_eq!(log.metrics().duplicates, 1);
    }

    #[test]
    fn merging_shared_arcs_does_not_clone() {
        let app = Trace;
        let mut a = MergeLog::new(&app, 4);
        a.merge(&app, ts(1), 10);
        // Forward node a's entry to node b the way the cluster does:
        // share the Arc, no deep copy of the update.
        let mut b = MergeLog::new(&app, 4);
        let (t, u) = a.entries()[0].clone();
        assert!(b.merge(&app, t, Arc::clone(&u)));
        assert!(Arc::ptr_eq(&u, &b.entries()[0].1));
        assert_eq!(b.state(), &vec![10]);
    }

    #[test]
    fn checkpoints_bound_replay_work() {
        let app = Trace;
        // Dense checkpoints: replay after a late insert near the end
        // touches only the tail.
        let mut dense = MergeLog::new(&app, 2);
        let mut sparse = MergeLog::new(&app, 1000);
        assert_eq!(dense.checkpoint_interval(), 2);
        for i in 0..100u64 {
            let t = 2 * i + 2; // even lamports, leaving odd gaps
            dense.merge(&app, ts(t), t);
            sparse.merge(&app, ts(t), t);
        }
        // A very late straggler with an early timestamp.
        dense.merge(&app, ts(1), 1);
        sparse.merge(&app, ts(1), 1);
        assert_eq!(dense.state(), sparse.state());
        assert!(
            dense.metrics().replayed >= 100,
            "early insert replays everything"
        );
        // A straggler near the end is cheap for the dense log only.
        dense.merge(&app, ts(199), 199);
        sparse.merge(&app, ts(199), 199);
        assert_eq!(dense.state(), sparse.state());
        let dense_tail = dense.metrics().replayed;
        let sparse_tail = sparse.metrics().replayed;
        assert!(
            dense_tail < sparse_tail,
            "dense={dense_tail} sparse={sparse_tail}"
        );
    }

    #[test]
    fn state_always_equals_full_replay() {
        // Adversarial arrival order; invariant checked after every merge.
        let app = Trace;
        let mut log = MergeLog::new(&app, 3);
        let order = [7u64, 2, 9, 1, 8, 3, 6, 4, 5, 10];
        for (i, &l) in order.iter().enumerate() {
            log.merge(&app, ts(l), l);
            let mut expect = app.initial_state();
            for (_, u) in log.entries() {
                expect = app.apply(&expect, u);
            }
            assert_eq!(log.state(), &expect, "after {} merges", i + 1);
            // Entries stay sorted.
            assert!(log.entries().windows(2).all(|w| w[0].0 < w[1].0));
        }
        assert_eq!(log.known_timestamps().len(), 10);
        assert!(log.contains(ts(7)));
        assert!(!log.contains(ts(77)));
        assert_eq!(log.into_state(), (1..=10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_checkpoint_interval_panics() {
        let _ = MergeLog::new(&Trace, 0);
    }

    #[test]
    fn outcomes_classify_each_merge() {
        let app = Trace;
        let mut log = MergeLog::new(&app, 4);
        assert_eq!(
            log.merge_with_outcome(&app, ts(1), 10),
            MergeOutcome::Appended
        );
        assert_eq!(
            log.merge_with_outcome(&app, ts(3), 30),
            MergeOutcome::Appended
        );
        assert_eq!(
            log.merge_with_outcome(&app, ts(2), 20),
            MergeOutcome::OutOfOrder { replayed: 3 }
        );
        assert_eq!(
            log.merge_with_outcome(&app, ts(2), 20),
            MergeOutcome::Duplicate
        );
        assert!(MergeOutcome::Appended.is_new());
        assert!(!MergeOutcome::Duplicate.is_new());
    }

    #[test]
    fn spilling_log_matches_in_memory_log() {
        // Same adversarial arrival order into a plain log and a log
        // whose checkpoints spill through a MemStore: states, entries,
        // and outcome kinds must be identical after every merge —
        // checkpoints are a cache, wherever they live.
        let app = Trace;
        for (hot, spacing) in [(1, 1), (2, 3), (8, 1)] {
            let mut mem = MergeLog::new(&app, 2);
            let mut spill = MergeLog::new(&app, 2);
            spill.enable_spilling(&app, Box::new(shard_store::MemStore::new()), hot, spacing);
            let order = [7u64, 2, 9, 1, 8, 3, 6, 4, 5, 10, 12, 11];
            for &l in &order {
                let a = mem.merge_with_outcome(&app, ts(l), l);
                let b = spill.merge_with_outcome(&app, ts(l), l);
                assert_eq!(
                    std::mem::discriminant(&a),
                    std::mem::discriminant(&b),
                    "hot={hot} spacing={spacing} ts={l}"
                );
                assert_eq!(mem.state(), spill.state());
            }
            assert_eq!(mem.entries(), spill.entries());
            let (m, s) = (mem.metrics(), spill.metrics());
            assert_eq!(m.appends, s.appends);
            assert_eq!(m.out_of_order, s.out_of_order);
        }
    }

    #[test]
    fn spilling_survives_a_crashed_anchor_store() {
        // Killing the spill store mid-run costs replay depth, never
        // answers: later merges still converge to the full-replay state.
        let app = Trace;
        let mut log = MergeLog::new(&app, 1);
        log.enable_spilling(&app, Box::new(shard_store::MemStore::new()), 1, 1);
        for l in [4u64, 8, 12, 16, 20] {
            log.merge(&app, ts(l), l);
        }
        // (Checkpoint store crash is exercised end to end in
        // tests/durable_recovery.rs; here the cheap proxy is a clone,
        // which drops the spill tier entirely and starts cold.)
        let mut cold = log.clone();
        cold.merge(&app, ts(1), 1);
        cold.merge(&app, ts(18), 18);
        assert_eq!(cold.state(), &vec![1, 4, 8, 12, 16, 18, 20]);
    }

    #[test]
    fn batch_path_is_identical_to_entry_at_a_time() {
        // Adversarial burst: in-order run, straggler, duplicate, another
        // in-order run. The batch must produce the same state, metrics,
        // and per-entry outcome sequence as sequential merges.
        let app = Trace;
        let burst: Vec<(Timestamp, Arc<u64>)> = [5u64, 6, 7, 2, 5, 8, 9, 1, 10]
            .iter()
            .map(|&l| (ts(l), Arc::new(l)))
            .collect();
        for every in [1, 3, 1000] {
            let mut one_at_a_time = MergeLog::new(&app, every);
            let mut expected = Vec::new();
            for (t, u) in &burst {
                expected.push(one_at_a_time.merge_with_outcome(&app, *t, Arc::clone(u)));
            }
            let mut batched = MergeLog::new(&app, every);
            let mut got = Vec::new();
            batched.merge_batch(&app, burst.iter().cloned(), |_, o| got.push(o));
            assert_eq!(got, expected, "checkpoint interval {every}");
            assert_eq!(batched.state(), one_at_a_time.state());
            assert_eq!(batched.metrics(), one_at_a_time.metrics());
            assert_eq!(batched.entries(), one_at_a_time.entries());
        }
    }

    #[test]
    fn multiple_stragglers_in_one_run_share_a_single_repair() {
        // A run with several mid-log inserts ([2, 4, 6] into
        // [1, 3, 5, 7, 9]) converges to the same log, state, and
        // outcome kinds as sequential merging, but pays one undo/redo
        // pass instead of three.
        let app = Trace;
        let seed = [1u64, 3, 5, 7, 9];
        let burst: Vec<(Timestamp, Arc<u64>)> =
            [2u64, 4, 6].iter().map(|&l| (ts(l), Arc::new(l))).collect();

        let mut sequential = MergeLog::new(&app, 2);
        let mut batched = MergeLog::new(&app, 2);
        for &l in &seed {
            sequential.merge(&app, ts(l), Arc::new(l));
            batched.merge(&app, ts(l), Arc::new(l));
        }
        for (t, u) in &burst {
            sequential.merge_with_outcome(&app, *t, Arc::clone(u));
        }
        let mut got = Vec::new();
        batched.merge_batch(&app, burst.iter().cloned(), |_, o| got.push(o));

        assert_eq!(batched.state(), sequential.state());
        assert_eq!(batched.entries(), sequential.entries());
        assert_eq!(batched.known_set(), sequential.known_set());
        assert!(got
            .iter()
            .all(|o| matches!(o, MergeOutcome::OutOfOrder { .. })));
        // The repair cost lands on the run's first straggler; the rest
        // ride along for free.
        assert_eq!(
            got[1..]
                .iter()
                .map(|o| match o {
                    MergeOutcome::OutOfOrder { replayed } => *replayed,
                    _ => unreachable!(),
                })
                .sum::<u64>(),
            0
        );
        let (b, s) = (batched.metrics(), sequential.metrics());
        assert_eq!(b.out_of_order, s.out_of_order);
        assert_eq!(b.appends, s.appends);
        assert_eq!(b.duplicates, s.duplicates);
        assert!(
            b.replayed < s.replayed,
            "one repair ({}) must beat three ({})",
            b.replayed,
            s.replayed
        );
    }
}
