//! Persistent known-set snapshots — the O(1) capture that makes
//! `ExecutedTxn::known` affordable at scale.
//!
//! §3's correctness conditions are all phrased over the set of updates
//! a node *knew* when it executed a transaction. The kernel used to
//! materialize that set as a fresh `Vec<Timestamp>` on every execute —
//! O(log length) allocation per transaction, O(n²) for a run, which
//! turned 10⁵-transaction runs into allocation storms long before any
//! checker ran. A [`KnownSet`] is instead a persistent ordered set
//! (a [`PMap`] treap with structural sharing): the merge log maintains
//! one incrementally (O(log n) per merged update), and snapshotting it
//! at execute time is a reference-count bump.
//!
//! Two properties matter beyond cost:
//!
//! * **Canonical shape.** Treap priorities are key-derived, so a given
//!   timestamp set builds one tree regardless of merge order — a live
//!   threaded run and its kernel replay produce structurally identical
//!   (and O(1)-comparable, via pointer equality per subtree) sets.
//! * **Random access.** [`KnownSet::nth`] resolves the i-th timestamp
//!   in O(log n), which keeps the live monitor's miss-detection scan
//!   ([`crate::LiveMonitor`]) at O(misses · log²n) per sealed row
//!   instead of forcing a full materialization.

use crate::clock::Timestamp;
use shard_core::pmap::PMap;
use std::fmt;

/// An immutable-feeling, cheaply-snapshottable set of timestamps: the
/// updates a node knew at one moment. `clone` is O(1) and shares
/// structure with every other snapshot of the same log.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct KnownSet {
    set: PMap<Timestamp, ()>,
}

impl KnownSet {
    /// The empty set.
    pub fn new() -> Self {
        KnownSet { set: PMap::new() }
    }

    /// Number of known timestamps.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether nothing is known yet.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Whether `ts` is known.
    pub fn contains(&self, ts: Timestamp) -> bool {
        self.set.contains_key(&ts)
    }

    /// Adds a timestamp, returning whether it was new. O(log n),
    /// path-copying only nodes shared with live snapshots.
    pub fn insert(&mut self, ts: Timestamp) -> bool {
        self.set.insert(ts, ()).is_none()
    }

    /// The `i`-th smallest known timestamp, if any. O(log n).
    pub fn nth(&self, i: usize) -> Option<Timestamp> {
        self.set.nth(i).map(|(ts, ())| *ts)
    }

    /// Iterates timestamps in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Timestamp> + '_ {
        self.set.keys().copied()
    }

    /// Materializes the set as a sorted vector (offline consumers
    /// only — this is the O(n) copy the snapshot representation
    /// exists to avoid on the hot path).
    pub fn to_vec(&self) -> Vec<Timestamp> {
        self.iter().collect()
    }
}

impl fmt::Debug for KnownSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<Timestamp> for KnownSet {
    fn from_iter<I: IntoIterator<Item = Timestamp>>(iter: I) -> Self {
        let mut s = KnownSet::new();
        for ts in iter {
            s.insert(ts);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn ts(lamport: u64, node: u16) -> Timestamp {
        Timestamp {
            lamport,
            node: NodeId(node),
        }
    }

    #[test]
    fn insertion_order_is_irrelevant() {
        let forward: KnownSet = (0..50).map(|l| ts(l, (l % 3) as u16)).collect();
        let backward: KnownSet = (0..50).rev().map(|l| ts(l, (l % 3) as u16)).collect();
        assert_eq!(forward, backward);
        assert_eq!(forward.to_vec(), backward.to_vec());
    }

    #[test]
    fn snapshots_are_independent() {
        let mut live = KnownSet::new();
        live.insert(ts(1, 0));
        let snap = live.clone();
        assert!(live.insert(ts(2, 1)));
        assert!(!live.insert(ts(2, 1)), "duplicate insert reports false");
        assert_eq!(snap.len(), 1);
        assert_eq!(live.len(), 2);
        assert!(live.contains(ts(2, 1)));
        assert!(!snap.contains(ts(2, 1)));
    }

    #[test]
    fn nth_walks_the_sorted_order() {
        let set: KnownSet = [ts(5, 1), ts(2, 0), ts(9, 2), ts(2, 1)]
            .into_iter()
            .collect();
        assert_eq!(set.nth(0), Some(ts(2, 0)));
        assert_eq!(set.nth(1), Some(ts(2, 1)));
        assert_eq!(set.nth(2), Some(ts(5, 1)));
        assert_eq!(set.nth(3), Some(ts(9, 2)));
        assert_eq!(set.nth(4), None);
    }
}
