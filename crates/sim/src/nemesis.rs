//! Seeded, composable fault injection for the kernel [`Runner`].
//!
//! The paper's §3.1 counterexamples are *message patterns*: a lost
//! message defeats transitivity, a long-isolated node defeats
//! k-completeness, a late delivery defeats t-bounded delay. The
//! pre-scripted [`crate::partition::PartitionSchedule`] /
//! [`crate::crash::CrashSchedule`] / [`crate::delay::DelayModel`] knobs
//! can *reproduce* those patterns by hand; this module *searches* for
//! them. A [`Nemesis`] sits between [`Transport::send`] and the event
//! queue and rewrites each message's delivery — dropping it, duplicating
//! it, or delaying it past later traffic (adversarial reordering) — and
//! may inject randomly jittered partition and crash windows at run
//! start. Because the hook lives in the kernel transport, every
//! [`Propagation`] strategy (eager broadcast, gossip, partial
//! replication, their composition) gets faults uniformly.
//!
//! Three layers:
//!
//! * **Injectors** — [`MessageDropper`], [`MessageDuplicator`],
//!   [`MessageReorderer`], [`PartitionJitter`], [`CrashInjector`], each
//!   with its own seeded RNG (independent of the kernel's delay RNG, so
//!   enabling a nemesis never perturbs the fault-free schedule), stacked
//!   with [`NemesisStack`].
//! * **Recording** — [`Recorder`] wraps a stack and writes the faults it
//!   *actually* applied, in canonical form, to a shared [`FaultLog`].
//! * **Replay & shrinking** — [`ScheduledNemesis`] replays an explicit
//!   [`FaultEvent`] list verbatim, and [`shrink`] delta-debugs a
//!   violating schedule down to a locally minimal one: the mechanical
//!   analogue of the paper's hand-built §3.1 counterexamples.
//!
//! Replay determinism: a [`ScheduledNemesis`] keys per-message faults by
//! the kernel's send sequence number, so replay is exact whenever the
//! *send* schedule is fate-independent. That holds for reactive
//! strategies ([`crate::EagerBroadcast`]: sends happen only at
//! executions, and executions are client invocations); tick-driven
//! strategies stop ticking based on what was *delivered*, so their send
//! sequence can drift under a different fault schedule — shrink against
//! eager broadcast.
//!
//! Termination: drops are safe for every strategy. Eager broadcast
//! schedules no retries, so a dropped message is simply lost (that is
//! the point — the paper's conditions describe what survives). Gossip
//! re-ships whole logs every round, so any drop probability < 1 still
//! converges. Injected windows are finite: partitions heal and crashed
//! nodes recover, preserving the kernel's drain guarantee.
//!
//! [`Runner`]: crate::Runner
//! [`Transport::send`]: crate::Transport::send
//! [`Propagation`]: crate::Propagation

use crate::clock::NodeId;
use crate::crash::CrashWindow;
use crate::events::SimTime;
use crate::partition::PartitionWindow;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Everything a [`Nemesis`] knows about one in-flight message.
#[derive(Clone, Copy, Debug)]
pub struct MsgCtx {
    /// Kernel-assigned send sequence number (1-based, in send order) —
    /// the key [`ScheduledNemesis`] replays faults by.
    pub seq: u64,
    /// Send time.
    pub now: SimTime,
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// The fault-free delivery time the kernel computed (partition wait
    /// plus one sampled delay).
    pub at: SimTime,
}

/// What becomes of one message: the list of times at which a copy is
/// delivered. Starts as the single fault-free arrival; an empty list is
/// a drop, two or more entries are duplicates. List-shaped so stacked
/// nemeses compose: a duplicator pushes arrivals, a reorderer shifts
/// them, a dropper clears them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Fate {
    /// Delivery times of each surviving copy (unordered).
    pub times: Vec<SimTime>,
}

impl Fate {
    /// The fault-free fate: one copy, delivered at `at`.
    pub fn deliver(at: SimTime) -> Self {
        Fate { times: vec![at] }
    }

    /// Whether every copy has been dropped.
    pub fn is_dropped(&self) -> bool {
        self.times.is_empty()
    }

    /// The earliest surviving delivery, if any.
    pub fn primary(&self) -> Option<SimTime> {
        self.times.iter().copied().min()
    }
}

/// Fault windows a nemesis asks the kernel to add to the run's
/// partition/crash schedules before the event loop starts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Injected {
    /// Partition windows to merge into the schedule.
    pub partitions: Vec<PartitionWindow>,
    /// Crash windows to merge into the schedule.
    pub crashes: Vec<CrashWindow>,
}

/// A fault injector plugged into the kernel transport via
/// [`Runner::with_nemesis`](crate::Runner::with_nemesis).
///
/// Both methods have pass-through defaults, so an injector implements
/// only the layer it perturbs. Implementations that randomize should
/// own a seeded RNG (see [`MessageDropper::new`]) rather than drawing
/// from the kernel's: the kernel RNG stream must be identical with and
/// without a nemesis so fault-free runs stay bit-for-bit reproducible.
pub trait Nemesis {
    /// Short name used in traces and reports.
    fn label(&self) -> &'static str;

    /// Rewrites the fate of one message. Called once per
    /// [`Transport::send`](crate::Transport::send); the default
    /// leaves the fault-free fate untouched. The §3.3 barrier's
    /// Probe/Promise control messages do not pass through here — they
    /// are not updates, and losing them could wedge a critical
    /// transaction forever, which the paper's model excludes.
    fn on_message(&mut self, _ctx: &MsgCtx, _fate: &mut Fate) {}

    /// Asked once at run start for partition/crash windows to add,
    /// given the cluster size and the invocation horizon (the latest
    /// submission time). The default injects nothing.
    fn inject(&mut self, _nodes: u16, _horizon: SimTime) -> Injected {
        Injected::default()
    }
}

/// Drops each message with probability `prob`.
pub struct MessageDropper {
    prob: f64,
    rng: StdRng,
}

impl MessageDropper {
    /// A dropper with its own RNG stream.
    pub fn new(prob: f64, seed: u64) -> Self {
        MessageDropper {
            prob,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Nemesis for MessageDropper {
    fn label(&self) -> &'static str {
        "drop"
    }

    fn on_message(&mut self, _ctx: &MsgCtx, fate: &mut Fate) {
        // Draw per message regardless of the current fate so stacking
        // order does not change which messages later layers see hit.
        if self.rng.random_bool(self.prob) {
            fate.times.clear();
        }
    }
}

/// Duplicates each message with probability `prob`: 1..=`max_extra`
/// additional copies, each arriving up to `spread` ticks after the
/// fault-free time. Duplicates exercise the merge log's idempotence
/// (a re-delivered `(timestamp, update)` entry must be a no-op).
pub struct MessageDuplicator {
    prob: f64,
    max_extra: u32,
    spread: SimTime,
    rng: StdRng,
}

impl MessageDuplicator {
    /// A duplicator with its own RNG stream.
    pub fn new(prob: f64, max_extra: u32, spread: SimTime, seed: u64) -> Self {
        assert!(max_extra >= 1, "duplicating zero extra copies is a no-op");
        assert!(spread >= 1, "duplicates need a positive arrival spread");
        MessageDuplicator {
            prob,
            max_extra,
            spread,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Nemesis for MessageDuplicator {
    fn label(&self) -> &'static str {
        "duplicate"
    }

    fn on_message(&mut self, ctx: &MsgCtx, fate: &mut Fate) {
        if !self.rng.random_bool(self.prob) {
            return;
        }
        let extra = self.rng.random_range(1..=self.max_extra);
        for _ in 0..extra {
            let after = self.rng.random_range(1..=self.spread);
            if !fate.is_dropped() {
                fate.times.push(ctx.at + after);
            }
        }
    }
}

/// Delays each message with probability `prob` by an extra
/// `min..=max` ticks — *adversarial reordering*, beyond what the run's
/// [`DelayModel`](crate::DelayModel) produces: a hit message arrives
/// after traffic sent well after it, which is exactly the arrival
/// pattern the undo/redo merge and the §3.1 conditions must absorb.
pub struct MessageReorderer {
    prob: f64,
    min: SimTime,
    max: SimTime,
    rng: StdRng,
}

impl MessageReorderer {
    /// A reorderer with its own RNG stream.
    pub fn new(prob: f64, min: SimTime, max: SimTime, seed: u64) -> Self {
        assert!(min >= 1 && max >= min, "need 1 <= min <= max extra delay");
        MessageReorderer {
            prob,
            min,
            max,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Nemesis for MessageReorderer {
    fn label(&self) -> &'static str {
        "reorder"
    }

    fn on_message(&mut self, _ctx: &MsgCtx, fate: &mut Fate) {
        if !self.rng.random_bool(self.prob) {
            return;
        }
        let by = self.rng.random_range(self.min..=self.max);
        for t in &mut fate.times {
            *t += by;
        }
    }
}

/// Injects `count` partition windows at jittered times: each isolates a
/// random island of up to half the nodes for a random `min_len..=max_len`
/// ticks somewhere in the invocation horizon. Windows are finite, so the
/// network always heals.
pub struct PartitionJitter {
    count: u32,
    min_len: SimTime,
    max_len: SimTime,
    rng: StdRng,
}

impl PartitionJitter {
    /// A partition injector with its own RNG stream.
    pub fn new(count: u32, min_len: SimTime, max_len: SimTime, seed: u64) -> Self {
        assert!(min_len >= 1 && max_len >= min_len, "need 1 <= min <= max");
        PartitionJitter {
            count,
            min_len,
            max_len,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Nemesis for PartitionJitter {
    fn label(&self) -> &'static str {
        "partition"
    }

    fn inject(&mut self, nodes: u16, horizon: SimTime) -> Injected {
        let mut inj = Injected::default();
        if nodes < 2 {
            return inj;
        }
        for _ in 0..self.count {
            let start = self.rng.random_range(0..=horizon);
            let len = self.rng.random_range(self.min_len..=self.max_len);
            let island_size = self.rng.random_range(1..=(nodes / 2).max(1));
            let mut island = Vec::with_capacity(island_size as usize);
            while island.len() < island_size as usize {
                let n = NodeId(self.rng.random_range(0..nodes));
                if !island.contains(&n) {
                    island.push(n);
                }
            }
            inj.partitions
                .push(PartitionWindow::isolate(start, start + len, island));
        }
        inj
    }
}

/// Injects `count` crash-with-recovery windows: a random node is down
/// for a random `min_len..=max_len` ticks. The kernel rejects client
/// transactions at a crashed node and holds its incoming messages until
/// recovery, so every window doubles as a burst of extreme delay.
pub struct CrashInjector {
    count: u32,
    min_len: SimTime,
    max_len: SimTime,
    rng: StdRng,
}

impl CrashInjector {
    /// A crash injector with its own RNG stream.
    pub fn new(count: u32, min_len: SimTime, max_len: SimTime, seed: u64) -> Self {
        assert!(min_len >= 1 && max_len >= min_len, "need 1 <= min <= max");
        CrashInjector {
            count,
            min_len,
            max_len,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Nemesis for CrashInjector {
    fn label(&self) -> &'static str {
        "crash"
    }

    fn inject(&mut self, nodes: u16, horizon: SimTime) -> Injected {
        let mut inj = Injected::default();
        for _ in 0..self.count {
            let node = NodeId(self.rng.random_range(0..nodes));
            let start = self.rng.random_range(0..=horizon);
            let len = self.rng.random_range(self.min_len..=self.max_len);
            inj.crashes.push(CrashWindow::new(node, start, start + len));
        }
        inj
    }
}

/// Like [`CrashInjector`], but meant for runs with a durable fleet
/// attached ([`crate::Runner::with_durability`]): every injected window
/// then becomes a *real* kill/recover cycle — at window start the
/// node's store suffers a simulated power cut (its unsynced tail may be
/// lost, possibly mid-record), and at window end the node is rebuilt
/// from the surviving WAL and rejoins propagation. Without durability
/// the windows degrade to plain [`CrashInjector`] outages (RAM
/// retained), so the label distinguishes the two in traces.
pub struct CrashRecoverInjector {
    inner: CrashInjector,
}

impl CrashRecoverInjector {
    /// A crash/recover injector with its own RNG stream (same sampling
    /// as [`CrashInjector::new`]).
    pub fn new(count: u32, min_len: SimTime, max_len: SimTime, seed: u64) -> Self {
        CrashRecoverInjector {
            inner: CrashInjector::new(count, min_len, max_len, seed),
        }
    }
}

impl Nemesis for CrashRecoverInjector {
    fn label(&self) -> &'static str {
        "crash_recover"
    }

    fn inject(&mut self, nodes: u16, horizon: SimTime) -> Injected {
        self.inner.inject(nodes, horizon)
    }
}

/// Stacks nemeses: each message's fate is folded through every layer in
/// order, and injected windows are concatenated. Layer order matters for
/// per-message faults (a duplicator after a dropper never revives a
/// dropped message; a reorderer after a duplicator shifts the duplicates
/// too).
#[derive(Default)]
pub struct NemesisStack {
    layers: Vec<Box<dyn Nemesis>>,
}

impl NemesisStack {
    /// An empty stack (a pass-through nemesis).
    pub fn new() -> Self {
        NemesisStack::default()
    }

    /// Adds a layer at the bottom of the stack (applied after the
    /// layers already present).
    #[must_use]
    pub fn with(mut self, layer: Box<dyn Nemesis>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Nemesis for NemesisStack {
    fn label(&self) -> &'static str {
        "stack"
    }

    fn on_message(&mut self, ctx: &MsgCtx, fate: &mut Fate) {
        for layer in &mut self.layers {
            layer.on_message(ctx, fate);
        }
    }

    fn inject(&mut self, nodes: u16, horizon: SimTime) -> Injected {
        let mut all = Injected::default();
        for layer in &mut self.layers {
            let inj = layer.inject(nodes, horizon);
            all.partitions.extend(inj.partitions);
            all.crashes.extend(inj.crashes);
        }
        all
    }
}

/// One applied fault, in canonical form. Message faults are keyed by
/// the kernel send sequence number and expressed *relative* to the
/// fault-free delivery time, so a recorded schedule stays meaningful
/// while [`shrink`] removes other events (removing a partition window
/// shifts absolute delivery times; offsets survive).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// Message `msg` was dropped (every copy).
    Drop {
        /// Send sequence number of the affected message.
        msg: u64,
    },
    /// Message `msg`'s surviving copy was delayed `by` ticks past its
    /// fault-free arrival.
    Delay {
        /// Send sequence number of the affected message.
        msg: u64,
        /// Extra delay in ticks.
        by: SimTime,
    },
    /// An extra copy of message `msg` was delivered `after` ticks past
    /// its fault-free arrival.
    Duplicate {
        /// Send sequence number of the affected message.
        msg: u64,
        /// Arrival offset of the extra copy, in ticks.
        after: SimTime,
    },
    /// A partition window was injected.
    Partition {
        /// The injected window.
        window: PartitionWindow,
    },
    /// A crash window was injected.
    Crash {
        /// The injected window.
        window: CrashWindow,
    },
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::Drop { msg } => write!(f, "drop msg #{msg}"),
            FaultEvent::Delay { msg, by } => write!(f, "delay msg #{msg} by {by}"),
            FaultEvent::Duplicate { msg, after } => {
                write!(f, "duplicate msg #{msg} (+{after})")
            }
            FaultEvent::Partition { window } => {
                let nodes: Vec<String> = window
                    .groups
                    .iter()
                    .flatten()
                    .map(ToString::to_string)
                    .collect();
                write!(
                    f,
                    "partition {{{}}} during [{}, {})",
                    nodes.join(","),
                    window.start,
                    window.end
                )
            }
            FaultEvent::Crash { window } => write!(
                f,
                "crash node {} during [{}, {})",
                window.node, window.start, window.end
            ),
        }
    }
}

/// A cheaply cloneable handle onto the fault list a [`Recorder`] writes.
/// The kernel consumes the boxed nemesis, so the schedule is read back
/// through this handle after the run.
#[derive(Clone, Default)]
pub struct FaultLog(Arc<Mutex<Vec<FaultEvent>>>);

impl FaultLog {
    /// A snapshot of the recorded events.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.0.lock().expect("fault log lock").clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.0.lock().expect("fault log lock").len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&self, e: FaultEvent) {
        self.0.lock().expect("fault log lock").push(e);
    }

    fn extend(&self, it: impl IntoIterator<Item = FaultEvent>) {
        self.0.lock().expect("fault log lock").extend(it);
    }
}

/// Wraps a nemesis and records every fault it actually applies, in the
/// canonical [`FaultEvent`] form [`ScheduledNemesis`] replays. The
/// recording is a *diff* against the fault-free fate, so whatever the
/// inner stack did collapses to at most one drop, one delay and a set
/// of duplicates per message.
pub struct Recorder {
    inner: Box<dyn Nemesis>,
    log: FaultLog,
}

impl Recorder {
    /// Wraps `inner`; the returned [`FaultLog`] stays readable after the
    /// kernel has consumed the recorder.
    pub fn new(inner: Box<dyn Nemesis>) -> (Self, FaultLog) {
        let log = FaultLog::default();
        (
            Recorder {
                inner,
                log: log.clone(),
            },
            log.clone(),
        )
    }
}

impl Nemesis for Recorder {
    fn label(&self) -> &'static str {
        "recorder"
    }

    fn on_message(&mut self, ctx: &MsgCtx, fate: &mut Fate) {
        self.inner.on_message(ctx, fate);
        if fate.is_dropped() {
            self.log.push(FaultEvent::Drop { msg: ctx.seq });
            return;
        }
        let primary = fate.primary().expect("non-dropped fate has a primary");
        if primary != ctx.at {
            self.log.push(FaultEvent::Delay {
                msg: ctx.seq,
                by: primary.saturating_sub(ctx.at),
            });
        }
        let mut extras: Vec<SimTime> = fate
            .times
            .iter()
            .copied()
            .filter(|t| *t != primary)
            .collect();
        // A fate may hold several copies at the same non-primary time;
        // only the first occurrence of `primary` is the primary copy.
        let primaries = fate.times.iter().filter(|t| **t == primary).count();
        extras.extend(std::iter::repeat_n(primary, primaries - 1));
        extras.sort_unstable();
        self.log
            .extend(extras.into_iter().map(|t| FaultEvent::Duplicate {
                msg: ctx.seq,
                after: t.saturating_sub(ctx.at),
            }));
    }

    fn inject(&mut self, nodes: u16, horizon: SimTime) -> Injected {
        let inj = self.inner.inject(nodes, horizon);
        self.log.extend(
            inj.partitions
                .iter()
                .map(|w| FaultEvent::Partition { window: w.clone() }),
        );
        self.log
            .extend(inj.crashes.iter().map(|w| FaultEvent::Crash { window: *w }));
        inj
    }
}

#[derive(Clone, Debug, Default)]
struct MsgFault {
    drop: bool,
    delay_by: Option<SimTime>,
    dups: Vec<SimTime>,
}

/// Replays an explicit [`FaultEvent`] schedule verbatim: deterministic,
/// RNG-free, keyed by message sequence number. This is the nemesis
/// [`shrink`] re-runs candidates through — see the module docs for when
/// replay is exact.
#[derive(Clone, Debug, Default)]
pub struct ScheduledNemesis {
    msgs: BTreeMap<u64, MsgFault>,
    injected: Injected,
}

impl ScheduledNemesis {
    /// A nemesis replaying exactly `events`.
    pub fn new(events: &[FaultEvent]) -> Self {
        let mut s = ScheduledNemesis::default();
        for e in events {
            match e {
                FaultEvent::Drop { msg } => s.msgs.entry(*msg).or_default().drop = true,
                FaultEvent::Delay { msg, by } => {
                    s.msgs.entry(*msg).or_default().delay_by = Some(*by);
                }
                FaultEvent::Duplicate { msg, after } => {
                    s.msgs.entry(*msg).or_default().dups.push(*after);
                }
                FaultEvent::Partition { window } => s.injected.partitions.push(window.clone()),
                FaultEvent::Crash { window } => s.injected.crashes.push(*window),
            }
        }
        s
    }
}

impl Nemesis for ScheduledNemesis {
    fn label(&self) -> &'static str {
        "scheduled"
    }

    fn on_message(&mut self, ctx: &MsgCtx, fate: &mut Fate) {
        let Some(f) = self.msgs.get(&ctx.seq) else {
            return;
        };
        if f.drop {
            fate.times.clear();
            return;
        }
        fate.times = vec![ctx.at + f.delay_by.unwrap_or(0)];
        for after in &f.dups {
            fate.times.push(ctx.at + after);
        }
    }

    fn inject(&mut self, _nodes: u16, _horizon: SimTime) -> Injected {
        self.injected.clone()
    }
}

/// Delta-debugs a violating fault schedule down to a locally minimal
/// one: repeatedly removes chunks of halving size, keeping any removal
/// after which `reproduces` still reports the violation, until no single
/// event can be removed (1-minimality). `reproduces` is typically "run
/// [`ScheduledNemesis`] over the candidate and re-check the oracle";
/// note the oracle asks for *a* violation, not the identical one — like
/// ddmin, the result is a minimal violating schedule, which is what a
/// counterexample is.
pub fn shrink(
    events: &[FaultEvent],
    mut reproduces: impl FnMut(&[FaultEvent]) -> bool,
) -> Vec<FaultEvent> {
    let mut current = events.to_vec();
    let mut chunk = current.len().div_ceil(2).max(1);
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < current.len() {
            let hi = (i + chunk).min(current.len());
            let candidate: Vec<FaultEvent> =
                current[..i].iter().chain(&current[hi..]).cloned().collect();
            if reproduces(&candidate) {
                current = candidate;
                removed_any = true;
            } else {
                i = hi;
            }
        }
        if chunk == 1 {
            if !removed_any {
                return current;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(seq: u64, at: SimTime) -> MsgCtx {
        MsgCtx {
            seq,
            now: 0,
            from: NodeId(0),
            to: NodeId(1),
            at,
        }
    }

    #[test]
    fn dropper_is_seeded_and_probabilistic() {
        let mut d = MessageDropper::new(0.5, 7);
        let fates: Vec<bool> = (0..100)
            .map(|i| {
                let mut f = Fate::deliver(10);
                d.on_message(&ctx(i, 10), &mut f);
                f.is_dropped()
            })
            .collect();
        let drops = fates.iter().filter(|b| **b).count();
        assert!(drops > 20 && drops < 80, "≈half drop, got {drops}");
        // Same seed, same fates.
        let mut d2 = MessageDropper::new(0.5, 7);
        let again: Vec<bool> = (0..100)
            .map(|i| {
                let mut f = Fate::deliver(10);
                d2.on_message(&ctx(i, 10), &mut f);
                f.is_dropped()
            })
            .collect();
        assert_eq!(fates, again);
    }

    #[test]
    fn duplicator_adds_copies_after_the_original() {
        let mut d = MessageDuplicator::new(1.0, 2, 5, 3);
        let mut f = Fate::deliver(100);
        d.on_message(&ctx(1, 100), &mut f);
        assert!(f.times.len() >= 2, "at least one extra copy");
        assert_eq!(f.primary(), Some(100), "the original copy survives");
        assert!(f.times.iter().all(|t| (100..=105).contains(t)));
    }

    #[test]
    fn reorderer_shifts_every_copy() {
        let mut r = MessageReorderer::new(1.0, 10, 10, 3);
        let mut f = Fate {
            times: vec![50, 60],
        };
        r.on_message(&ctx(1, 50), &mut f);
        assert_eq!(f.times, vec![60, 70]);
    }

    #[test]
    fn jitter_windows_are_finite_and_in_range() {
        let mut p = PartitionJitter::new(4, 10, 50, 11);
        let inj = p.inject(5, 1000);
        assert_eq!(inj.partitions.len(), 4);
        for w in &inj.partitions {
            assert!(w.end > w.start);
            assert!(w.end - w.start >= 10 && w.end - w.start <= 50);
            let island = &w.groups[0];
            assert!(!island.is_empty() && island.len() <= 2, "≤ half of 5");
        }
        let mut c = CrashInjector::new(3, 5, 20, 11);
        let inj = c.inject(5, 1000);
        assert_eq!(inj.crashes.len(), 3);
        assert!(inj.crashes.iter().all(|w| w.end > w.start && w.node.0 < 5));
    }

    #[test]
    fn stack_composes_in_order() {
        let mut s = NemesisStack::new()
            .with(Box::new(MessageDuplicator::new(1.0, 1, 1, 1)))
            .with(Box::new(MessageReorderer::new(1.0, 10, 10, 2)));
        assert_eq!(s.len(), 2);
        let mut f = Fate::deliver(100);
        s.on_message(&ctx(1, 100), &mut f);
        // Duplicated first (100, 101), then both shifted by 10.
        assert_eq!(f.times, vec![110, 111]);
    }

    #[test]
    fn recorder_canonicalizes_and_scheduled_replays() {
        let stack = NemesisStack::new()
            .with(Box::new(MessageDropper::new(0.3, 5)))
            .with(Box::new(MessageDuplicator::new(0.4, 2, 8, 6)))
            .with(Box::new(MessageReorderer::new(0.3, 5, 40, 7)));
        let (mut rec, log) = Recorder::new(Box::new(stack));
        let mut fates = Vec::new();
        for i in 0..200u64 {
            let mut f = Fate::deliver(10 * i);
            rec.on_message(&ctx(i + 1, 10 * i), &mut f);
            f.times.sort_unstable();
            fates.push(f);
        }
        assert!(!log.is_empty(), "some faults fired");
        // Replaying the recorded schedule reproduces every fate.
        let mut replay = ScheduledNemesis::new(&log.events());
        for i in 0..200u64 {
            let mut f = Fate::deliver(10 * i);
            replay.on_message(&ctx(i + 1, 10 * i), &mut f);
            f.times.sort_unstable();
            assert_eq!(f, fates[i as usize], "message {}", i + 1);
        }
    }

    #[test]
    fn recorder_captures_injected_windows() {
        let stack = NemesisStack::new()
            .with(Box::new(PartitionJitter::new(2, 10, 20, 9)))
            .with(Box::new(CrashInjector::new(1, 5, 9, 10)));
        let (mut rec, log) = Recorder::new(Box::new(stack));
        let inj = rec.inject(5, 500);
        assert_eq!(inj.partitions.len(), 2);
        assert_eq!(inj.crashes.len(), 1);
        let events = log.events();
        assert_eq!(events.len(), 3);
        let mut replay = ScheduledNemesis::new(&events);
        assert_eq!(replay.inject(5, 500), inj);
    }

    #[test]
    fn shrink_finds_the_minimal_subset() {
        // The "violation" needs drop #3 and drop #7 together.
        let events: Vec<FaultEvent> = (1..=10).map(|msg| FaultEvent::Drop { msg }).collect();
        let needs = |c: &[FaultEvent]| {
            c.contains(&FaultEvent::Drop { msg: 3 }) && c.contains(&FaultEvent::Drop { msg: 7 })
        };
        let min = shrink(&events, needs);
        assert_eq!(
            min,
            vec![FaultEvent::Drop { msg: 3 }, FaultEvent::Drop { msg: 7 }]
        );
    }

    #[test]
    fn shrink_handles_single_and_empty_causes() {
        let events = vec![
            FaultEvent::Drop { msg: 1 },
            FaultEvent::Delay { msg: 2, by: 50 },
        ];
        let min = shrink(&events, |c| c.contains(&FaultEvent::Drop { msg: 1 }));
        assert_eq!(min, vec![FaultEvent::Drop { msg: 1 }]);
        // If the violation reproduces with no faults at all, the
        // minimal schedule is empty.
        assert!(shrink(&events, |_| true).is_empty());
    }

    #[test]
    fn fault_events_render() {
        let d = FaultEvent::Delay { msg: 4, by: 30 };
        assert_eq!(d.to_string(), "delay msg #4 by 30");
        let p = FaultEvent::Partition {
            window: PartitionWindow::isolate(5, 25, vec![NodeId(2)]),
        };
        assert_eq!(p.to_string(), "partition {n2} during [5, 25)");
    }
}
