//! Node crash/recovery schedules.
//!
//! §1.2: "communication **and node failures** can cause significant
//! delays". A crashed node processes nothing: client transactions
//! submitted to it are rejected (the client must retry elsewhere —
//! SHARD's availability is per-*reachable*-node), and messages addressed
//! to it are held by the transport until it recovers. SHARD's state is
//! durable (the update log), so recovery is just "resume from the log" —
//! the merge engine needs no special repair path.

use crate::clock::NodeId;
use crate::events::SimTime;

/// One crash window: `node` is down during `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashWindow {
    /// The crashed node.
    pub node: NodeId,
    /// First tick of the outage.
    pub start: SimTime,
    /// First tick after recovery.
    pub end: SimTime,
}

impl CrashWindow {
    /// Convenience constructor.
    pub fn new(node: NodeId, start: SimTime, end: SimTime) -> Self {
        CrashWindow { node, start, end }
    }
}

/// A schedule of node outages.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrashSchedule {
    windows: Vec<CrashWindow>,
}

impl CrashSchedule {
    /// No crashes.
    pub fn none() -> Self {
        CrashSchedule::default()
    }

    /// A schedule from explicit windows.
    pub fn new(windows: Vec<CrashWindow>) -> Self {
        CrashSchedule { windows }
    }

    /// Whether any crashes are scheduled.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Adds a window.
    pub fn push(&mut self, w: CrashWindow) {
        self.windows.push(w);
    }

    /// The scheduled outage windows.
    pub fn windows(&self) -> &[CrashWindow] {
        &self.windows
    }

    /// Whether `node` is down at time `t`.
    pub fn is_down(&self, t: SimTime, node: NodeId) -> bool {
        self.windows
            .iter()
            .any(|w| w.node == node && w.start <= t && t < w.end)
    }

    /// The earliest time `≥ t` at which `node` is up.
    pub fn next_up(&self, t: SimTime, node: NodeId) -> SimTime {
        let mut t = t;
        // Windows may chain back to back; iterate until stable.
        loop {
            match self
                .windows
                .iter()
                .find(|w| w.node == node && w.start <= t && t < w.end)
            {
                Some(w) => t = w.end,
                None => return t,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn empty_schedule_is_always_up() {
        let s = CrashSchedule::none();
        assert!(s.is_empty());
        assert!(!s.is_down(100, n(0)));
        assert_eq!(s.next_up(100, n(0)), 100);
    }

    #[test]
    fn windows_bound_the_outage() {
        let s = CrashSchedule::new(vec![CrashWindow::new(n(1), 10, 20)]);
        assert!(!s.is_down(9, n(1)));
        assert!(s.is_down(10, n(1)));
        assert!(s.is_down(19, n(1)));
        assert!(!s.is_down(20, n(1)));
        assert!(!s.is_down(15, n(0)), "other nodes unaffected");
        assert_eq!(s.next_up(15, n(1)), 20);
        assert_eq!(s.next_up(5, n(1)), 5);
    }

    #[test]
    fn chained_windows_resolve_transitively() {
        let s = CrashSchedule::new(vec![
            CrashWindow::new(n(0), 10, 20),
            CrashWindow::new(n(0), 20, 35),
        ]);
        assert_eq!(s.next_up(12, n(0)), 35);
    }
}
