//! Durable node mirrors: a [`shard_store::Store`] WAL per replica, and
//! the crash/recovery machinery that makes §3's conditions survivable
//! across real process restarts.
//!
//! # What is persisted
//!
//! A node's durable truth is its merge log's **arrival order** — the
//! sequence of `(timestamp, update)` pairs in the order they were
//! merged locally. States, checkpoints and known sets are all derived
//! by replay, so the WAL records nothing else. Each arrival appends one
//! store record keyed by its timestamp (big-endian `(lamport, node)`,
//! so key order *is* serial order) with the [`shard_store::Codec`]
//! encoding of the update as the value.
//!
//! # The write-ahead discipline
//!
//! * **Own updates are fsynced before propagation.** When a node
//!   executes a client transaction, the kernel appends the update to
//!   the mirror and calls [`shard_store::Store::sync`] *before* the
//!   propagation strategy ships it to any peer. A crash can therefore
//!   lose an own update only if no other node ever saw it — after
//!   recovery the system state is as if the client request had been
//!   rejected, which §1's availability model already allows.
//! * **Received updates are appended without an fsync barrier.** They
//!   survive on the origin (by the rule above) and re-arrive via
//!   anti-entropy, so batching their durability is safe and keeps the
//!   fsync count proportional to *own* transactions.
//!
//! Together these give the recovery invariants checked by
//! `tests/durable_recovery.rs`: the recovered log is a **prefix of the
//! pre-crash arrival order** (and hence, under log-shipping strategies,
//! still transitively closed), and the recovered Lamport clock has
//! observed every timestamp the node ever issued — so no timestamp is
//! ever reused, and prefix subsequence (§3, Cor 8) holds across the
//! restart.

use crate::clock::{LamportClock, NodeId, Timestamp};
use crate::kernel::Node;
use crate::merge::MergeLog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shard_core::Application;
use shard_store::{Codec, DiskStore, MemStore, Store, StoreKey, StoreOptions};
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

/// Which [`Store`] implementation backs each node's mirror.
#[derive(Clone, Debug)]
pub enum StoreBackend {
    /// In-memory store with disk-faithful byte/fsync accounting — the
    /// default: deterministic, no filesystem, same crash semantics.
    Mem,
    /// One [`DiskStore`] per node under `dir/node-<id>/`, surviving
    /// real process restarts.
    Disk {
        /// Root directory; each node gets a `node-<id>` subdirectory.
        dir: PathBuf,
    },
}

/// Configuration of the durability layer a [`crate::Runner`] attaches
/// via [`crate::Runner::with_durability`].
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Store backend for every node's mirror.
    pub backend: StoreBackend,
    /// Seed of the kill-point RNG (separate from the kernel RNG, so
    /// attaching durability never perturbs delay sampling or gossip
    /// partner choice: fault-free runs stay byte-identical).
    pub kill_seed: u64,
}

impl DurabilityConfig {
    /// Memory-backed durability (the deterministic default).
    pub fn mem(kill_seed: u64) -> Self {
        DurabilityConfig {
            backend: StoreBackend::Mem,
            kill_seed,
        }
    }

    /// Disk-backed durability rooted at `dir`.
    pub fn disk(dir: impl Into<PathBuf>, kill_seed: u64) -> Self {
        DurabilityConfig {
            backend: StoreBackend::Disk { dir: dir.into() },
            kill_seed,
        }
    }

    /// Reads `SHARD_STORE_DIR` from the environment: set, the mirrors
    /// live on disk under that directory; unset, returns `None` (run
    /// without durability or opt into [`DurabilityConfig::mem`]).
    pub fn from_env(kill_seed: u64) -> Option<Self> {
        std::env::var_os("SHARD_STORE_DIR")
            .map(|d| DurabilityConfig::disk(PathBuf::from(d), kill_seed))
    }
}

/// What [`DurableFleet::kill`] did to a node's store — the simulated
/// power cut, reported for tracing and assertions.
#[derive(Clone, Copy, Debug)]
pub struct KillReport {
    /// Entries that survived the cut (a prefix of the arrival order).
    pub kept_entries: usize,
    /// Bytes of intact log after torn-tail truncation.
    pub kept_bytes: u64,
    /// Bytes that were appended but lost to the cut.
    pub lost_bytes: u64,
    /// Whether the cut tore a record in half (the torn tail is
    /// truncated on reopen, exactly as [`shard_store::Wal::open`]
    /// would after a real crash).
    pub torn: bool,
}

/// One node's durable mirror: its store, a cursor into the merge log's
/// arrival order marking what has been appended so far, and the codec
/// hooks.
///
/// Holding the codec as plain function pointers (coerced from the
/// [`Codec`] impl in the constructors, the only place the
/// `A::Update: Codec` bound is needed) keeps the kernel's run loop and
/// the threaded runtime free of serialization bounds. The store is
/// `Send`, so a mirror can move into a `shard-runtime` node thread.
pub struct NodeMirror<A: Application> {
    store: Box<dyn Store + Send>,
    /// `log.arrivals()[..cursor]` is already in the store.
    cursor: usize,
    encode: fn(&A::Update, &mut Vec<u8>),
    decode: fn(&[u8]) -> Option<A::Update>,
    scratch: Vec<u8>,
}

/// The per-node durable mirrors of a cluster, plus the kill-point RNG.
pub struct DurableFleet<A: Application> {
    mirrors: Vec<NodeMirror<A>>,
    rng: StdRng,
}

fn key_of(ts: Timestamp) -> StoreKey {
    StoreKey {
        primary: ts.lamport,
        secondary: ts.node.0,
    }
}

fn ts_of(key: StoreKey) -> Timestamp {
    Timestamp {
        lamport: key.primary,
        node: NodeId(key.secondary),
    }
}

impl<A: Application> NodeMirror<A>
where
    A::Update: Codec,
{
    /// A memory-backed mirror (disk-faithful byte/fsync accounting, no
    /// filesystem).
    pub fn mem() -> Self {
        Self::from_store(Box::new(MemStore::new()), 0)
    }

    /// Opens (or creates) a disk-backed mirror at `dir`, returning it
    /// with the number of entries recovered from an existing WAL (0 for
    /// a fresh directory). Existing entries are *not* cleared —
    /// [`NodeMirror::recover`] rebuilds the node from them, which is
    /// how a replica restarts from a previous process's store.
    pub fn disk(dir: &std::path::Path) -> io::Result<(Self, usize)> {
        let (store, recovered) = DiskStore::open(dir, StoreOptions::from_env())?;
        Ok((Self::from_store(Box::new(store), recovered), recovered))
    }

    fn from_store(store: Box<dyn Store + Send>, cursor: usize) -> Self {
        NodeMirror {
            store,
            cursor,
            encode: |u, out| u.encode(out),
            decode: A::Update::from_slice,
            scratch: Vec::new(),
        }
    }
}

impl<A: Application> NodeMirror<A> {
    /// Entries currently in the store.
    pub fn entries(&self) -> usize {
        self.store.entries()
    }

    /// Direct access to the store (tests and experiments inspect byte
    /// counts and scan orders through this).
    pub fn store_mut(&mut self) -> &mut dyn Store {
        &mut *self.store
    }

    /// Appends every arrival of `log` past the mirror's cursor, then —
    /// when `barrier` is set — fsyncs. The kernel and the threaded
    /// runtime call this with a barrier after each own execution
    /// (*before* propagation) and without one after each delivery.
    ///
    /// # Panics
    ///
    /// Panics on store I/O errors: a replica that cannot persist its
    /// own update must not propagate it, and the deterministic kernel
    /// has no error path to thread one through.
    pub fn persist(&mut self, log: &MergeLog<A>, barrier: bool) {
        let arrivals = log.arrivals();
        let entries = log.entries();
        for &ts in &arrivals[self.cursor..] {
            let at = entries
                .binary_search_by_key(&ts, |(t, _)| *t)
                .expect("every arrival is in the (timestamp-sorted) log");
            self.scratch.clear();
            (self.encode)(&entries[at].1, &mut self.scratch);
            self.store
                .append(key_of(ts), &self.scratch)
                .expect("durable mirror append");
        }
        self.cursor = arrivals.len();
        if barrier {
            self.store.sync().expect("durable mirror fsync");
        }
    }

    /// Simulates a power cut at byte offset `keep` (everything past it
    /// is lost, possibly tearing a record; the store truncates the torn
    /// tail on reopen). The cursor rewinds to the surviving prefix.
    /// [`DurableFleet::kill`] picks the offset; tests may pin it.
    pub fn crash_at(&mut self, keep: u64) -> KillReport {
        let len = self.store.len_bytes();
        let report = self.store.crash(keep).expect("durable mirror crash");
        self.cursor = report.kept_entries;
        KillReport {
            kept_entries: report.kept_entries,
            kept_bytes: report.kept_bytes,
            lost_bytes: len - report.kept_bytes,
            torn: report.torn,
        }
    }

    /// Rebuilds node `id` from the store: streams the surviving WAL in
    /// arrival order through a fresh merge log (checkpoint chain and
    /// known set rebuild as replay side effects), advances a fresh
    /// Lamport clock past every recovered timestamp, and recounts the
    /// node's own transactions for the §3.3 barrier protocol. Because
    /// own updates were fsynced before propagation, the recovered clock
    /// dominates every timestamp the node ever issued — recovery can
    /// never reuse a timestamp.
    ///
    /// Returns the rebuilt node and the number of recovered entries.
    pub fn recover(&mut self, app: &A, id: NodeId, checkpoint_every: usize) -> (Node<A>, usize) {
        let mut log = MergeLog::new(app, checkpoint_every);
        let mut clock = LamportClock::new(id);
        let mut own_sent = 0u64;
        let decode = self.decode;
        // Stream in bounded chunks: the store scan reads page-at-a-time
        // and the merge log absorbs each chunk as one batch, so peak
        // memory is O(chunk), not O(log).
        const CHUNK: usize = 1024;
        let mut batch: Vec<(Timestamp, Arc<A::Update>)> = Vec::with_capacity(CHUNK);
        let mut recovered = 0usize;
        {
            let mut flush = |batch: &mut Vec<(Timestamp, Arc<A::Update>)>| {
                log.merge_batch(app, batch.drain(..), |_, _| {});
            };
            self.store
                .scan_arrival(&mut |key, value| {
                    let ts = ts_of(key);
                    let update = decode(value).expect("recovered WAL payload decodes");
                    clock.observe(ts);
                    if ts.node == id {
                        own_sent += 1;
                    }
                    recovered += 1;
                    batch.push((ts, Arc::new(update)));
                    if batch.len() >= CHUNK {
                        flush(&mut batch);
                    }
                })
                .expect("durable mirror scan");
            flush(&mut batch);
        }
        self.cursor = recovered;
        (
            Node {
                id,
                clock,
                log,
                own_sent,
            },
            recovered,
        )
    }
}

impl<A: Application> DurableFleet<A>
where
    A::Update: Codec,
{
    /// Opens (or creates) one mirror per node. Disk-backed mirrors that
    /// already hold entries are *not* cleared — [`DurableFleet::recover`]
    /// rebuilds their nodes, which is how a cluster restarts from a
    /// previous process's stores.
    pub fn new(nodes: u16, config: &DurabilityConfig) -> io::Result<Self> {
        let mut mirrors = Vec::with_capacity(nodes as usize);
        for i in 0..nodes {
            mirrors.push(match &config.backend {
                StoreBackend::Mem => NodeMirror::mem(),
                StoreBackend::Disk { dir } => NodeMirror::disk(&dir.join(format!("node-{i}")))?.0,
            });
        }
        Ok(DurableFleet {
            mirrors,
            rng: StdRng::seed_from_u64(config.kill_seed),
        })
    }
}

impl<A: Application> DurableFleet<A> {
    /// Number of mirrors (one per node).
    pub fn len(&self) -> usize {
        self.mirrors.len()
    }

    /// Whether the fleet has no mirrors.
    pub fn is_empty(&self) -> bool {
        self.mirrors.is_empty()
    }

    /// Entries currently in `node`'s store.
    pub fn entries(&self, node: NodeId) -> usize {
        self.mirrors[node.0 as usize].entries()
    }

    /// Direct access to `node`'s store (tests and experiments inspect
    /// byte counts and scan orders through this).
    pub fn store_mut(&mut self, node: NodeId) -> &mut dyn Store {
        self.mirrors[node.0 as usize].store_mut()
    }

    /// Appends `node`'s new arrivals to its mirror; see
    /// [`NodeMirror::persist`].
    pub fn persist(&mut self, node: NodeId, log: &MergeLog<A>, barrier: bool) {
        self.mirrors[node.0 as usize].persist(log, barrier);
    }

    /// Simulates a power cut at `node`: picks a kill offset uniformly in
    /// `[synced_bytes, len_bytes]` — everything fsynced survives,
    /// anything after the last barrier may be lost, and the cut may
    /// land mid-record (a torn tail, truncated on reopen).
    pub fn kill(&mut self, node: NodeId) -> KillReport {
        let mirror = &mut self.mirrors[node.0 as usize];
        let lo = mirror.store.synced_bytes();
        let hi = mirror.store.len_bytes();
        let keep = if hi > lo {
            self.rng.random_range(lo..=hi)
        } else {
            hi
        };
        mirror.crash_at(keep)
    }

    /// Rebuilds `node` from its store; see [`NodeMirror::recover`].
    pub fn recover(&mut self, app: &A, id: NodeId, checkpoint_every: usize) -> (Node<A>, usize) {
        self.mirrors[id.0 as usize].recover(app, id, checkpoint_every)
    }

    /// Splits the fleet into its per-node mirrors — the threaded
    /// runtime moves one into each node thread
    /// (`shard_runtime::live::run_live_durable`).
    pub fn into_mirrors(self) -> Vec<NodeMirror<A>> {
        self.mirrors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_preserve_timestamp_order() {
        let a = Timestamp {
            lamport: 3,
            node: NodeId(2),
        };
        let b = Timestamp {
            lamport: 3,
            node: NodeId(3),
        };
        let c = Timestamp {
            lamport: 4,
            node: NodeId(0),
        };
        assert!(key_of(a) < key_of(b) && key_of(b) < key_of(c), "order maps");
        assert_eq!(ts_of(key_of(a)), a, "round trip");
    }

    #[test]
    fn from_env_requires_the_variable() {
        // The test runner may or may not have SHARD_STORE_DIR set;
        // exercise both constructors directly instead.
        let mem = DurabilityConfig::mem(7);
        assert!(matches!(mem.backend, StoreBackend::Mem), "mem backend");
        let disk = DurabilityConfig::disk("/tmp/x", 7);
        assert!(matches!(disk.backend, StoreBackend::Disk { .. }), "disk");
    }
}
