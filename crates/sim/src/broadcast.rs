//! Reliable broadcast of updates (§1.2, \[GLBKSS\]).
//!
//! "After a transaction is processed at its originating node, information
//! about the transaction is broadcast reliably to all the other nodes …
//! barring permanent communication failures, every node will eventually
//! receive information about every transaction."
//!
//! We model the broadcast layer as holding each point-to-point message
//! until the partition schedule next connects the two nodes, then
//! delivering after a sampled network delay. Since partition windows are
//! finite, delivery is guaranteed — exactly the eventual-delivery
//! property the paper relies on, with none of the protocol detail of the
//! (unpublished) \[GLBKSS\] report.
//!
//! Messages optionally **piggyback** the origin's entire known log —
//! §3.3: "an appropriate distributed communication protocol could
//! guarantee transitivity, perhaps by piggybacking information about
//! known transactions on messages". With piggybacking on, every
//! execution the cluster emits is transitive. The message type itself is
//! [`crate::kernel::Packet`] — an `Arc`-shared batch of log entries, so
//! a flood of one transaction costs one allocation regardless of
//! fan-out; this module keeps the *timing* model.

use crate::clock::NodeId;
use crate::delay::DelayModel;
use crate::events::SimTime;
use crate::partition::PartitionSchedule;
use rand::Rng;

/// Computes when a message sent at `now` from `from` arrives at `to`:
/// it waits out any partition separating them, then takes one sampled
/// network delay.
pub fn delivery_time<R: Rng + ?Sized>(
    partitions: &PartitionSchedule,
    delay: &DelayModel,
    rng: &mut R,
    now: SimTime,
    from: NodeId,
    to: NodeId,
) -> SimTime {
    let released = partitions.next_connected(now, from, to);
    released + delay.sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionWindow;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn connected_messages_take_one_delay() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = delivery_time(
            &PartitionSchedule::none(),
            &DelayModel::Fixed(7),
            &mut rng,
            100,
            NodeId(0),
            NodeId(1),
        );
        assert_eq!(t, 107);
    }

    #[test]
    fn partitioned_messages_wait_for_heal() {
        let mut rng = StdRng::seed_from_u64(1);
        let sched =
            PartitionSchedule::new(vec![PartitionWindow::isolate(50, 200, vec![NodeId(0)])]);
        let t = delivery_time(
            &sched,
            &DelayModel::Fixed(7),
            &mut rng,
            100,
            NodeId(0),
            NodeId(1),
        );
        assert_eq!(t, 207, "released at heal time 200, +7 delay");
        // Unaffected pairs are not delayed.
        let t = delivery_time(
            &sched,
            &DelayModel::Fixed(7),
            &mut rng,
            100,
            NodeId(1),
            NodeId(2),
        );
        assert_eq!(t, 107);
    }
}
