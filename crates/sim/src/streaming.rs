//! Out-of-core merge: a bounded reorder window in front of a
//! store-backed execution (§1.2's t-bounded delay, turned into a
//! memory bound).
//!
//! The paper's partial-amnesia argument (§5.4) and the simulator's
//! delay models both rest on the same physical fact: a message is
//! never displaced arbitrarily far — there is a bound `t` such that
//! every update is known everywhere within `t`. [`StreamingMerge`]
//! exploits the discrete shadow of that bound. Arrivals may disagree
//! with timestamp order by at most `capacity` positions, so a window
//! of `capacity + 1` pending updates is enough to emit the **final
//! serial order** one transaction at a time: once the window
//! overflows, its minimum timestamp can never be preceded by a later
//! arrival, and the transaction *seals*.
//!
//! Sealing folds the update into one in-place state (never a log of
//! states), records cold anchors through a
//! [`SpillingCheckpoints`] tier, appends the row to a store-backed
//! [`StreamingExecution`], and feeds the online §3 window checker —
//! so a 10⁷-transaction run holds one application state, a
//! `capacity`-sized window, and the checker's monitor state in RAM,
//! while the full execution lives in the store for later
//! byte-identical re-checking. Experiment E25 drives this end to end.

use crate::clock::Timestamp;
use shard_core::{
    Application, SpillingCheckpoints, StreamChecker, StreamReport, StreamRow, StreamingExecution,
};
use std::collections::{BTreeMap, VecDeque};
use std::io;

struct Pending<U> {
    /// Arrival sequence number — the position in *delivery* order.
    arrival: u64,
    /// Real initiation time (the simulator's integer ticks).
    time: u64,
    update: U,
}

/// Streams an out-of-timestamp-order delivery sequence into its final
/// serial order at bounded memory. See the module docs for the
/// contract: deliveries may be displaced from timestamp order by at
/// most `capacity` positions.
pub struct StreamingMerge<A: Application> {
    window: BTreeMap<Timestamp, Pending<A::Update>>,
    capacity: usize,
    state: A::State,
    anchors: SpillingCheckpoints<A::State>,
    sink: StreamingExecution<A>,
    checker: StreamChecker,
    /// Rows sealed so far — the serial index of the next seal.
    sealed: usize,
    last_sealed: Option<Timestamp>,
    /// Recently sealed `(serial index, arrival)` pairs, ascending by
    /// serial index; retained exactly while some pending arrival is
    /// older, because those are the rows a pending transaction can
    /// still have missed.
    recent: VecDeque<(usize, u64)>,
    next_arrival: u64,
    seals_since_prune: usize,
}

impl<A: Application> StreamingMerge<A>
where
    A::State: shard_store::Codec,
    A::Update: shard_store::Codec,
{
    /// A merge over `app` whose rows stream into `row_store` and whose
    /// cold checkpoint anchors spill into `anchor_store`. `capacity`
    /// bounds the reorder window (= the delivery displacement the
    /// workload guarantees); `checkpoint_every`, `hot_points` and
    /// `spill_spacing` configure the anchor tier; `checker_window` is
    /// the online §3 verdict cadence.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        app: &A,
        row_store: Box<dyn shard_store::Store + Send>,
        anchor_store: Box<dyn shard_store::Store + Send>,
        capacity: usize,
        checkpoint_every: usize,
        hot_points: usize,
        spill_spacing: usize,
        checker_window: usize,
    ) -> Self {
        assert!(capacity > 0, "reorder window must hold at least one row");
        StreamingMerge {
            window: BTreeMap::new(),
            capacity,
            state: app.initial_state(),
            anchors: SpillingCheckpoints::new(
                anchor_store,
                checkpoint_every,
                hot_points,
                spill_spacing,
            ),
            sink: StreamingExecution::new(row_store),
            checker: StreamChecker::new(checker_window),
            sealed: 0,
            last_sealed: None,
            recent: VecDeque::new(),
            next_arrival: 0,
            seals_since_prune: 0,
        }
    }

    /// Delivers the next update. Duplicated timestamps are ignored,
    /// like [`MergeLog::merge`](crate::MergeLog::merge) redeliveries.
    ///
    /// # Panics
    ///
    /// Panics if `ts` precedes an already-sealed transaction — the
    /// delivery was displaced beyond the reorder window, violating the
    /// workload's displacement bound.
    pub fn offer(
        &mut self,
        app: &A,
        ts: Timestamp,
        time: u64,
        update: A::Update,
    ) -> io::Result<()> {
        assert!(
            self.last_sealed.is_none_or(|s| ts > s),
            "delivery displaced beyond the reorder window (capacity {})",
            self.capacity
        );
        let arrival = self.next_arrival;
        self.next_arrival += 1;
        if self.window.contains_key(&ts) {
            return Ok(());
        }
        self.window.insert(
            ts,
            Pending {
                arrival,
                time,
                update,
            },
        );
        if self.window.len() > self.capacity {
            self.seal_min(app)?;
        }
        Ok(())
    }

    /// Seals every pending transaction and syncs the row store. The
    /// stream can keep going afterwards; this is the end-of-input (or
    /// barrier) drain.
    pub fn finish(&mut self, app: &A) -> io::Result<()> {
        while !self.window.is_empty() {
            self.seal_min(app)?;
        }
        self.sink.sync()
    }

    fn seal_min(&mut self, app: &A) -> io::Result<()> {
        let (ts, p) = self.window.pop_first().expect("caller checked non-empty");
        let i = self.sealed;
        // The serially-earlier rows this transaction missed: exactly
        // the ones delivered after it.
        let missed: Vec<usize> = self
            .recent
            .iter()
            .filter(|&&(_, a)| a > p.arrival)
            .map(|&(j, _)| j)
            .collect();
        app.apply_in_place(&mut self.state, &p.update);
        self.sealed = i + 1;
        self.last_sealed = Some(ts);
        self.anchors
            .record(self.sealed, &self.state, app.state_size_hint(&self.state));
        self.sink.push(p.time, &missed, &p.update)?;
        self.checker.push(&StreamRow {
            index: i,
            time: p.time,
            missed,
        });
        self.recent.push_back((i, p.arrival));
        // A sealed row stays interesting only while a pending arrival
        // is older than it; prune amortized once per window turnover.
        self.seals_since_prune += 1;
        if self.seals_since_prune >= self.capacity {
            self.seals_since_prune = 0;
            match self.window.values().map(|p| p.arrival).min() {
                None => self.recent.clear(),
                Some(oldest) => {
                    while self.recent.front().is_some_and(|&(_, a)| a < oldest) {
                        self.recent.pop_front();
                    }
                }
            }
        }
        Ok(())
    }

    /// The state after every sealed transaction.
    pub fn state(&self) -> &A::State {
        &self.state
    }

    /// Sealed (serially final) transactions so far.
    pub fn sealed(&self) -> usize {
        self.sealed
    }

    /// Transactions still pending in the reorder window.
    pub fn pending(&self) -> usize {
        self.window.len()
    }

    /// The running §3 verdict — `false` as soon as any window saw a
    /// transitivity violation.
    pub fn transitive_so_far(&self) -> bool {
        self.checker.transitive_so_far()
    }

    /// The online checker's report over everything sealed so far.
    pub fn report(&self) -> StreamReport {
        self.checker.report()
    }

    /// Resident bytes held by the hot checkpoint tier.
    pub fn anchor_resident_bytes(&self) -> usize {
        self.anchors.resident_bytes()
    }

    /// Cold anchors spilled to the store so far.
    pub fn spilled_anchors(&self) -> usize {
        self.anchors.spilled_anchors()
    }

    /// Tears the merge down into its store-backed execution (for
    /// second-pass re-checking off the cursor), final state, and cold
    /// anchor tier.
    ///
    /// # Panics
    ///
    /// Panics if transactions are still pending — call
    /// [`StreamingMerge::finish`] first.
    pub fn into_parts(
        self,
    ) -> (
        StreamingExecution<A>,
        A::State,
        SpillingCheckpoints<A::State>,
    ) {
        assert!(
            self.window.is_empty(),
            "finish() the stream before tearing it down"
        );
        (self.sink, self.state, self.anchors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::NodeId;
    use crate::merge::MergeLog;
    use shard_core::DecisionOutcome;

    #[derive(Clone)]
    struct Trace;

    impl Application for Trace {
        type State = Vec<u64>;
        type Update = u64;
        type Decision = u64;
        fn initial_state(&self) -> Vec<u64> {
            Vec::new()
        }
        fn is_well_formed(&self, _: &Vec<u64>) -> bool {
            true
        }
        fn apply(&self, s: &Vec<u64>, u: &u64) -> Vec<u64> {
            let mut v = s.clone();
            v.push(*u);
            v
        }
        fn decide(&self, d: &u64, _: &Vec<u64>) -> DecisionOutcome<u64> {
            DecisionOutcome::update_only(*d)
        }
        fn constraint_count(&self) -> usize {
            0
        }
        fn constraint_name(&self, _: usize) -> &str {
            unreachable!()
        }
        fn cost(&self, _: &Vec<u64>, _: usize) -> u64 {
            0
        }
    }

    fn ts(l: u64) -> Timestamp {
        Timestamp {
            lamport: l,
            node: NodeId(0),
        }
    }

    /// A displacement-bounded shuffle of `0..n`: element `i` stays
    /// within its block of `d + 1`, so it moves at most `d` positions.
    fn displaced(n: u64, d: usize) -> Vec<u64> {
        let mut order: Vec<u64> = (0..n).collect();
        for (b, chunk) in order.chunks_mut(d + 1).enumerate() {
            if b % 2 == 0 {
                chunk.reverse();
            } else {
                chunk.rotate_left(1.min(chunk.len() - 1));
            }
        }
        order
    }

    fn merge_all(app: &Trace, order: &[u64], capacity: usize) -> StreamingMerge<Trace> {
        let mut m = StreamingMerge::new(
            app,
            Box::new(shard_store::MemStore::new()),
            Box::new(shard_store::MemStore::new()),
            capacity,
            4,
            2,
            1,
            8,
        );
        for (when, &l) in order.iter().enumerate() {
            m.offer(app, ts(l + 1), when as u64, l).unwrap();
        }
        m.finish(app).unwrap();
        m
    }

    #[test]
    fn seals_in_serial_order_and_matches_merge_log() {
        let app = Trace;
        for d in [1usize, 3, 16] {
            let order = displaced(200, d);
            let m = merge_all(&app, &order, d + 1);
            assert_eq!(m.sealed(), 200);
            assert_eq!(m.pending(), 0);
            let mut log = MergeLog::new(&app, 4);
            for &l in &order {
                log.merge(&app, ts(l + 1), l);
            }
            assert_eq!(m.state(), log.state(), "displacement {d}");
        }
    }

    #[test]
    fn missed_sets_name_exactly_the_later_deliveries() {
        let app = Trace;
        let order = displaced(120, 5);
        // O(n²) oracle over delivery order: serial row i missed serial
        // row j < i iff j was delivered after i.
        let mut delivery_of = vec![0usize; 120];
        for (when, &l) in order.iter().enumerate() {
            delivery_of[l as usize] = when;
        }
        let m = merge_all(&app, &order, 6);
        let (mut sink, _, _) = m.into_parts();
        let mut rows = 0usize;
        sink.for_each_row(|i, row| {
            let expect: Vec<usize> = (0..i)
                .filter(|&j| delivery_of[j] > delivery_of[i])
                .collect();
            assert_eq!(row.missed, expect, "row {i}");
            assert_eq!(row.time, delivery_of[i] as u64);
            rows += 1;
        })
        .unwrap();
        assert_eq!(rows, 120);
    }

    #[test]
    fn online_report_is_identical_to_second_pass_off_the_store() {
        let app = Trace;
        let m = merge_all(&app, &displaced(150, 4), 5);
        let online = m.report();
        let (mut sink, _, _) = m.into_parts();
        assert_eq!(online, sink.check_stream(8).unwrap());
    }

    #[test]
    fn duplicates_and_in_order_streams_are_cheap() {
        let app = Trace;
        let mut m = StreamingMerge::new(
            &app,
            Box::new(shard_store::MemStore::new()),
            Box::new(shard_store::MemStore::new()),
            4,
            4,
            2,
            1,
            8,
        );
        for l in 0..50u64 {
            m.offer(&app, ts(l + 1), l, l).unwrap();
            m.offer(&app, ts(l + 1), l, l).unwrap(); // redelivery
        }
        m.finish(&app).unwrap();
        assert_eq!(m.sealed(), 50);
        assert_eq!(m.state(), &(0..50).collect::<Vec<_>>());
        assert!(m.report().transitive);
    }

    #[test]
    #[should_panic(expected = "displaced beyond the reorder window")]
    fn overdisplaced_delivery_panics() {
        let app = Trace;
        let mut m = StreamingMerge::new(
            &app,
            Box::new(shard_store::MemStore::new()),
            Box::new(shard_store::MemStore::new()),
            2,
            4,
            2,
            1,
            8,
        );
        for l in [5u64, 6, 7, 8] {
            m.offer(&app, ts(l), l, l).unwrap();
        }
        // ts 1 precedes the already-sealed minimum.
        m.offer(&app, ts(1), 9, 1).unwrap();
    }
}
