//! Network partition schedules.
//!
//! SHARD's whole reason for existing is that it "allows a database
//! application to continue operation in the face of communication
//! failures, including network partitions" (§1.1). A
//! [`PartitionSchedule`] is a list of time windows; inside a window the
//! nodes are split into disjoint groups and messages only flow within a
//! group. Windows are finite, so the network always heals — permanent
//! failure is the one case the reliable broadcast excludes.

use crate::clock::NodeId;
use crate::events::SimTime;

/// One partition window: during `[start, end)`, the listed groups are
/// mutually disconnected. Nodes not listed form an implicit extra group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionWindow {
    /// First tick of the partition.
    pub start: SimTime,
    /// First tick after the partition heals.
    pub end: SimTime,
    /// The disconnected groups.
    pub groups: Vec<Vec<NodeId>>,
}

impl PartitionWindow {
    /// A window splitting the nodes into exactly two groups: `island`
    /// versus everyone else.
    pub fn isolate(start: SimTime, end: SimTime, island: Vec<NodeId>) -> Self {
        PartitionWindow {
            start,
            end,
            groups: vec![island],
        }
    }

    fn group_of(&self, n: NodeId) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(&n))
    }

    /// Whether `a` and `b` can communicate during this window.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        self.group_of(a) == self.group_of(b)
    }
}

/// A full schedule of partition windows. Windows may overlap; two nodes
/// are connected at time `t` iff *every* window covering `t` connects
/// them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartitionSchedule {
    windows: Vec<PartitionWindow>,
}

impl PartitionSchedule {
    /// The always-connected schedule.
    pub fn none() -> Self {
        PartitionSchedule::default()
    }

    /// A schedule from explicit windows.
    pub fn new(windows: Vec<PartitionWindow>) -> Self {
        PartitionSchedule { windows }
    }

    /// Adds a window.
    pub fn push(&mut self, w: PartitionWindow) {
        self.windows.push(w);
    }

    /// The windows.
    pub fn windows(&self) -> &[PartitionWindow] {
        &self.windows
    }

    /// Whether `a` and `b` can communicate at time `t`.
    pub fn connected(&self, t: SimTime, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        self.windows
            .iter()
            .filter(|w| w.start <= t && t < w.end)
            .all(|w| w.connected(a, b))
    }

    /// The earliest time `≥ t` at which `a` and `b` are connected.
    /// Because windows are finite this always exists.
    pub fn next_connected(&self, t: SimTime, a: NodeId, b: NodeId) -> SimTime {
        if self.connected(t, a, b) {
            return t;
        }
        // Candidate healing instants: the end of each window covering a
        // later time. Scan window ends after t in ascending order.
        let mut ends: Vec<SimTime> = self
            .windows
            .iter()
            .map(|w| w.end)
            .filter(|e| *e > t)
            .collect();
        ends.sort_unstable();
        for e in ends {
            if self.connected(e, a, b) {
                return e;
            }
        }
        // All windows are over after the last end.
        self.windows.iter().map(|w| w.end).max().unwrap_or(t)
    }

    /// The last tick at which any window is active (0 if none).
    pub fn horizon(&self) -> SimTime {
        self.windows.iter().map(|w| w.end).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn no_partitions_means_always_connected() {
        let s = PartitionSchedule::none();
        assert!(s.connected(0, n(0), n(1)));
        assert_eq!(s.next_connected(5, n(0), n(1)), 5);
        assert_eq!(s.horizon(), 0);
    }

    #[test]
    fn isolate_splits_island_from_rest() {
        let s = PartitionSchedule::new(vec![PartitionWindow::isolate(10, 20, vec![n(0)])]);
        assert!(s.connected(5, n(0), n(1)), "before the window");
        assert!(!s.connected(10, n(0), n(1)), "inside the window");
        assert!(!s.connected(19, n(0), n(1)));
        assert!(s.connected(20, n(0), n(1)), "after healing");
        // Two mainland nodes stay connected throughout.
        assert!(s.connected(15, n(1), n(2)));
        // A node is always connected to itself.
        assert!(s.connected(15, n(0), n(0)));
    }

    #[test]
    fn explicit_groups() {
        let w = PartitionWindow {
            start: 0,
            end: 100,
            groups: vec![vec![n(0), n(1)], vec![n(2)]],
        };
        let s = PartitionSchedule::new(vec![w]);
        assert!(s.connected(50, n(0), n(1)));
        assert!(!s.connected(50, n(0), n(2)));
        // n(3) is unlisted: it forms the implicit remainder group.
        assert!(!s.connected(50, n(3), n(0)));
        assert!(s.connected(50, n(3), n(4)));
    }

    #[test]
    fn next_connected_waits_for_heal() {
        let s = PartitionSchedule::new(vec![PartitionWindow::isolate(10, 30, vec![n(0)])]);
        assert_eq!(s.next_connected(15, n(0), n(1)), 30);
        assert_eq!(s.next_connected(15, n(1), n(2)), 15);
        assert_eq!(s.horizon(), 30);
    }

    #[test]
    fn overlapping_windows_conjoin() {
        // Window A splits {0} off during [0,20); window B splits {1}
        // off during [10,30). During [10,20) nodes 0 and 1 are doubly
        // separated; at 20 still separated by B; at 30 connected.
        let s = PartitionSchedule::new(vec![
            PartitionWindow::isolate(0, 20, vec![n(0)]),
            PartitionWindow::isolate(10, 30, vec![n(1)]),
        ]);
        assert!(!s.connected(15, n(0), n(1)));
        assert!(!s.connected(25, n(0), n(1)));
        assert_eq!(s.next_connected(5, n(0), n(1)), 30);
        assert!(s.connected(30, n(0), n(1)));
    }
}
